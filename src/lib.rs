//! SMARTS: Sampling Microarchitecture Simulation via rigorous statistical
//! sampling — a full reproduction of Wunderlich, Wenisch, Falsafi & Hoe
//! (ISCA 2003) in Rust.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`stats`] — sampling statistics (confidence intervals, sample
//!   sizing, systematic designs, intraclass correlation).
//! * [`isa`] — the 64-bit RISC substrate: assembler, memory, functional
//!   CPU.
//! * [`workloads`] — the synthetic SPEC2K-like benchmark suite.
//! * [`uarch`] — the out-of-order superscalar timing model with warmable
//!   caches/TLBs/branch predictors (Table 3 machines).
//! * [`energy`] — the Wattch-like activity energy model for EPI.
//! * [`core`] — the SMARTS framework itself: systematic sampling with
//!   functional + detailed warming and the two-step confidence procedure.
//! * [`exec`] — the parallel execution subsystem: multi-threaded
//!   checkpoint replay and sharded sampling with a deterministic merge.
//! * [`ckpt`] — the persistent on-disk checkpoint store (delta-encoded,
//!   CRC-checked): warm once, replay many detailed configurations.
//! * [`server`] — sampling as a service: a TCP job server over a shared
//!   checkpoint-store directory, so concurrent jobs for the same
//!   workload and warm geometry trigger exactly one warming pass.
//! * [`simpoint`] — the SimPoint baseline (Section 5.3).
//!
//! # Quick start
//!
//! ```
//! use smarts::prelude::*;
//!
//! # fn main() -> Result<(), smarts::core::SmartsError> {
//! let sim = SmartsSim::new(MachineConfig::eight_way());
//! let bench = find("branchy-1").unwrap().scaled(0.05);
//! let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 20)?;
//! let report = sim.sample(&bench, &params)?;
//! println!(
//!     "CPI = {:.3} ± {:.1}% (99.7% confidence), measuring {:.3}% of the stream",
//!     report.cpi().mean(),
//!     report.cpi().achieved_epsilon(Confidence::THREE_SIGMA)? * 100.0,
//!     report.instructions.detailed_fraction() * 100.0,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smarts_ckpt as ckpt;
pub use smarts_core as core;
pub use smarts_energy as energy;
pub use smarts_exec as exec;
pub use smarts_isa as isa;
pub use smarts_server as server;
pub use smarts_simpoint as simpoint;
pub use smarts_stats as stats;
pub use smarts_uarch as uarch;
pub use smarts_workloads as workloads;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use smarts_ckpt::{CkptReader, CkptWriter, StoreMeta};
    pub use smarts_core::{
        compare_machines, CheckpointLibrary, PairedComparison, ReferenceRun, SampleReport,
        SamplingParams, SmartsError, SmartsSim, SpeedupModel, Warming,
    };
    pub use smarts_energy::EnergyModel;
    pub use smarts_exec::{Executor, ParallelDriver, ParallelMode};
    pub use smarts_isa::{reg, Asm, Cpu, Memory, Program};
    pub use smarts_stats::{Confidence, RunningStats, SampleEstimate, SystematicDesign};
    pub use smarts_uarch::{MachineConfig, Pipeline, WarmState};
    pub use smarts_workloads::{find, scaled_suite, suite, Benchmark};
}

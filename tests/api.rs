//! Umbrella-crate API contract tests.

use smarts::prelude::*;

#[test]
fn prelude_exposes_the_core_workflow_types() {
    // Compile-time check that the one-line import is sufficient for the
    // quickstart workflow.
    let _sim: SmartsSim = SmartsSim::new(MachineConfig::eight_way());
    let _conf: Confidence = Confidence::NINETY_FIVE;
    let _bench: Option<Benchmark> = find("loopy-1");
    let _stats: RunningStats = RunningStats::new();
}

#[test]
fn key_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SmartsSim>();
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<Benchmark>();
    assert_send_sync::<SampleReport>();
    assert_send_sync::<SmartsError>();
    assert_send_sync::<Pipeline>();
    assert_send_sync::<WarmState>();
}

#[test]
fn suite_benchmarks_all_load() {
    for bench in scaled_suite(0.01) {
        let loaded = bench.load();
        assert!(!loaded.program.is_empty(), "{}", bench.name());
    }
}

#[test]
fn errors_format_and_chain() {
    use std::error::Error;
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("loopy-1").unwrap().scaled(0.01);
    let bad = SamplingParams {
        unit_size: 0,
        detailed_warming: 0,
        warming: Warming::None,
        interval: 1,
        offset: 0,
        max_units: None,
    };
    let err = sim.sample(&bench, &bad).unwrap_err();
    assert!(!err.to_string().is_empty());
    let _ = err.source(); // chain is accessible
}

#[test]
fn parallel_sampling_runs_are_independent() {
    // SmartsSim is shareable across threads; concurrent runs of the same
    // benchmark agree exactly (no hidden shared state).
    use std::sync::Arc;
    let sim = Arc::new(SmartsSim::new(MachineConfig::eight_way()));
    let bench = find("branchy-1").unwrap().scaled(0.03);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 8).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let sim = Arc::clone(&sim);
            let bench = bench.clone();
            std::thread::spawn(move || sim.sample(&bench, &params).unwrap().cpi().mean())
        })
        .collect();
    let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

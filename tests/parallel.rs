//! End-to-end guarantee of the execution subsystem: a checkpoint-mode
//! parallel run produces a bit-identical `SampleReport` to the
//! sequential driver at any worker count.

use smarts::exec::{Executor, ParallelDriver, ParallelMode};
use smarts::prelude::*;

fn params(bench: &Benchmark, n: u64) -> SamplingParams {
    SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 0)
        .expect("valid sampling parameters")
}

fn assert_bit_identical(parallel: &SampleReport, sequential: &SampleReport, what: &str) {
    assert_eq!(
        parallel.sample_size(),
        sequential.sample_size(),
        "{what}: sample size"
    );
    for (p, s) in parallel.units.iter().zip(&sequential.units) {
        assert_eq!(p.start_instr, s.start_instr, "{what}: unit placement");
        assert_eq!(p.cycles, s.cycles, "{what}: unit cycles");
        assert_eq!(p.cpi.to_bits(), s.cpi.to_bits(), "{what}: unit CPI bits");
        assert_eq!(p.epi.to_bits(), s.epi.to_bits(), "{what}: unit EPI bits");
    }
    let pairs = [
        (parallel.cpi(), sequential.cpi(), "CPI"),
        (parallel.epi(), sequential.epi(), "EPI"),
    ];
    for (p, s, which) in pairs {
        assert_eq!(
            p.mean().to_bits(),
            s.mean().to_bits(),
            "{what}: {which} mean bits"
        );
        assert_eq!(
            p.coefficient_of_variation().to_bits(),
            s.coefficient_of_variation().to_bits(),
            "{what}: {which} V̂ bits"
        );
        let (plo, phi) = p.interval(Confidence::THREE_SIGMA).expect("interval");
        let (slo, shi) = s.interval(Confidence::THREE_SIGMA).expect("interval");
        assert_eq!(plo.to_bits(), slo.to_bits(), "{what}: {which} CI low bits");
        assert_eq!(phi.to_bits(), shi.to_bits(), "{what}: {which} CI high bits");
    }
    assert_eq!(
        parallel.instructions, sequential.instructions,
        "{what}: mode accounting"
    );
}

#[test]
fn checkpoint_replay_is_bit_identical_across_worker_counts() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    for name in ["branchy-1", "stream-2"] {
        let bench = find(name).expect("suite benchmark").scaled(0.05);
        let p = params(&bench, 10);
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");
        for jobs in [1usize, 2, 8] {
            let executor = Executor::new(jobs).expect("executor");
            assert_eq!(executor.mode(), ParallelMode::Checkpoint);
            let parallel = sim
                .sample_parallel(&bench, &p, &executor)
                .expect("parallel sampling");
            assert_eq!(parallel.jobs, jobs);
            assert_bit_identical(
                &parallel.report,
                &sequential,
                &format!("{name} at {jobs} jobs"),
            );
        }
    }
}

#[test]
fn pipeline_mode_is_bit_identical_across_the_suite() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    for bench in smarts::workloads::suite() {
        // Small scale and design: the matrix below runs six pipeline
        // configurations (plus three baselines) per suite benchmark.
        let bench = bench.scaled(0.01);
        let p = SamplingParams::for_sample_size(
            bench.approx_len(),
            500,
            500,
            Warming::Functional,
            4,
            0,
        )
        .expect("valid sampling parameters");
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");
        let checkpoint = sim
            .sample_parallel(&bench, &p, &Executor::new(2).expect("executor"))
            .expect("checkpoint run");
        for jobs in [1usize, 2, 8] {
            for depth in [1usize, 4] {
                let executor = Executor::new(jobs)
                    .expect("executor")
                    .with_mode(ParallelMode::Pipeline)
                    .with_pipeline_depth(depth);
                let pipeline = sim
                    .sample_parallel(&bench, &p, &executor)
                    .expect("pipeline sampling");
                let what = format!("{} at {jobs} jobs, depth {depth}", bench.name());
                assert_bit_identical(&pipeline.report, &sequential, &what);
                assert_bit_identical(&pipeline.report, &checkpoint.report, &what);
                let stats = pipeline.pipeline.expect("pipeline stats");
                assert_eq!(stats.depth, depth, "{what}: configured depth");
                // Every measured unit was streamed; the producer may have
                // emitted one extra checkpoint whose unit the stream's
                // halt cut short (replayed as partial, excluded from the
                // sample by the deterministic merge).
                assert!(
                    stats.emitted >= sequential.sample_size()
                        && stats.emitted <= sequential.sample_size() + 1,
                    "{what}: emitted {} vs sample size {}",
                    stats.emitted,
                    sequential.sample_size()
                );
                assert!(
                    stats.peak_resident_checkpoints <= depth + jobs + 1,
                    "{what}: residency peak {} exceeds depth + jobs + 1",
                    stats.peak_resident_checkpoints
                );
            }
        }
    }
}

#[test]
fn sharded_mode_stays_close_to_sequential() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("hashp-2").expect("suite benchmark").scaled(0.1);
    let p = params(&bench, 12);
    let sequential = sim.sample(&bench, &p).expect("sequential run");
    let executor = Executor::new(4)
        .expect("executor")
        .with_mode(ParallelMode::Sharded)
        .with_shard_warmup(200_000);
    let sharded = sim
        .sample_parallel(&bench, &p, &executor)
        .expect("sharded run");
    let bias = smarts::exec::residual_bias(&sharded.report, &sequential);
    assert!(
        bias.matched_units > 0,
        "shards must land on the sequential grid"
    );
    assert!(
        bias.cpi_bias.abs() < 0.05,
        "sharded CPI bias {} exceeds 5%",
        bias.cpi_bias
    );
}

//! End-to-end guarantee of the execution subsystem: a checkpoint-mode
//! parallel run produces a bit-identical `SampleReport` to the
//! sequential driver at any worker count.

use smarts::exec::{sample_pipeline_saving, Executor, ParallelDriver, ParallelMode};
use smarts::prelude::*;

fn params(bench: &Benchmark, n: u64) -> SamplingParams {
    SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 0)
        .expect("valid sampling parameters")
}

fn assert_bit_identical(parallel: &SampleReport, sequential: &SampleReport, what: &str) {
    assert_eq!(
        parallel.sample_size(),
        sequential.sample_size(),
        "{what}: sample size"
    );
    for (p, s) in parallel.units.iter().zip(&sequential.units) {
        assert_eq!(p.start_instr, s.start_instr, "{what}: unit placement");
        assert_eq!(p.cycles, s.cycles, "{what}: unit cycles");
        assert_eq!(p.cpi.to_bits(), s.cpi.to_bits(), "{what}: unit CPI bits");
        assert_eq!(p.epi.to_bits(), s.epi.to_bits(), "{what}: unit EPI bits");
    }
    let pairs = [
        (parallel.cpi(), sequential.cpi(), "CPI"),
        (parallel.epi(), sequential.epi(), "EPI"),
    ];
    for (p, s, which) in pairs {
        assert_eq!(
            p.mean().to_bits(),
            s.mean().to_bits(),
            "{what}: {which} mean bits"
        );
        assert_eq!(
            p.coefficient_of_variation().to_bits(),
            s.coefficient_of_variation().to_bits(),
            "{what}: {which} V̂ bits"
        );
        let (plo, phi) = p.interval(Confidence::THREE_SIGMA).expect("interval");
        let (slo, shi) = s.interval(Confidence::THREE_SIGMA).expect("interval");
        assert_eq!(plo.to_bits(), slo.to_bits(), "{what}: {which} CI low bits");
        assert_eq!(phi.to_bits(), shi.to_bits(), "{what}: {which} CI high bits");
    }
    assert_eq!(
        parallel.instructions, sequential.instructions,
        "{what}: mode accounting"
    );
}

#[test]
fn checkpoint_replay_is_bit_identical_across_worker_counts() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    for name in ["branchy-1", "stream-2"] {
        let bench = find(name).expect("suite benchmark").scaled(0.05);
        let p = params(&bench, 10);
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");
        for jobs in [1usize, 2, 8] {
            let executor = Executor::new(jobs).expect("executor");
            assert_eq!(executor.mode(), ParallelMode::Checkpoint);
            let parallel = sim
                .sample_parallel(&bench, &p, &executor)
                .expect("parallel sampling");
            assert_eq!(parallel.jobs, jobs);
            assert_bit_identical(
                &parallel.report,
                &sequential,
                &format!("{name} at {jobs} jobs"),
            );
        }
    }
}

#[test]
fn pipeline_mode_is_bit_identical_across_the_suite() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    for bench in smarts::workloads::suite() {
        // Small scale and design: the matrix below runs six pipeline
        // configurations (plus three baselines) per suite benchmark.
        let bench = bench.scaled(0.01);
        let p = SamplingParams::for_sample_size(
            bench.approx_len(),
            500,
            500,
            Warming::Functional,
            4,
            0,
        )
        .expect("valid sampling parameters");
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");
        let checkpoint = sim
            .sample_parallel(&bench, &p, &Executor::new(2).expect("executor"))
            .expect("checkpoint run");
        for jobs in [1usize, 2, 8] {
            for depth in [1usize, 4] {
                let executor = Executor::new(jobs)
                    .expect("executor")
                    .with_mode(ParallelMode::Pipeline)
                    .with_pipeline_depth(depth);
                let pipeline = sim
                    .sample_parallel(&bench, &p, &executor)
                    .expect("pipeline sampling");
                let what = format!("{} at {jobs} jobs, depth {depth}", bench.name());
                assert_bit_identical(&pipeline.report, &sequential, &what);
                assert_bit_identical(&pipeline.report, &checkpoint.report, &what);
                let stats = pipeline.pipeline.expect("pipeline stats");
                assert_eq!(stats.depth, depth, "{what}: configured depth");
                // Every measured unit was streamed; the producer may have
                // emitted one extra checkpoint whose unit the stream's
                // halt cut short (replayed as partial, excluded from the
                // sample by the deterministic merge).
                assert!(
                    stats.emitted >= sequential.sample_size()
                        && stats.emitted <= sequential.sample_size() + 1,
                    "{what}: emitted {} vs sample size {}",
                    stats.emitted,
                    sequential.sample_size()
                );
                assert!(
                    stats.peak_resident_checkpoints <= depth + jobs + 1,
                    "{what}: residency peak {} exceeds depth + jobs + 1",
                    stats.peak_resident_checkpoints
                );
            }
        }
    }
}

/// Sanity-checks sharded-warm accounting against the warm-geometry
/// bounds: one fixpoint entry per shard, shard 0 needs no stitching, and
/// convergence K can never exceed the shard's own unit count.
fn assert_shard_stats(stats: &smarts::exec::ShardWarmStats, what: &str) {
    assert_eq!(stats.fixpoints.len(), stats.warm_jobs, "{what}: fixpoints");
    assert_eq!(
        stats.shard_units.len(),
        stats.warm_jobs,
        "{what}: shard_units"
    );
    assert_eq!(stats.fixpoints.first(), Some(&0), "{what}: shard 0 stitch");
    for (s, (&k, &units)) in stats
        .fixpoints
        .iter()
        .zip(&stats.shard_units)
        .enumerate()
        .skip(1)
    {
        assert!(
            k <= units,
            "{what}: shard {s} re-warmed {k} of {units} units"
        );
    }
}

#[test]
fn sharded_warm_is_bit_identical_across_the_suite() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let dir = std::env::temp_dir();
    for bench in smarts::workloads::suite() {
        let bench = bench.scaled(0.01);
        let p = SamplingParams::for_sample_size(
            bench.approx_len(),
            500,
            500,
            Warming::Functional,
            4,
            0,
        )
        .expect("valid sampling parameters");
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");

        // The single-producer reference store.
        let serial_path = dir.join(format!("smarts-swtest-{}-serial.ckpt", bench.name()));
        let serial = sample_pipeline_saving(
            &Executor::new(1)
                .expect("executor")
                .with_mode(ParallelMode::Pipeline),
            &sim,
            &bench,
            0.01,
            &p,
            &serial_path,
        )
        .expect("serial save");
        let serial_bytes = std::fs::read(&serial_path).expect("serial store bytes");
        std::fs::remove_file(&serial_path).ok();

        for warm_jobs in [1usize, 2, 4, 8] {
            for jobs in [1usize, 8] {
                let executor = Executor::new(jobs)
                    .expect("executor")
                    .with_mode(ParallelMode::ShardedWarm)
                    .with_warm_jobs(warm_jobs);
                let what = format!("{} warm-jobs {warm_jobs}, jobs {jobs}", bench.name());
                let outcome = sim
                    .sample_parallel(&bench, &p, &executor)
                    .expect("sharded-warm sampling");
                assert_eq!(outcome.mode, ParallelMode::ShardedWarm, "{what}: mode");
                assert_bit_identical(&outcome.report, &sequential, &what);
                let stats = outcome.shard.expect("shard stats");
                assert!(stats.warm_jobs <= warm_jobs, "{what}: clamped shards");
                assert_shard_stats(&stats, &what);
            }

            // The spliced store must byte-equal the single-producer one.
            let sharded_path =
                dir.join(format!("smarts-swtest-{}-w{warm_jobs}.ckpt", bench.name()));
            let executor = Executor::new(2)
                .expect("executor")
                .with_mode(ParallelMode::ShardedWarm)
                .with_warm_jobs(warm_jobs);
            let saved = sample_pipeline_saving(&executor, &sim, &bench, 0.01, &p, &sharded_path)
                .expect("sharded-warm save");
            let sharded_bytes = std::fs::read(&sharded_path).expect("sharded store bytes");
            std::fs::remove_file(&sharded_path).ok();
            let what = format!("{} store at warm-jobs {warm_jobs}", bench.name());
            assert_eq!(saved.write.records, serial.write.records, "{what}: records");
            assert!(
                sharded_bytes == serial_bytes,
                "{what}: spliced store differs from the serial store \
                 ({} vs {} bytes)",
                sharded_bytes.len(),
                serial_bytes.len()
            );
            assert_bit_identical(&saved.report.report, &sequential, &what);
            // No stray segment files left behind.
            for s in 0..warm_jobs {
                let mut seg = sharded_path.as_os_str().to_os_string();
                seg.push(format!(".seg{s}"));
                assert!(
                    !std::path::Path::new(&seg).exists(),
                    "{what}: segment {s} not cleaned up"
                );
            }
        }
    }
}

/// Deterministic splitmix64, duplicated locally like the other property
/// suites (no external RNG dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[test]
fn sharded_warm_property_convergence_and_splice() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let suite = smarts::workloads::suite();
    let dir = std::env::temp_dir();
    let mut rng = SplitMix64(0x5157_3A9D);
    for round in 0..6 {
        let bench = &suite[rng.pick(suite.len() as u64) as usize];
        let bench = bench.scaled(0.01 + 0.002 * rng.pick(5) as f64);
        let unit = 250 * (1 + rng.pick(4));
        let warming = 250 * (1 + rng.pick(8));
        let n = 3 + rng.pick(6);
        let offset = rng.pick(2);
        let Ok(p) = SamplingParams::for_sample_size(
            bench.approx_len(),
            unit,
            warming,
            Warming::Functional,
            n,
            offset,
        ) else {
            continue;
        };
        let warm_jobs = 2 + rng.pick(5) as usize;
        let what = format!(
            "round {round}: {} U={unit} W={warming} n={n} j={offset} wj={warm_jobs}",
            bench.name()
        );

        let serial_path = dir.join(format!("smarts-swprop-{round}-serial.ckpt"));
        let Ok(serial) = sample_pipeline_saving(
            &Executor::new(1)
                .expect("executor")
                .with_mode(ParallelMode::Pipeline),
            &sim,
            &bench,
            1.0,
            &p,
            &serial_path,
        ) else {
            // Degenerate design (e.g. stream ends before the first
            // unit): nothing to compare this round.
            std::fs::remove_file(&serial_path).ok();
            continue;
        };
        let serial_bytes = std::fs::read(&serial_path).expect("serial store bytes");
        std::fs::remove_file(&serial_path).ok();

        let sharded_path = dir.join(format!("smarts-swprop-{round}-sharded.ckpt"));
        let executor = Executor::new(2)
            .expect("executor")
            .with_mode(ParallelMode::ShardedWarm)
            .with_warm_jobs(warm_jobs);
        let saved = sample_pipeline_saving(&executor, &sim, &bench, 1.0, &p, &sharded_path)
            .unwrap_or_else(|e| panic!("{what}: sharded save failed: {e}"));
        let sharded_bytes = std::fs::read(&sharded_path).expect("sharded store bytes");
        std::fs::remove_file(&sharded_path).ok();

        assert_eq!(saved.write.records, serial.write.records, "{what}: records");
        assert!(
            sharded_bytes == serial_bytes,
            "{what}: spliced store differs from the serial store"
        );
        let shard_stats = saved.report.shard.expect("shard stats");
        assert_shard_stats(&shard_stats, &what);
    }
}

#[test]
fn sharded_mode_stays_close_to_sequential() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("hashp-2").expect("suite benchmark").scaled(0.1);
    let p = params(&bench, 12);
    let sequential = sim.sample(&bench, &p).expect("sequential run");
    let executor = Executor::new(4)
        .expect("executor")
        .with_mode(ParallelMode::Sharded)
        .with_shard_warmup(200_000);
    let sharded = sim
        .sample_parallel(&bench, &p, &executor)
        .expect("sharded run");
    let bias = smarts::exec::residual_bias(&sharded.report, &sequential);
    assert!(
        bias.matched_units > 0,
        "shards must land on the sequential grid"
    );
    assert!(
        bias.cpi_bias.abs() < 0.05,
        "sharded CPI bias {} exceeds 5%",
        bias.cpi_bias
    );
}

//! End-to-end guarantees of the sampling-as-a-service job server:
//! reports served over the wire are byte-identical to one-shot pipeline
//! runs on every path (cold, store hit, cache hit), concurrent
//! submissions of the same store trigger exactly one warming pass, the
//! wire protocol refuses abuse crisply, and shutdown drains.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::thread::JoinHandle;

use smarts::exec::{Executor, ParallelMode};
use smarts::prelude::*;
use smarts::server::json::Json;
use smarts::server::{
    canonical_report_line, machine_for, params_for, Client, JobSpec, Server, ServerConfig,
    ShutdownSummary,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smarts-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunningServer {
    addr: String,
    handle: JoinHandle<Result<ShutdownSummary, String>>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl RunningServer {
    fn start(store_dir: &Path, workers: usize) -> RunningServer {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.to_path_buf(),
            workers,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral server");
        let addr = server.local_addr().to_string();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.serve());
        RunningServer { addr, handle, stop }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect to test server")
    }

    fn shutdown(self) -> ShutdownSummary {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread")
            .expect("server drained")
    }
}

fn small_spec() -> JobSpec {
    JobSpec {
        bench: "loopy-1".to_string(),
        config: 8,
        scale: 0.02,
        n: 8,
        unit: 500,
        warming_len: Some(1000),
        functional_warming: true,
        offset: 0,
        jobs: 2,
        depth: 4,
        warm_jobs: 1,
        ..JobSpec::default()
    }
}

/// The canonical line a one-shot pipeline run produces for a spec —
/// the reference every server path must match byte for byte.
fn one_shot_line(spec: &JobSpec) -> String {
    let cfg = machine_for(spec);
    let params = params_for(spec, &cfg).expect("valid spec");
    let sim = SmartsSim::new(cfg);
    let bench = find(&spec.bench)
        .expect("suite benchmark")
        .scaled(spec.scale);
    let executor = Executor::new(spec.jobs)
        .expect("executor")
        .with_mode(ParallelMode::Pipeline)
        .with_pipeline_depth(spec.depth);
    let outcome = executor
        .sample(&sim, &bench, &params)
        .expect("pipeline run");
    canonical_report_line(&outcome.report)
}

#[test]
fn cold_store_and_cache_paths_serve_identical_bytes() {
    let store_dir = temp_dir("paths");
    let expected = one_shot_line(&small_spec());

    // First server: cold warm, then a cache hit for the same spec.
    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();
    client.ping().expect("ping");

    let first = client.submit(&small_spec()).expect("submit cold");
    assert_eq!(client.wait(&first).expect("wait"), "done");
    let (source, raw) = client.result(&first).expect("cold result");
    assert_eq!(source, "cold");
    assert_eq!(raw, expected, "cold path must match the one-shot run");

    let second = client.submit(&small_spec()).expect("submit cached");
    assert_eq!(client.wait(&second).expect("wait"), "done");
    let (source, raw) = client.result(&second).expect("cached result");
    assert_eq!(source, "cache");
    assert_eq!(raw, expected, "cache path must serve the same bytes");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("warm_passes").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
    server.shutdown();

    // Second server over the same directory: the store survives, the
    // in-memory cache does not — a store-hit replay, still byte-equal.
    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();
    let third = client.submit(&small_spec()).expect("submit store hit");
    assert_eq!(client.wait(&third).expect("wait"), "done");
    let (source, raw) = client.result(&third).expect("store result");
    assert_eq!(source, "store");
    assert_eq!(raw, expected, "store path must replay the same bytes");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("warm_passes").and_then(Json::as_u64), Some(0));
    assert_eq!(stats.get("store_hits").and_then(Json::as_u64), Some(1));
    server.shutdown();

    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn sharded_warm_jobs_serve_bytes_identical_to_a_serial_warm() {
    let store_dir = temp_dir("sharded-warm");
    let expected = one_shot_line(&small_spec());
    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();

    // A cold run whose warming pass is split across three shards must
    // serve the exact bytes of a serial pipeline run.
    let mut sharded = small_spec();
    sharded.warm_jobs = 3;
    let first = client.submit(&sharded).expect("submit sharded cold");
    assert_eq!(client.wait(&first).expect("wait"), "done");
    let (source, raw) = client.result(&first).expect("sharded result");
    assert_eq!(source, "cold");
    assert_eq!(raw, expected, "sharded warm must match the serial one-shot");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("warm_passes").and_then(Json::as_u64), Some(1));

    // The spliced store is interchangeable with a serially-written one:
    // a serial-warm submit for the same design is answered from cache
    // (same fingerprint) with the same bytes, not re-warmed.
    let second = client.submit(&small_spec()).expect("submit serial");
    assert_eq!(client.wait(&second).expect("wait"), "done");
    let (source, raw) = client.result(&second).expect("serial result");
    assert_eq!(source, "cache");
    assert_eq!(raw, expected);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("warm_passes").and_then(Json::as_u64), Some(1));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn sampled_jobs_are_deterministic_and_cache_keyed_by_sampler() {
    let store_dir = temp_dir("sampled");
    let spec = JobSpec {
        sampler: smarts::core::SamplerKind::Stratified,
        seed: 9,
        ..small_spec()
    };

    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();

    let first = client.submit(&spec).expect("submit sampled cold");
    assert_eq!(client.wait(&first).expect("wait"), "done");
    let (source, cold_line) = client.result(&first).expect("cold result");
    assert_eq!(source, "cold");

    // Exact repeat: the sampler spec is part of the cache key, so this
    // is a cache hit with the same bytes.
    let second = client.submit(&spec).expect("submit sampled repeat");
    assert_eq!(client.wait(&second).expect("wait"), "done");
    let (source, raw) = client.result(&second).expect("cached result");
    assert_eq!(source, "cache");
    assert_eq!(raw, cold_line, "cache path must serve the same bytes");

    // Same store, different seed: must NOT alias the cached result —
    // it replays the shared store under the new selection (and the
    // served line embeds the seed, so the bytes differ).
    let reseeded = JobSpec {
        seed: 10,
        ..spec.clone()
    };
    let third = client.submit(&reseeded).expect("submit reseeded");
    assert_eq!(client.wait(&third).expect("wait"), "done");
    let (source, raw) = client.result(&third).expect("reseeded result");
    assert_eq!(
        source, "store",
        "a different sampler spec cannot hit the cache"
    );
    assert_ne!(raw, cold_line, "reseeded line carries its own spec");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("warm_passes").and_then(Json::as_u64), Some(1));
    server.shutdown();

    // Fresh server over the same directory: the in-memory cache is
    // gone, so the job replays the committed store — and the fixed
    // seed makes the selection (and the line) reproduce exactly.
    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();
    let fourth = client.submit(&spec).expect("submit store hit");
    assert_eq!(client.wait(&fourth).expect("wait"), "done");
    let (source, raw) = client.result(&fourth).expect("store result");
    assert_eq!(source, "store");
    assert_eq!(raw, cold_line, "store replay must reproduce the cold bytes");
    server.shutdown();

    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn concurrent_submissions_share_one_warming_pass() {
    let store_dir = temp_dir("race");
    let expected = one_shot_line(&small_spec());
    let server = RunningServer::start(&store_dir, 4);

    // Two clients race the same spec; the store manager must elect a
    // single warmer and replay the racer from the committed store.
    let submitters: Vec<_> = (0..2)
        .map(|_| {
            let addr = server.addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let id = client.submit(&small_spec()).expect("submit");
                assert_eq!(client.wait(&id).expect("wait"), "done");
                client.result(&id).expect("result")
            })
        })
        .collect();
    let results: Vec<(String, String)> = submitters
        .into_iter()
        .map(|h| h.join().expect("submitter thread"))
        .collect();

    for (source, raw) in &results {
        assert_eq!(raw, &expected, "every concurrent result is byte-identical");
        assert!(
            source == "cold" || source == "store" || source == "cache",
            "unexpected source {source}"
        );
    }
    let mut client = server.client();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("warm_passes").and_then(Json::as_u64),
        Some(1),
        "exactly one warming pass serves all concurrent jobs"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn protocol_refuses_abuse_without_dying() {
    let store_dir = temp_dir("abuse");
    let server = RunningServer::start(&store_dir, 1);
    let mut client = server.client();

    // Malformed JSON.
    let response = client.round_trip("this is not json").expect("reply");
    assert!(response.contains("\"ok\":false"), "got {response}");
    // Valid JSON, no cmd.
    let response = client.round_trip(r#"{"x":1}"#).expect("reply");
    assert!(response.contains("\"ok\":false"));
    // Unknown cmd.
    let response = client.round_trip(r#"{"cmd":"frobnicate"}"#).expect("reply");
    assert!(response.contains("unknown cmd"));
    // Bad submit fields.
    let response = client
        .round_trip(r#"{"cmd":"submit","bench":"no-such-bench"}"#)
        .expect("reply");
    assert!(response.contains("unknown benchmark"));
    // Unknown job ids.
    assert!(client.status(Some("j-404")).is_err());
    assert!(client.result("j-404").is_err());
    assert!(client.cancel("j-404").is_err());
    // The same connection still works after every refusal.
    client.ping().expect("connection survives refusals");

    // Truncated line (no newline) followed by a disconnect: the server
    // must not crash, and new connections must still be served.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&server.addr).expect("connect raw");
        raw.write_all(br#"{"cmd":"pi"#).expect("partial write");
    } // dropped without a newline
    server.client().ping().expect("server survives truncation");

    // Oversized line: refused and the connection closed.
    {
        let mut big = String::with_capacity(70 * 1024);
        big.push_str(r#"{"cmd":"ping","pad":""#);
        while big.len() < 66 * 1024 {
            big.push('x');
        }
        big.push_str("\"}");
        let mut abuser = server.client();
        let response = abuser.round_trip(&big).expect("oversize refusal");
        assert!(response.contains("exceeds"), "got {response}");
        assert!(
            abuser.ping().is_err(),
            "oversized-line connection must be closed"
        );
    }
    server.client().ping().expect("server survives oversize");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn cancellation_is_idempotent_and_queued_jobs_die_quickly() {
    let store_dir = temp_dir("cancel");
    // One worker: the second job is guaranteed to queue behind the
    // first, so cancelling it exercises the queued-cancel path.
    let server = RunningServer::start(&store_dir, 1);
    let mut client = server.client();

    let mut long = small_spec();
    long.scale = 0.4; // long enough that the next submission stays queued
    let running = client.submit(&long).expect("submit running");
    let mut bigger = small_spec();
    bigger.offset = 1; // different design → different store → must queue
    let queued = client.submit(&bigger).expect("submit queued");

    let was = client.cancel(&queued).expect("cancel queued");
    assert!(was == "queued" || was == "warming", "got {was}");
    // Double-cancel: still answered, terminal state reported.
    let again = client.cancel(&queued).expect("double cancel");
    assert!(
        again == "cancelled" || again == "queued" || again == "warming",
        "got {again}"
    );
    assert_eq!(client.wait(&queued).expect("wait"), "cancelled");
    assert!(
        client.result(&queued).is_err(),
        "a cancelled job has no result"
    );

    // The uncancelled job is unaffected.
    assert_eq!(client.wait(&running).expect("wait"), "done");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn watch_streams_progress_to_a_terminal_event() {
    let store_dir = temp_dir("watch");
    let server = RunningServer::start(&store_dir, 2);
    let mut client = server.client();
    let id = client.submit(&small_spec()).expect("submit");

    let mut watcher = server.client();
    let mut events = 0u32;
    let end = watcher
        .watch(&id, |event| {
            events += 1;
            assert!(event.get("event").is_some());
            assert_eq!(event.get("job").and_then(Json::as_str), Some(id.as_str()));
        })
        .expect("watch to completion");
    assert!(events >= 1, "at least the terminal event streams");
    assert_eq!(end.get("state").and_then(Json::as_str), Some("done"));

    // The watching connection is still usable afterwards.
    watcher.ping().expect("watcher connection survives");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn shutdown_drains_in_flight_work_and_reports_abandoned_jobs() {
    let store_dir = temp_dir("drain");
    let server = RunningServer::start(&store_dir, 1);
    let mut client = server.client();

    // Fill the single worker with a long job, then queue distinct
    // designs behind it: shutdown must arrive while it is in flight.
    let mut specs = Vec::new();
    for offset in 0..4 {
        let mut spec = small_spec();
        spec.offset = offset;
        if offset == 0 {
            spec.scale = 2.0; // long enough to still be running
        }
        specs.push(spec);
    }
    let ids: Vec<String> = specs
        .iter()
        .map(|s| client.submit(s).expect("submit"))
        .collect();

    client.shutdown().expect("shutdown accepted");
    let summary = server
        .handle
        .join()
        .expect("server thread")
        .expect("drained");
    assert!(
        !summary.abandoned.is_empty(),
        "queued jobs behind a busy worker are abandoned"
    );
    assert!(
        summary.abandoned.len() < ids.len(),
        "the in-flight job is drained, not abandoned"
    );
    for id in &summary.abandoned {
        assert!(ids.contains(id), "abandoned id {id} was submitted");
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}

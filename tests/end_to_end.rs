//! End-to-end integration: SMARTS sampling estimates versus full
//! detailed simulation, across crates.
//!
//! Scales are kept tiny so the suite runs quickly in debug builds; the
//! statistically demanding versions of these comparisons live in the
//! `smarts-bench` figure binaries.

use smarts::prelude::*;

fn sim() -> SmartsSim {
    SmartsSim::new(MachineConfig::eight_way())
}

/// The estimate must land within the predicted confidence interval plus
/// the warming-bias allowance the paper empirically bounds at ~2%.
fn assert_within_confidence(name: &str, estimate: f64, truth: f64, epsilon: f64) {
    let err = (estimate - truth).abs() / truth;
    let allowance = epsilon + 0.03;
    assert!(
        err <= allowance,
        "{name}: error {:.2}% exceeds interval {:.2}% + bias allowance",
        err * 100.0,
        epsilon * 100.0
    );
}

#[test]
fn sampling_matches_reference_on_steady_benchmark() {
    let sim = sim();
    let bench = find("loopy-1").unwrap().scaled(0.1);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 20).unwrap();
    let report = sim.sample(&bench, &params).unwrap();
    let reference = sim.reference(&bench, 1000);
    let epsilon = report
        .cpi()
        .achieved_epsilon(Confidence::THREE_SIGMA)
        .unwrap();
    assert_within_confidence("loopy-1 CPI", report.cpi().mean(), reference.cpi, epsilon);
    assert_within_confidence("loopy-1 EPI", report.epi().mean(), reference.epi, epsilon);
}

#[test]
fn sampling_matches_reference_on_branchy_benchmark() {
    let sim = sim();
    let bench = find("branchy-1").unwrap().scaled(0.08);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 25).unwrap();
    let report = sim.sample(&bench, &params).unwrap();
    let reference = sim.reference(&bench, 1000);
    let epsilon = report
        .cpi()
        .achieved_epsilon(Confidence::THREE_SIGMA)
        .unwrap();
    assert_within_confidence("branchy-1 CPI", report.cpi().mean(), reference.cpi, epsilon);
}

#[test]
fn sixteen_way_machine_runs_the_same_flow() {
    let sim = SmartsSim::new(MachineConfig::sixteen_way());
    let bench = find("stream-2").unwrap().scaled(0.05);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 15).unwrap();
    assert_eq!(params.detailed_warming, 4000, "16-way W per Section 4.4");
    let report = sim.sample(&bench, &params).unwrap();
    let reference = sim.reference(&bench, 1000);
    let epsilon = report
        .cpi()
        .achieved_epsilon(Confidence::THREE_SIGMA)
        .unwrap();
    assert_within_confidence(
        "stream-2@16 CPI",
        report.cpi().mean(),
        reference.cpi,
        epsilon,
    );
}

#[test]
fn wider_machine_is_not_slower_across_kernels() {
    let sim8 = SmartsSim::new(MachineConfig::eight_way());
    let sim16 = SmartsSim::new(MachineConfig::sixteen_way());
    for name in ["loopy-1", "stream-2"] {
        let bench = find(name).unwrap().scaled(0.03);
        let r8 = sim8.reference(&bench, 1000);
        let r16 = sim16.reference(&bench, 1000);
        assert!(
            r16.cpi <= r8.cpi * 1.15,
            "{name}: 16-way CPI {} vs 8-way {}",
            r16.cpi,
            r8.cpi
        );
    }
}

#[test]
fn memory_bound_benchmark_has_higher_cpi_than_compute_bound() {
    let sim = sim();
    let chase = sim.reference(&find("chase-2").unwrap().scaled(0.03), 1000);
    let loopy = sim.reference(&find("loopy-1").unwrap().scaled(0.03), 1000);
    assert!(
        chase.cpi > loopy.cpi * 2.0,
        "chase {} should dwarf loopy {}",
        chase.cpi,
        loopy.cpi
    );
}

#[test]
fn epi_tracks_but_damps_cpi_variation() {
    // The Figure 7 observation: EPI confidence intervals are tighter than
    // CPI intervals because energy varies less than latency.
    let sim = sim();
    let bench = find("phased-2").unwrap().scaled(0.3);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 30).unwrap();
    let report = sim.sample(&bench, &params).unwrap();
    let v_cpi = report.cpi().coefficient_of_variation();
    let v_epi = report.epi().coefficient_of_variation();
    assert!(v_cpi > 0.2, "phased workload should vary (V_CPI = {v_cpi})");
    assert!(v_epi < v_cpi, "V_EPI {v_epi} should be below V_CPI {v_cpi}");
}

#[test]
fn two_step_procedure_tightens_wide_intervals() {
    let sim = sim();
    let bench = find("phased-2").unwrap().scaled(0.3);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 10).unwrap();
    let outcome = sim
        .sample_two_step(&bench, &params, 0.10, Confidence::NINETY_FIVE)
        .unwrap();
    if let Some(tuned) = &outcome.tuned {
        let e_init = outcome
            .initial
            .cpi()
            .achieved_epsilon(Confidence::NINETY_FIVE)
            .unwrap();
        let e_tuned = tuned
            .cpi()
            .achieved_epsilon(Confidence::NINETY_FIVE)
            .unwrap();
        assert!(
            e_tuned < e_init,
            "tuned interval {e_tuned} should beat initial {e_init}"
        );
    }
}

#[test]
fn sampling_is_deterministic() {
    let sim = sim();
    let bench = find("sortk-2").unwrap().scaled(0.05);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 10).unwrap();
    let a = sim.sample(&bench, &params).unwrap();
    let b = sim.sample(&bench, &params).unwrap();
    assert_eq!(a.cpi().mean(), b.cpi().mean());
    assert_eq!(a.units.len(), b.units.len());
    for (ua, ub) in a.units.iter().zip(&b.units) {
        assert_eq!(ua.cycles, ub.cycles);
    }
}

#[test]
fn derived_metrics_estimate_with_confidence() {
    // The §3 generalization: any per-unit metric gets the same treatment
    // as CPI. Check branch MPKI against the reference run's own counters.
    let sim = sim();
    let bench = find("branchy-1").unwrap().scaled(0.08);
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 30)
        .unwrap()
        .with_offset(1)
        .unwrap();
    let report = sim.sample(&bench, &params).unwrap();
    let reference = sim.reference(&bench, 1000);

    let mpki = report.branch_mpki();
    let truth_mpki =
        reference.counters.branch_mispredicts as f64 * 1000.0 / reference.instructions as f64;
    assert!(
        truth_mpki > 1.0,
        "branchy workload mispredicts (got {truth_mpki})"
    );
    let err = (mpki.mean() - truth_mpki).abs() / truth_mpki;
    let eps = mpki.achieved_epsilon(Confidence::THREE_SIGMA).unwrap();
    assert!(
        err <= eps + 0.05,
        "MPKI error {:.1}% vs interval {:.1}%",
        err * 100.0,
        eps * 100.0
    );

    // Memory traffic on a miss-heavy workload is likewise estimable.
    let chase = find("chase-2").unwrap().scaled(0.05);
    let chase_params = SamplingParams::paper_defaults(sim.config(), chase.approx_len(), 15)
        .unwrap()
        .with_offset(1)
        .unwrap();
    let chase_report = sim.sample(&chase, &chase_params).unwrap();
    assert!(
        chase_report.memory_pki().mean() > 10.0,
        "chase misses to memory"
    );
}

//! Cross-crate warming behaviour: the Section 4 story at test scale.
//!
//! * Stale microarchitectural state biases estimates (Section 3.1's 50%
//!   figure for unwarmed units).
//! * Detailed warming reduces the bias as W grows (Table 4).
//! * Functional warming with a small analytic W removes most of it
//!   (Table 5).

use smarts::prelude::*;

fn sim() -> SmartsSim {
    SmartsSim::new(MachineConfig::eight_way())
}

/// Mean absolute CPI error of a sampling run against the reference.
fn sampling_error(bench: &Benchmark, warming: Warming, w: u64, n: u64, truth: f64) -> f64 {
    let sim = sim();
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        1000,
        w,
        warming,
        n,
        1, // skip the genuinely cold unit at instruction 0
    )
    .unwrap();
    let report = sim.sample(bench, &params).unwrap();
    (report.cpi().mean() - truth).abs() / truth
}

#[test]
fn no_warming_at_all_is_heavily_biased_on_cache_sensitive_code() {
    // chase-2 lives in L2: with cold caches at every unit and W = 0, the
    // measured CPI is far too high.
    let bench = find("chase-2").unwrap().scaled(0.12);
    let truth = sim().reference(&bench, 1000).cpi;
    let err_cold = sampling_error(&bench, Warming::None, 0, 25, truth);
    let err_warm = sampling_error(&bench, Warming::Functional, 2000, 25, truth);
    assert!(
        err_cold > 3.0 * err_warm.max(0.01),
        "cold error {:.1}% should dwarf warmed error {:.1}%",
        err_cold * 100.0,
        err_warm * 100.0
    );
}

#[test]
fn detailed_warming_reduces_bias_as_w_grows() {
    let bench = find("chase-2").unwrap().scaled(0.12);
    let truth = sim().reference(&bench, 1000).cpi;
    let err_w0 = sampling_error(&bench, Warming::None, 0, 20, truth);
    let err_w20k = sampling_error(&bench, Warming::None, 20_000, 20, truth);
    assert!(
        err_w20k < err_w0,
        "W=20k error {:.1}% should beat W=0 error {:.1}%",
        err_w20k * 100.0,
        err_w0 * 100.0
    );
}

#[test]
fn functional_warming_with_bounded_w_is_accurate() {
    // The headline Table 5 property: functional warming plus the small
    // recommended W keeps the estimate within its own confidence interval
    // plus the paper's ~2% warming-bias allowance.
    for name in ["chase-2", "stream-2", "branchy-2"] {
        let bench = find(name).unwrap().scaled(0.1);
        let truth = sim().reference(&bench, 1000).cpi;
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            30,
            1,
        )
        .unwrap();
        let report = sim().sample(&bench, &params).unwrap();
        let err = (report.cpi().mean() - truth).abs() / truth;
        let epsilon = report
            .cpi()
            .achieved_epsilon(Confidence::THREE_SIGMA)
            .unwrap();
        assert!(
            err < epsilon + 0.02,
            "{name}: functional-warming error {:.1}% vs interval ±{:.1}% + 2% bias",
            err * 100.0,
            epsilon * 100.0
        );
    }
}

#[test]
fn analytic_w_bound_holds() {
    // Section 4.4: W need never exceed store_buffer × mem_latency × width.
    let cfg = MachineConfig::eight_way();
    assert!(cfg.recommended_detailed_warming() <= cfg.detailed_warming_bound());
    let cfg16 = MachineConfig::sixteen_way();
    assert!(cfg16.recommended_detailed_warming() <= cfg16.detailed_warming_bound());
}

#[test]
fn functional_warming_state_matches_detailed_access_stream() {
    // The warm state after functional warming over a region must agree
    // with what a detailed pass over the same region produces, up to
    // pipeline-order effects: check cache *contents* on a deterministic
    // streaming kernel via miss counts on a probe pass.
    let cfg = MachineConfig::eight_way();
    let bench = find("stream-2").unwrap().scaled(0.02);

    let mut warm_f = WarmState::new(&cfg);
    let mut engine_f = smarts::core::FunctionalEngine::new(bench.load());
    engine_f.fast_forward_warming(50_000, &mut warm_f);

    let mut warm_d = WarmState::new(&cfg);
    let mut engine_d = smarts::core::FunctionalEngine::new(bench.load());
    let mut pipeline = Pipeline::new(&cfg);
    pipeline.run(&mut warm_d, &mut engine_d, 50_000, false);

    // Compare post-warming D-cache contents by probing the data arrays.
    let base = 0x1000_0000u64;
    let mut agree = 0;
    let mut total = 0;
    for line in 0..(3 * 2048 * 8 / 64) {
        let addr = base + line * 64;
        total += 1;
        if warm_f.hierarchy.l1d_resident(addr) == warm_d.hierarchy.l1d_resident(addr) {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / total as f64 > 0.9,
        "functional and detailed warming disagree on {}/{} lines",
        total - agree,
        total
    );
}

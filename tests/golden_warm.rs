//! Golden-state equivalence: every suite benchmark's `SampleReport` must
//! be bit-identical to the fingerprints recorded *before* the warm-state
//! layout optimisation (packed cache/TLB/BTB lines, MRU fast path,
//! batched warming loop).
//!
//! Functional warming's contract is that warmed state is exactly the
//! state the old structures would have produced for the same in-order
//! access stream; any layout or hot-loop change that perturbs a single
//! replacement decision shows up here as a changed cycle count or CPI
//! bit pattern. Regenerate the goldens only for intentional behaviour
//! changes: `cargo run --release --example gen_golden_warm >
//! tests/golden_sample_reports.txt`.

use smarts::prelude::*;

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    name: String,
    n: u64,
    cpi_mean_bits: u64,
    cpi_cv_bits: u64,
    epi_mean_bits: u64,
    unit_cycles: u64,
    fast_forwarded: u64,
    detailed_warmed: u64,
    measured: u64,
}

fn golden() -> Vec<Fingerprint> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_sample_reports.txt"
    );
    let text = std::fs::read_to_string(path).expect("golden file present");
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|line| {
            let f: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(f.len(), 9, "malformed golden line: {line}");
            Fingerprint {
                name: f[0].to_string(),
                n: f[1].parse().unwrap(),
                cpi_mean_bits: f[2].parse().unwrap(),
                cpi_cv_bits: f[3].parse().unwrap(),
                epi_mean_bits: f[4].parse().unwrap(),
                unit_cycles: f[5].parse().unwrap(),
                fast_forwarded: f[6].parse().unwrap(),
                detailed_warmed: f[7].parse().unwrap(),
                measured: f[8].parse().unwrap(),
            }
        })
        .collect()
}

fn fingerprint(bench: &Benchmark) -> Fingerprint {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let params =
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)
            .expect("valid sampling parameters");
    let report = sim.sample(bench, &params).expect("sampling run");
    Fingerprint {
        name: bench.name().to_string(),
        n: report.sample_size(),
        cpi_mean_bits: report.cpi().mean().to_bits(),
        cpi_cv_bits: report.cpi().coefficient_of_variation().to_bits(),
        epi_mean_bits: report.epi().mean().to_bits(),
        unit_cycles: report.units.iter().map(|u| u.cycles).sum(),
        fast_forwarded: report.instructions.fast_forwarded,
        detailed_warmed: report.instructions.detailed_warmed,
        measured: report.instructions.measured,
    }
}

#[test]
fn sample_reports_match_pre_optimisation_goldens() {
    let goldens = golden();
    assert_eq!(goldens.len(), smarts_workloads::suite().len());
    for want in &goldens {
        let bench = find(&want.name).expect("suite benchmark").scaled(0.05);
        let got = fingerprint(&bench);
        assert_eq!(&got, want, "{} diverged from its golden report", want.name);
    }
}

//! Cross-crate statistical properties: the Section 2/3 machinery applied
//! to real simulator populations.

use smarts::prelude::*;
use smarts::stats::{intraclass_correlation, systematic_sample_means, variation_curve};

fn sim() -> SmartsSim {
    SmartsSim::new(MachineConfig::eight_way())
}

#[test]
fn variation_curve_falls_and_flattens() {
    // The Figure 2 shape on a real population: V(U) decreases with U.
    let bench = find("hashp-2").unwrap().scaled(0.15);
    let reference = sim().reference(&bench, 100);
    let curve = variation_curve(&reference.unit_cpis, 100, &[1, 2, 5, 10, 50, 100]);
    assert!(curve.len() >= 4);
    for pair in curve.windows(2) {
        assert!(
            pair[1].coefficient_of_variation <= pair[0].coefficient_of_variation * 1.25,
            "V(U) should not grow: {:?} -> {:?}",
            pair[0],
            pair[1]
        );
    }
    let first = curve.first().unwrap().coefficient_of_variation;
    let last = curve.last().unwrap().coefficient_of_variation;
    assert!(
        last < first,
        "V should fall from {first} to below it, got {last}"
    );
}

#[test]
fn phased_workload_keeps_variation_at_large_u() {
    // The ammp/vpr tail of Figure 2: phase alternation keeps V(U) high
    // even for large units, defeating single-chunk measurement.
    let bench = find("phased-2").unwrap().scaled(0.25);
    let reference = sim().reference(&bench, 1000);
    let curve = variation_curve(&reference.unit_cpis, 1000, &[1, 10, 30]);
    let v_large = curve.last().unwrap().coefficient_of_variation;
    assert!(
        v_large > 0.3,
        "phased V at U=30k should stay high, got {v_large}"
    );
}

#[test]
fn intraclass_correlation_is_negligible() {
    // Section 2's homogeneity check: δ ≈ 0 at sampling-relevant intervals,
    // so systematic sampling behaves like random sampling.
    let bench = find("branchy-1").unwrap().scaled(0.1);
    let reference = sim().reference(&bench, 1000);
    let delta = intraclass_correlation(&reference.unit_cpis, 20);
    assert!(delta.abs() < 0.1, "delta = {delta}");
}

#[test]
fn systematic_phase_spread_is_within_statistical_expectation() {
    // All k possible systematic samples should estimate close to the true
    // mean when delta is negligible.
    let bench = find("sortk-2").unwrap().scaled(0.1);
    let reference = sim().reference(&bench, 1000);
    let truth = reference.unit_cpis.iter().sum::<f64>() / reference.unit_cpis.len() as f64;
    let means = systematic_sample_means(&reference.unit_cpis, 8);
    for (j, mean) in means.iter().enumerate() {
        let err = (mean - truth).abs() / truth;
        assert!(err < 0.25, "phase {j} mean error {:.1}%", err * 100.0);
    }
}

#[test]
fn required_n_prediction_is_self_consistent() {
    // Measure V̂ with one run, size a second run with required_n, and
    // check the second run achieves (approximately) the target interval.
    let simulator = sim();
    let bench = find("hashp-2").unwrap().scaled(0.3);
    let conf = Confidence::NINETY_FIVE;
    let target = 0.08;

    let probe_params =
        SamplingParams::paper_defaults(simulator.config(), bench.approx_len(), 20).unwrap();
    let probe = simulator.sample(&bench, &probe_params).unwrap();
    let n_needed = probe.cpi().required_n(target, conf).unwrap();

    let sized =
        SamplingParams::paper_defaults(simulator.config(), bench.approx_len(), n_needed.min(200))
            .unwrap();
    let run = simulator.sample(&bench, &sized).unwrap();
    let achieved = run.cpi().achieved_epsilon(conf).unwrap();
    // V̂ itself is noisy; allow 2× slack on the achieved interval.
    assert!(
        achieved < target * 2.0,
        "sized run achieved ±{:.1}% against target ±{:.1}%",
        achieved * 100.0,
        target * 100.0
    );
}

#[test]
fn unit_population_mean_equals_reference_cpi() {
    // The estimator is unbiased over the full population: averaging every
    // unit of the reference trace reproduces the stream CPI.
    let bench = find("stream-2").unwrap().scaled(0.1);
    let reference = sim().reference(&bench, 1000);
    let mean = reference.unit_cpis.iter().sum::<f64>() / reference.unit_cpis.len() as f64;
    assert!((mean - reference.cpi).abs() / reference.cpi < 0.02);
}

#[test]
fn random_and_systematic_designs_agree_on_real_population() {
    // With negligible intraclass correlation, random and systematic
    // designs drawn over the same population estimate the same mean.
    use smarts::stats::{RandomDesign, SystematicDesign};
    let bench = find("branchy-2").unwrap().scaled(0.1);
    let reference = sim().reference(&bench, 1000);
    let pop = &reference.unit_cpis;
    let truth = pop.iter().sum::<f64>() / pop.len() as f64;

    let sys = SystematicDesign::for_sample_size(1000, pop.len() as u64, 40, 0).unwrap();
    let sys_mean: f64 =
        sys.unit_indices().map(|i| pop[i as usize]).sum::<f64>() / sys.sample_size() as f64;

    let rnd = RandomDesign::draw(1000, pop.len() as u64, 40, 7).unwrap();
    let rnd_mean: f64 =
        rnd.unit_indices().map(|i| pop[i as usize]).sum::<f64>() / rnd.sample_size() as f64;

    assert!((sys_mean - truth).abs() / truth < 0.15);
    assert!((rnd_mean - truth).abs() / truth < 0.15);
}

//! SMARTS versus SimPoint (the Section 5.3 comparison) at test scale.

use smarts::prelude::*;
use smarts::simpoint::{estimate_cpi, SimPointConfig};

fn sim() -> SmartsSim {
    SmartsSim::new(MachineConfig::eight_way())
}

fn smarts_error(bench: &Benchmark, truth: f64, n: u64) -> f64 {
    let simulator = sim();
    let params = SamplingParams::paper_defaults(simulator.config(), bench.approx_len(), n)
        .unwrap()
        .with_offset(1)
        .unwrap();
    let report = simulator.sample(bench, &params).unwrap();
    (report.cpi().mean() - truth).abs() / truth
}

fn simpoint_error(bench: &Benchmark, truth: f64, interval: u64) -> f64 {
    let config = SimPointConfig {
        interval,
        ..SimPointConfig::default()
    };
    let estimate = estimate_cpi(&sim(), bench, &config);
    (estimate.cpi - truth).abs() / truth
}

#[test]
fn both_are_accurate_on_phase_stable_code() {
    let bench = find("loopy-1").unwrap().scaled(0.1);
    let truth = sim().reference(&bench, 1000).cpi;
    assert!(smarts_error(&bench, truth, 20) < 0.05);
    assert!(simpoint_error(&bench, truth, 20_000) < 0.10);
}

#[test]
fn smarts_beats_simpoint_on_locality_phased_code() {
    // The gcc-2 failure mode: identical basic-block vectors hide very
    // different data locality, so SimPoint's single representative per
    // cluster misestimates badly while SMARTS's spread units do not.
    let bench = find("phased-1").unwrap().scaled(0.3);
    let truth = sim().reference(&bench, 1000).cpi;
    let smarts = smarts_error(&bench, truth, 50);
    let simpoint = simpoint_error(&bench, truth, 50_000);
    assert!(
        smarts < simpoint,
        "SMARTS {:.1}% should beat SimPoint {:.1}% on phased code",
        smarts * 100.0,
        simpoint * 100.0
    );
    assert!(
        simpoint > 0.10,
        "SimPoint error {:.1}% should be visibly large on phased code",
        simpoint * 100.0
    );
}

#[test]
fn simpoint_offers_no_confidence_smarts_does() {
    // Not a numeric check — an API-level reproduction of the paper's
    // point (3): a SimPoint estimate is a bare number, while every SMARTS
    // report carries the V̂ needed for a confidence statement.
    let bench = find("branchy-1").unwrap().scaled(0.05);
    let simulator = sim();
    let params =
        SamplingParams::paper_defaults(simulator.config(), bench.approx_len(), 10).unwrap();
    let report = simulator.sample(&bench, &params).unwrap();
    let epsilon = report
        .cpi()
        .achieved_epsilon(Confidence::THREE_SIGMA)
        .unwrap();
    assert!(epsilon.is_finite() && epsilon > 0.0);

    let estimate = estimate_cpi(
        &simulator,
        &bench,
        &SimPointConfig {
            interval: 10_000,
            ..SimPointConfig::default()
        },
    );
    // The SimPoint result type simply has no confidence accessor; assert
    // the weights at least form a distribution.
    let total: f64 = estimate.selection.intervals.iter().map(|s| s.weight).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

//! End-to-end guarantees of the persistent checkpoint store: replaying
//! a store from disk is bit-identical to in-memory library replay at
//! any worker count, one store serves many detailed machines, and tail
//! damage costs only the damaged suffix.

use std::path::PathBuf;

use smarts::exec::{
    replay_store, replay_store_eager, sample_pipeline_saving, Executor, ParallelMode,
};
use smarts::prelude::*;

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smarts-store-{tag}-{}.ckpt", std::process::id()))
}

fn assert_bit_identical(replayed: &SampleReport, sequential: &SampleReport, what: &str) {
    assert_eq!(
        replayed.sample_size(),
        sequential.sample_size(),
        "{what}: sample size"
    );
    for (p, s) in replayed.units.iter().zip(&sequential.units) {
        assert_eq!(p.start_instr, s.start_instr, "{what}: unit placement");
        assert_eq!(p.cycles, s.cycles, "{what}: unit cycles");
        assert_eq!(p.cpi.to_bits(), s.cpi.to_bits(), "{what}: unit CPI bits");
        assert_eq!(p.epi.to_bits(), s.epi.to_bits(), "{what}: unit EPI bits");
    }
    let pairs = [
        (replayed.cpi(), sequential.cpi(), "CPI"),
        (replayed.epi(), sequential.epi(), "EPI"),
    ];
    for (p, s, which) in pairs {
        assert_eq!(
            p.mean().to_bits(),
            s.mean().to_bits(),
            "{what}: {which} mean bits"
        );
        assert_eq!(
            p.coefficient_of_variation().to_bits(),
            s.coefficient_of_variation().to_bits(),
            "{what}: {which} V̂ bits"
        );
        let (plo, phi) = p.interval(Confidence::THREE_SIGMA).expect("interval");
        let (slo, shi) = s.interval(Confidence::THREE_SIGMA).expect("interval");
        assert_eq!(plo.to_bits(), slo.to_bits(), "{what}: {which} CI low bits");
        assert_eq!(phi.to_bits(), shi.to_bits(), "{what}: {which} CI high bits");
    }
    assert_eq!(
        replayed.instructions, sequential.instructions,
        "{what}: mode accounting"
    );
}

#[test]
fn store_replay_is_bit_identical_across_the_suite() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let scale = 0.01;
    for bench in smarts::workloads::suite() {
        let bench = bench.scaled(scale);
        let p = SamplingParams::for_sample_size(
            bench.approx_len(),
            500,
            500,
            Warming::Functional,
            4,
            0,
        )
        .expect("valid sampling parameters");
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");

        let path = store_path(bench.name());
        let saver = Executor::new(2)
            .expect("executor")
            .with_mode(ParallelMode::Pipeline);
        let saved = sample_pipeline_saving(&saver, &sim, &bench, scale, &p, &path)
            .expect("warm-and-save run");
        assert_bit_identical(
            &saved.report.report,
            &sequential,
            &format!("{} while saving", bench.name()),
        );
        assert!(saved.write.records >= sequential.sample_size());

        for jobs in [1usize, 2, 8] {
            let executor = Executor::new(jobs).expect("executor");
            // Lazy mmap replay (the `replay_store` default) and the
            // eager full-decode oracle must agree byte-for-byte with
            // each other and with sequential library replay.
            let replayed = replay_store(&executor, &sim, &path).expect("store replay");
            assert!(
                replayed.damage.is_none(),
                "{}: clean store reported damage",
                bench.name()
            );
            assert_eq!(replayed.meta.benchmark, bench.name());
            assert_bit_identical(
                &replayed.report.report,
                &sequential,
                &format!("{} from disk at {jobs} jobs", bench.name()),
            );
            let eager = replay_store_eager(&executor, &sim, &path).expect("eager store replay");
            assert!(eager.damage.is_none());
            assert_eq!(eager.records, replayed.records);
            assert_bit_identical(
                &eager.report.report,
                &replayed.report.report,
                &format!("{} eager vs lazy at {jobs} jobs", bench.name()),
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn one_store_serves_many_detailed_machines() {
    // The warm-once/replay-many contract: the store fingerprints only
    // the functional-warming geometry, so machines differing in the
    // detailed core (widths, window) replay the same store.
    let wide = MachineConfig::eight_way();
    let mut narrow = wide.clone();
    narrow.issue_width = 2;
    narrow.fetch_width = 2;
    narrow.decode_width = 2;
    narrow.commit_width = 2;
    narrow.ruu_size = 32;

    let sim_wide = SmartsSim::new(wide);
    let sim_narrow = SmartsSim::new(narrow);
    let scale = 0.05;
    let bench = find("branchy-1").expect("suite benchmark").scaled(scale);
    let p =
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)
            .expect("valid sampling parameters");

    // One warming pass, persisted by the wide machine.
    let path = store_path("many-configs");
    let saver = Executor::new(2)
        .expect("executor")
        .with_mode(ParallelMode::Pipeline);
    sample_pipeline_saving(&saver, &sim_wide, &bench, scale, &p, &path).expect("warm-and-save run");

    // Both machines replay it with zero warming, each bit-identical to
    // its own sequential library replay.
    let executor = Executor::new(4).expect("executor");
    let mut means = Vec::new();
    for (label, sim) in [("8-way", &sim_wide), ("narrow", &sim_narrow)] {
        let library = sim.build_library(&bench, &p).expect("library builds");
        let sequential = sim.sample_library(&library).expect("sequential replay");
        let replayed = replay_store(&executor, sim, &path).expect("store replay");
        assert!(replayed.damage.is_none());
        assert_bit_identical(
            &replayed.report.report,
            &sequential,
            &format!("{label} from the shared store"),
        );
        means.push(replayed.report.report.cpi().mean());
    }
    // The detailed cores genuinely differ, and the narrowed core cannot
    // be faster than the 8-wide one on the same warm state.
    assert!(
        means[1] > means[0],
        "narrow core CPI {} should exceed 8-way CPI {}",
        means[1],
        means[0]
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn tail_damage_costs_only_the_damaged_suffix() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let scale = 0.05;
    let bench = find("stream-2").expect("suite benchmark").scaled(scale);
    let p =
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, 8, 0)
            .expect("valid sampling parameters");
    let path = store_path("tail-damage");
    let saver = Executor::new(2)
        .expect("executor")
        .with_mode(ParallelMode::Pipeline);
    let saved =
        sample_pipeline_saving(&saver, &sim, &bench, scale, &p, &path).expect("warm-and-save run");

    let bytes = std::fs::read(&path).expect("read store");
    let records_end = smarts::ckpt::MappedStore::open(&path, sim.config())
        .expect("pristine store maps")
        .records_end() as usize;

    // Clip the index footer: no record is lost — the full sample comes
    // back — but the damage is still surfaced as a typed error.
    std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate footer");
    let executor = Executor::new(2).expect("executor");
    let replayed = replay_store(&executor, &sim, &path).expect("footer-damaged replay");
    assert_eq!(replayed.records, saved.write.records);
    assert!(
        matches!(
            replayed.damage,
            Some(smarts::ckpt::CkptError::Corrupted { .. })
        ),
        "expected an index-damage report, got {:?}",
        replayed.damage
    );

    // Tear the last record: the intact prefix must still replay, with
    // the damage surfaced as a typed error instead of a failure.
    std::fs::write(&path, &bytes[..records_end - 3]).expect("truncate store");
    let executor = Executor::new(2).expect("executor");
    let replayed = replay_store(&executor, &sim, &path).expect("prefix replay");
    assert_eq!(replayed.records, saved.write.records - 1);
    assert!(
        matches!(
            replayed.damage,
            Some(smarts::ckpt::CkptError::Truncated { .. })
        ),
        "expected a truncation report, got {:?}",
        replayed.damage
    );
    assert_eq!(
        replayed.report.report.sample_size() as u64,
        replayed.records,
        "every intact record becomes a sample unit"
    );
    std::fs::remove_file(&path).ok();
}

use crate::{Inst, IsaError};
use std::fmt;

/// Base address of the text section.
///
/// Instruction `i` occupies the four bytes at `TEXT_BASE + 4·i`; the
/// instruction cache and I-TLB index on these addresses.
pub const TEXT_BASE: u64 = 0x0000_0000_0001_0000;

/// An assembled program: a flat text section of decoded instructions.
///
/// The program counter used throughout the simulator is an *instruction
/// index* into this section; [`Program::fetch_addr`] converts an index to
/// the byte address seen by the instruction cache.
///
/// Programs are produced by the [`Asm`](crate::Asm) builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a raw instruction vector into a program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] when `insts` is empty.
    pub fn from_insts(insts: Vec<Inst>) -> Result<Self, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        Ok(Program { insts })
    }

    /// Number of static instructions.
    pub fn len(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Whether the program has no instructions (never true for a
    /// constructed program; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at index `pc`, or `None` past the end.
    pub fn get(&self, pc: u64) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// Bytes one instruction occupies in the text section; the I-side
    /// warming granularity shared by every frontend (see
    /// [`Isa::INST_BYTES`](crate::Isa::INST_BYTES)).
    pub const INST_BYTES: u64 = 4;

    /// Byte address of instruction `pc` as seen by the instruction cache.
    pub fn fetch_addr(pc: u64) -> u64 {
        TEXT_BASE + pc * Self::INST_BYTES
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Static basic-block leaders: instruction indices that start a block
    /// (index 0, branch/jump targets, and fall-throughs of control
    /// instructions). Used by the SimPoint basic-block-vector profiler.
    pub fn basic_block_leaders(&self) -> Vec<u64> {
        let mut leaders = vec![false; self.insts.len()];
        if !leaders.is_empty() {
            leaders[0] = true;
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if inst.class().is_control() {
                if i + 1 < leaders.len() {
                    leaders[i + 1] = true;
                }
                // Direct targets are absolute instruction indices.
                use crate::Opcode::*;
                match inst.op {
                    Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal => {
                        let target = inst.imm;
                        if target >= 0 && (target as usize) < leaders.len() {
                            leaders[target as usize] = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        leaders
            .iter()
            .enumerate()
            .filter_map(|(i, &is_leader)| is_leader.then_some(i as u64))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program: {} instructions", self.insts.len())?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Opcode};

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::from_insts(vec![]), Err(IsaError::EmptyProgram));
    }

    #[test]
    fn fetch_addr_is_word_spaced() {
        assert_eq!(Program::fetch_addr(0), TEXT_BASE);
        assert_eq!(Program::fetch_addr(3), TEXT_BASE + 12);
    }

    #[test]
    fn basic_block_leaders_found() {
        // 0: addi        <- leader (entry)
        // 1: beq -> 4
        // 2: addi        <- leader (fall-through)
        // 3: jal -> 0
        // 4: halt        <- leader (branch target, fall-through of jal)
        let insts = vec![
            Inst::new(Opcode::Addi, reg::T0, reg::T0, 0, 1),
            Inst::new(Opcode::Beq, 0, reg::T0, reg::T1, 4),
            Inst::new(Opcode::Addi, reg::T0, reg::T0, 0, 1),
            Inst::new(Opcode::Jal, reg::ZERO, 0, 0, 0),
            Inst::new(Opcode::Halt, 0, 0, 0, 0),
        ];
        let program = Program::from_insts(insts).unwrap();
        assert_eq!(program.basic_block_leaders(), vec![0, 2, 4]);
    }

    #[test]
    fn get_past_end_is_none() {
        let program = Program::from_insts(vec![Inst::nop()]).unwrap();
        assert!(program.get(0).is_some());
        assert!(program.get(1).is_none());
    }
}

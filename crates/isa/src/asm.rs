use crate::{reg, Inst, IsaError, Opcode, Program};

/// An opaque forward-referenceable code label.
///
/// Created with [`Asm::label`], bound to the current position with
/// [`Asm::bind`], and usable as a branch or jump target before or after
/// binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A label-based assembler for building [`Program`]s.
///
/// There is no binary instruction encoding in this substrate; the
/// assembler exists to resolve labels and to make workload kernels
/// readable. Every emit method returns `&mut Self` so sequences chain.
///
/// # Examples
///
/// ```
/// use smarts_isa::{Asm, reg};
///
/// # fn main() -> Result<(), smarts_isa::IsaError> {
/// let mut a = Asm::new();
/// let done = a.label();
/// a.li(reg::T0, 3);
/// a.beq(reg::T0, reg::ZERO, done); // forward reference
/// a.addi(reg::T0, reg::T0, -1);
/// a.bind(done)?;
/// a.halt();
/// let program = a.finish()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    // labels[id] = Some(instruction index) once bound.
    labels: Vec<Option<u64>>,
    // (instruction index, label id) pairs whose imm awaits resolution.
    fixups: Vec<(usize, usize)>,
}

macro_rules! emit_rrr {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
                self.emit(Inst::new(Opcode::$op, rd, rs1, rs2, 0))
            }
        )+
    };
}

macro_rules! emit_rri {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: u8, rs1: u8, imm: i64) -> &mut Self {
                self.emit(Inst::new(Opcode::$op, rd, rs1, 0, imm))
            }
        )+
    };
}

macro_rules! emit_branch {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
                self.emit_label_target(Opcode::$op, 0, rs1, rs2, target)
            }
        )+
    };
}

macro_rules! emit_mem {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, r: u8, base: u8, disp: i64) -> &mut Self {
                self.emit(Inst::new(Opcode::$op, r, base, 0, disp))
            }
        )+
    };
}

macro_rules! emit_store {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, src: u8, base: u8, disp: i64) -> &mut Self {
                self.emit(Inst::new(Opcode::$op, 0, base, src, disp))
            }
        )+
    };
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current position (index of the next emitted instruction).
    pub fn here(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RedefinedLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<&mut Self, IsaError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(IsaError::RedefinedLabel(label.0));
        }
        *slot = Some(self.insts.len() as u64);
        Ok(self)
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit_label_target(
        &mut self,
        op: Opcode,
        rd: u8,
        rs1: u8,
        rs2: u8,
        target: Label,
    ) -> &mut Self {
        let at = self.insts.len();
        self.insts.push(Inst::new(op, rd, rs1, rs2, 0));
        self.fixups.push((at, target.0));
        self
    }

    emit_rrr! {
        /// `rd ← rs1 + rs2`
        add => Add,
        /// `rd ← rs1 − rs2`
        sub => Sub,
        /// `rd ← rs1 × rs2` (low 64 bits)
        mul => Mul,
        /// `rd ← rs1 ÷ rs2` (unsigned; ÷0 yields all-ones)
        div => Div,
        /// `rd ← rs1 mod rs2` (unsigned; mod 0 yields rs1)
        rem => Rem,
        /// `rd ← rs1 & rs2`
        and => And,
        /// `rd ← rs1 | rs2`
        or => Or,
        /// `rd ← rs1 ^ rs2`
        xor => Xor,
        /// `rd ← rs1 << (rs2 & 63)`
        sll => Sll,
        /// `rd ← rs1 >> (rs2 & 63)` (logical)
        srl => Srl,
        /// `rd ← rs1 >> (rs2 & 63)` (arithmetic)
        sra => Sra,
        /// `rd ← (rs1 <ₛ rs2) ? 1 : 0`
        slt => Slt,
        /// `rd ← (rs1 <ᵤ rs2) ? 1 : 0`
        sltu => Sltu,
        /// `rd ← min(rs1, rs2)` over f64 registers
        fmin => FMin,
        /// `rd ← max(rs1, rs2)` over f64 registers
        fmax => FMax,
        /// `rd ← rs1 + rs2` over f64 registers
        fadd => FAdd,
        /// `rd ← rs1 − rs2` over f64 registers
        fsub => FSub,
        /// `rd ← rs1 × rs2` over f64 registers
        fmul => FMul,
        /// `rd ← rs1 ÷ rs2` over f64 registers
        fdiv => FDiv,
        /// `rd ← (f[rs1] < f[rs2]) ? 1 : 0` into the integer file
        flt => FLt,
        /// `rd ← (f[rs1] ≤ f[rs2]) ? 1 : 0` into the integer file
        fle => FLe,
        /// `rd ← (f[rs1] = f[rs2]) ? 1 : 0` into the integer file
        feq => FEq,
    }

    emit_rri! {
        /// `rd ← rs1 + imm`
        addi => Addi,
        /// `rd ← rs1 & imm`
        andi => Andi,
        /// `rd ← rs1 | imm`
        ori => Ori,
        /// `rd ← rs1 ^ imm`
        xori => Xori,
        /// `rd ← rs1 << (imm & 63)`
        slli => Slli,
        /// `rd ← rs1 >> (imm & 63)` (logical)
        srli => Srli,
        /// `rd ← rs1 >> (imm & 63)` (arithmetic)
        srai => Srai,
        /// `rd ← (rs1 <ₛ imm) ? 1 : 0`
        slti => Slti,
    }

    emit_mem! {
        /// Load signed byte.
        lb => Lb,
        /// Load unsigned byte.
        lbu => Lbu,
        /// Load signed halfword.
        lh => Lh,
        /// Load unsigned halfword.
        lhu => Lhu,
        /// Load signed word.
        lw => Lw,
        /// Load unsigned word.
        lwu => Lwu,
        /// Load doubleword.
        ld => Ld,
        /// Load an f64 into a floating-point register.
        fld => FLd,
    }

    emit_store! {
        /// Store low byte of `src`.
        sb => Sb,
        /// Store low halfword of `src`.
        sh => Sh,
        /// Store low word of `src`.
        sw => Sw,
        /// Store doubleword of `src`.
        sd => Sd,
        /// Store floating-point register `src` as an f64.
        fsd => FSd,
    }

    emit_branch! {
        /// Branch to `target` if `rs1 = rs2`.
        beq => Beq,
        /// Branch to `target` if `rs1 ≠ rs2`.
        bne => Bne,
        /// Branch to `target` if `rs1 <ₛ rs2`.
        blt => Blt,
        /// Branch to `target` if `rs1 ≥ₛ rs2`.
        bge => Bge,
        /// Branch to `target` if `rs1 <ᵤ rs2`.
        bltu => Bltu,
        /// Branch to `target` if `rs1 ≥ᵤ rs2`.
        bgeu => Bgeu,
    }

    /// Branch to `target` if `rs1 ≤ₛ rs2` (pseudo-op: `bge rs2, rs1`).
    pub fn ble(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.bge(rs2, rs1, target)
    }

    /// Branch to `target` if `rs1 >ₛ rs2` (pseudo-op: `blt rs2, rs1`).
    pub fn bgt(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.blt(rs2, rs1, target)
    }

    /// Branch to `target` if `rs1 = 0`.
    pub fn beqz(&mut self, rs1: u8, target: Label) -> &mut Self {
        self.beq(rs1, reg::ZERO, target)
    }

    /// Branch to `target` if `rs1 ≠ 0`.
    pub fn bnez(&mut self, rs1: u8, target: Label) -> &mut Self {
        self.bne(rs1, reg::ZERO, target)
    }

    /// `rd ← imm` (load full 64-bit immediate).
    pub fn li(&mut self, rd: u8, imm: i64) -> &mut Self {
        self.emit(Inst::new(Opcode::Li, rd, 0, 0, imm))
    }

    /// `rd ← f64 immediate` (floating-point register).
    pub fn fli(&mut self, rd: u8, value: f64) -> &mut Self {
        self.emit(Inst::new(Opcode::FLi, rd, 0, 0, value.to_bits() as i64))
    }

    /// `rd ← rs1` (pseudo-op: `addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    /// `f[rd] ← f[rs1] + f64 ALU move` (pseudo-op: `fadd rd, rs1, f0`
    /// is wrong in general, so use min with itself).
    pub fn fmv(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FMin, rd, rs1, rs1, 0))
    }

    /// `f[rd] ← √f[rs1]`
    pub fn fsqrt(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FSqrt, rd, rs1, 0, 0))
    }

    /// `f[rd] ← |f[rs1]|`
    pub fn fabs(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FAbs, rd, rs1, 0, 0))
    }

    /// `f[rd] ← −f[rs1]`
    pub fn fneg(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FNeg, rd, rs1, 0, 0))
    }

    /// `f[rd] ← (f64) x[rs1]` (signed conversion).
    pub fn fcvt_if(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FCvtIf, rd, rs1, 0, 0))
    }

    /// `x[rd] ← (i64) f[rs1]` (truncating, saturating conversion).
    pub fn fcvt_fi(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FCvtFi, rd, rs1, 0, 0))
    }

    /// `f[rd] ← bits of x[rs1]`.
    pub fn fmv_if(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FMvIf, rd, rs1, 0, 0))
    }

    /// `x[rd] ← bits of f[rs1]`.
    pub fn fmv_fi(&mut self, rd: u8, rs1: u8) -> &mut Self {
        self.emit(Inst::new(Opcode::FMvFi, rd, rs1, 0, 0))
    }

    /// Unconditional jump to `target` (pseudo-op: `jal x0, target`).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.emit_label_target(Opcode::Jal, reg::ZERO, 0, 0, target)
    }

    /// Call: `ra ← pc+1; pc ← target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.emit_label_target(Opcode::Jal, reg::RA, 0, 0, target)
    }

    /// Return: `pc ← ra` (pseudo-op: `jalr x0, ra, 0`).
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Inst::new(Opcode::Jalr, reg::ZERO, reg::RA, 0, 0))
    }

    /// Indirect jump: `pc ← x[rs1] + imm` (instruction-index arithmetic).
    pub fn jr(&mut self, rs1: u8, imm: i64) -> &mut Self {
        self.emit(Inst::new(Opcode::Jalr, reg::ZERO, rs1, 0, imm))
    }

    /// Indirect call: `ra ← pc+1; pc ← x[rs1] + imm`.
    pub fn callr(&mut self, rs1: u8, imm: i64) -> &mut Self {
        self.emit(Inst::new(Opcode::Jalr, reg::RA, rs1, 0, imm))
    }

    /// `jal rd, target` with an arbitrary link register.
    pub fn jal(&mut self, rd: u8, target: Label) -> &mut Self {
        self.emit_label_target(Opcode::Jal, rd, 0, 0, target)
    }

    /// Loads the (eventual) instruction index of `target` into `rd`,
    /// for computed jumps through `jr`.
    pub fn la(&mut self, rd: u8, target: Label) -> &mut Self {
        self.emit_label_target(Opcode::Li, rd, 0, 0, target)
    }

    /// No-operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::nop())
    }

    /// Halts the program.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::new(Opcode::Halt, 0, 0, 0, 0))
    }

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if any referenced label was never
    /// bound, or [`IsaError::EmptyProgram`] if nothing was emitted.
    pub fn finish(mut self) -> Result<Program, IsaError> {
        for &(at, label_id) in &self.fixups {
            let target = self.labels[label_id].ok_or(IsaError::UnboundLabel(label_id))?;
            self.insts[at].imm = target as i64;
        }
        Program::from_insts(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let fwd = a.label();
        let back = a.label();
        a.bind(back).unwrap();
        a.addi(reg::T0, reg::T0, 1); // index 0
        a.beq(reg::T0, reg::T1, fwd); // index 1 -> 4
        a.j(back); // index 2 -> 0
        a.nop(); // index 3
        a.bind(fwd).unwrap();
        a.halt(); // index 4
        let program = a.finish().unwrap();
        assert_eq!(program.get(1).unwrap().imm, 4);
        assert_eq!(program.get(2).unwrap().imm, 0);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let never = a.label();
        a.j(never);
        assert_eq!(a.finish(), Err(IsaError::UnboundLabel(0)));
    }

    #[test]
    fn double_bind_is_an_error() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l).unwrap();
        a.nop();
        assert_eq!(a.bind(l).unwrap_err(), IsaError::RedefinedLabel(0));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(Asm::new().finish(), Err(IsaError::EmptyProgram));
    }

    #[test]
    fn pseudo_ops_lower_correctly() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l).unwrap();
        a.ble(reg::T0, reg::T1, l); // bge t1, t0
        a.bgt(reg::T0, reg::T1, l); // blt t1, t0
        a.mv(reg::T2, reg::T3);
        a.ret();
        let program = a.finish().unwrap();
        let ble = program.get(0).unwrap();
        assert_eq!(ble.op, Opcode::Bge);
        assert_eq!((ble.rs1, ble.rs2), (reg::T1, reg::T0));
        let bgt = program.get(1).unwrap();
        assert_eq!(bgt.op, Opcode::Blt);
        let mv = program.get(2).unwrap();
        assert_eq!((mv.op, mv.imm), (Opcode::Addi, 0));
        assert_eq!(program.get(3).unwrap().class(), OpClass::Return);
    }

    #[test]
    fn la_materializes_label_index() {
        let mut a = Asm::new();
        let f = a.label();
        a.la(reg::T0, f);
        a.jr(reg::T0, 0);
        a.bind(f).unwrap();
        a.halt();
        let program = a.finish().unwrap();
        assert_eq!(program.get(0).unwrap().imm, 2);
    }

    #[test]
    fn call_links_ra() {
        let mut a = Asm::new();
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f).unwrap();
        a.ret();
        let program = a.finish().unwrap();
        assert_eq!(program.get(0).unwrap().class(), OpClass::Call);
        assert_eq!(program.get(0).unwrap().imm, 2);
    }
}

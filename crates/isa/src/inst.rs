use std::fmt;

/// Conventional register names for the integer register file.
///
/// Register 0 is hardwired to zero, as in MIPS/RISC-V. The remaining names
/// follow the RISC-V calling convention loosely; nothing in the simulator
/// enforces the convention, it simply makes workload kernels readable.
pub mod reg {
    /// Hardwired zero.
    pub const ZERO: u8 = 0;
    /// Return address (link) register; `jal ra, …` is classified as a call.
    pub const RA: u8 = 1;
    /// Stack pointer.
    pub const SP: u8 = 2;
    /// Global pointer.
    pub const GP: u8 = 3;
    /// Temporaries.
    pub const T0: u8 = 4;
    /// Temporary 1.
    pub const T1: u8 = 5;
    /// Temporary 2.
    pub const T2: u8 = 6;
    /// Temporary 3.
    pub const T3: u8 = 7;
    /// Temporary 4.
    pub const T4: u8 = 8;
    /// Temporary 5.
    pub const T5: u8 = 9;
    /// Temporary 6.
    pub const T6: u8 = 10;
    /// Temporary 7.
    pub const T7: u8 = 11;
    /// Argument / result registers.
    pub const A0: u8 = 12;
    /// Argument 1.
    pub const A1: u8 = 13;
    /// Argument 2.
    pub const A2: u8 = 14;
    /// Argument 3.
    pub const A3: u8 = 15;
    /// Callee-saved registers.
    pub const S0: u8 = 16;
    /// Saved 1.
    pub const S1: u8 = 17;
    /// Saved 2.
    pub const S2: u8 = 18;
    /// Saved 3.
    pub const S3: u8 = 19;
    /// Saved 4.
    pub const S4: u8 = 20;
    /// Saved 5.
    pub const S5: u8 = 21;
    /// Saved 6.
    pub const S6: u8 = 22;
    /// Saved 7.
    pub const S7: u8 = 23;
}

/// An architectural register reference distinguishing the integer and
/// floating-point files.
///
/// Encoded compactly (0–31 integer, 32–63 floating point) so dependence
/// tracking in the timing model can index a flat 64-entry rename map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// An integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn int(index: u8) -> Self {
        assert!(index < 32, "integer register index {index} out of range");
        ArchReg(index)
    }

    /// A floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn fp(index: u8) -> Self {
        assert!(index < 32, "fp register index {index} out of range");
        ArchReg(32 + index)
    }

    /// Flat index in `0..64` (integer file first).
    pub fn flat(&self) -> usize {
        self.0 as usize
    }

    /// Whether this names the integer file.
    pub fn is_int(&self) -> bool {
        self.0 < 32
    }

    /// Index within its file, `0..32`.
    pub fn index(&self) -> u8 {
        self.0 & 31
    }

    /// Whether this is the hardwired integer zero register.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "x{}", self.index())
        } else {
            write!(f, "f{}", self.index())
        }
    }
}

/// Operation of a decoded instruction.
///
/// Branch/jump targets are *absolute instruction indices* stored in
/// [`Inst::imm`]; the assembler resolves labels to indices. `Jalr` computes
/// its target as `regs[rs1] + imm` where the register holds an instruction
/// index (as written by a preceding `Jal`/`Li`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are conventional RISC mnemonics
pub enum Opcode {
    // Integer register-register.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    // Integer register-immediate.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Li,
    // Floating point (f64) register-register.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FSqrt,
    FMin,
    FMax,
    FAbs,
    FNeg,
    // Conversions / moves between files. FCvtIf: int→fp, FCvtFi: fp→int.
    FCvtIf,
    FCvtFi,
    FMvIf,
    FMvFi,
    FLi,
    // FP comparison writing an integer register.
    FLt,
    FLe,
    FEq,
    // Memory. Loads: rd ← mem[regs[rs1]+imm]; stores: mem[regs[rs1]+imm] ← rs2.
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Lwu,
    Ld,
    Sb,
    Sh,
    Sw,
    Sd,
    FLd,
    FSd,
    // Control. Conditional branches compare rs1, rs2 and jump to imm.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // Unconditional: rd ← pc+1; pc ← imm (Jal) or regs[rs1]+imm (Jalr).
    Jal,
    Jalr,
    Nop,
    Halt,
}

/// Instruction class used for functional-unit selection, timing, and
/// energy accounting — the analogue of SimpleScalar's instruction classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU operation (1-cycle).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder (long latency, unpipelined).
    IntDiv,
    /// Simple floating-point operation.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency, unpipelined).
    FpDiv,
    /// Memory load (int or fp).
    Load,
    /// Memory store (int or fp).
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional jump (direct or indirect, non-call, non-return).
    Jump,
    /// Call (writes the link register).
    Call,
    /// Return (indirect jump through the link register).
    Return,
    /// No operation.
    Nop,
    /// Program termination.
    Halt,
}

impl OpClass {
    /// Whether instructions of this class redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Return
        )
    }

    /// Whether instructions of this class access data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the instruction writes a floating-point destination.
    pub fn is_fp(&self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A decoded instruction.
///
/// Register fields index the integer or floating-point file depending on
/// the opcode; [`Inst::defs`] and [`Inst::uses`] return file-qualified
/// [`ArchReg`]s for dependence tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register (meaning depends on the opcode).
    pub rd: u8,
    /// First source register.
    pub rs1: u8,
    /// Second source register.
    pub rs2: u8,
    /// Immediate: ALU constant, memory displacement, branch/jump target
    /// (absolute instruction index), or raw `f64` bits for `FLi`.
    pub imm: i64,
}

impl Inst {
    /// Creates an instruction; convenience constructor used by the
    /// assembler and by tests.
    pub fn new(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: i64) -> Self {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// The canonical no-operation instruction.
    pub fn nop() -> Self {
        Inst::new(Opcode::Nop, 0, 0, 0, 0)
    }

    /// Instruction class for timing and energy purposes.
    pub fn class(&self) -> OpClass {
        use Opcode::*;
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Li | FMvIf | FMvFi | FLi | FLt | FLe | FEq => {
                OpClass::IntAlu
            }
            Mul => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            FAdd | FSub | FMin | FMax | FAbs | FNeg | FCvtIf | FCvtFi => OpClass::FpAlu,
            FMul => OpClass::FpMul,
            FDiv | FSqrt => OpClass::FpDiv,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | FLd => OpClass::Load,
            Sb | Sh | Sw | Sd | FSd => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => OpClass::CondBranch,
            Jal => {
                if self.rd == reg::RA {
                    OpClass::Call
                } else {
                    OpClass::Jump
                }
            }
            Jalr => {
                if self.rd == reg::RA {
                    OpClass::Call
                } else if self.rd == reg::ZERO && self.rs1 == reg::RA {
                    OpClass::Return
                } else {
                    OpClass::Jump
                }
            }
            Nop => OpClass::Nop,
            Halt => OpClass::Halt,
        }
    }

    /// The architectural register this instruction writes, if any.
    ///
    /// Writes to the hardwired integer zero register are reported as
    /// `None` (they have no dataflow effect).
    pub fn defs(&self) -> Option<ArchReg> {
        use Opcode::*;
        let def = match self.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi
            | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li | FCvtFi | FMvFi | FLt | FLe
            | FEq | Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => Some(ArchReg::int(self.rd)),
            FAdd | FSub | FMul | FDiv | FSqrt | FMin | FMax | FAbs | FNeg | FCvtIf | FMvIf
            | FLi | FLd => Some(ArchReg::fp(self.rd)),
            Jal | Jalr => Some(ArchReg::int(self.rd)),
            Sb | Sh | Sw | Sd | FSd | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt => None,
        };
        def.filter(|r| !r.is_zero())
    }

    /// The architectural registers this instruction reads (up to two).
    ///
    /// Reads of the hardwired integer zero register are omitted.
    pub fn uses(&self) -> [Option<ArchReg>; 2] {
        use Opcode::*;
        let (a, b) = match self.op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                (Some(ArchReg::int(self.rs1)), Some(ArchReg::int(self.rs2)))
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                (Some(ArchReg::int(self.rs1)), None)
            }
            Li | FLi | Nop | Halt | Jal => (None, None),
            FAdd | FSub | FMul | FDiv | FMin | FMax => {
                (Some(ArchReg::fp(self.rs1)), Some(ArchReg::fp(self.rs2)))
            }
            FSqrt | FAbs | FNeg | FCvtFi | FMvFi => (Some(ArchReg::fp(self.rs1)), None),
            FCvtIf | FMvIf => (Some(ArchReg::int(self.rs1)), None),
            FLt | FLe | FEq => (Some(ArchReg::fp(self.rs1)), Some(ArchReg::fp(self.rs2))),
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | FLd => (Some(ArchReg::int(self.rs1)), None),
            Sb | Sh | Sw | Sd => (Some(ArchReg::int(self.rs1)), Some(ArchReg::int(self.rs2))),
            FSd => (Some(ArchReg::int(self.rs1)), Some(ArchReg::fp(self.rs2))),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                (Some(ArchReg::int(self.rs1)), Some(ArchReg::int(self.rs2)))
            }
            Jalr => (Some(ArchReg::int(self.rs1)), None),
        };
        [a.filter(|r| !r.is_zero()), b.filter(|r| !r.is_zero())]
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} rd=x{} rs1=x{} rs2=x{} imm={}",
            self.op, self.rd, self.rs1, self.rs2, self.imm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_flat_encoding() {
        assert_eq!(ArchReg::int(0).flat(), 0);
        assert_eq!(ArchReg::int(31).flat(), 31);
        assert_eq!(ArchReg::fp(0).flat(), 32);
        assert_eq!(ArchReg::fp(31).flat(), 63);
        assert!(ArchReg::int(0).is_zero());
        assert!(!ArchReg::fp(0).is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_rejects_large_index() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn call_and_return_classification() {
        let call = Inst::new(Opcode::Jal, reg::RA, 0, 0, 100);
        assert_eq!(call.class(), OpClass::Call);
        let jump = Inst::new(Opcode::Jal, reg::ZERO, 0, 0, 100);
        assert_eq!(jump.class(), OpClass::Jump);
        let ret = Inst::new(Opcode::Jalr, reg::ZERO, reg::RA, 0, 0);
        assert_eq!(ret.class(), OpClass::Return);
        let icall = Inst::new(Opcode::Jalr, reg::RA, reg::T0, 0, 0);
        assert_eq!(icall.class(), OpClass::Call);
    }

    #[test]
    fn zero_register_has_no_dataflow() {
        let inst = Inst::new(Opcode::Add, 0, 0, 0, 0);
        assert_eq!(inst.defs(), None);
        assert_eq!(inst.uses(), [None, None]);
    }

    #[test]
    fn load_defs_and_uses() {
        let ld = Inst::new(Opcode::Ld, reg::T0, reg::S0, 0, 16);
        assert_eq!(ld.defs(), Some(ArchReg::int(reg::T0)));
        assert_eq!(ld.uses(), [Some(ArchReg::int(reg::S0)), None]);
        assert_eq!(ld.class(), OpClass::Load);
    }

    #[test]
    fn fp_store_reads_both_files() {
        let fsd = Inst::new(Opcode::FSd, 0, reg::S0, 3, 8);
        assert_eq!(fsd.defs(), None);
        assert_eq!(
            fsd.uses(),
            [Some(ArchReg::int(reg::S0)), Some(ArchReg::fp(3))]
        );
        assert_eq!(fsd.class(), OpClass::Store);
    }

    #[test]
    fn fp_load_writes_fp_file() {
        let fld = Inst::new(Opcode::FLd, 5, reg::S0, 0, 0);
        assert_eq!(fld.defs(), Some(ArchReg::fp(5)));
    }

    #[test]
    fn class_covers_every_opcode() {
        use Opcode::*;
        // Exercise class()/defs()/uses() for every opcode to catch panics.
        let all = [
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Addi, Andi, Ori, Xori,
            Slli, Srli, Srai, Slti, Li, FAdd, FSub, FMul, FDiv, FSqrt, FMin, FMax, FAbs, FNeg,
            FCvtIf, FCvtFi, FMvIf, FMvFi, FLi, FLt, FLe, FEq, Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld, Sb,
            Sh, Sw, Sd, FLd, FSd, Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr, Nop, Halt,
        ];
        for op in all {
            let inst = Inst::new(op, 1, 2, 3, 4);
            let _ = inst.class();
            let _ = inst.defs();
            let _ = inst.uses();
        }
    }

    #[test]
    fn control_and_mem_predicates() {
        assert!(OpClass::CondBranch.is_control());
        assert!(OpClass::Return.is_control());
        assert!(!OpClass::Load.is_control());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::FpDiv.is_fp());
        assert!(!OpClass::IntDiv.is_fp());
    }
}

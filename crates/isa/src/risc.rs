//! [`RiscIsa`]: a compact RISC-style frontend with fixed 32-bit binary
//! encodings, covering the integer load/store + branch + ALU subset of
//! the shared operation vocabulary.
//!
//! Modeled on fuel-asm/RISC-V: every instruction is one little-endian
//! `u32` word whose top six bits select the operation and whose remaining
//! 26 bits are laid out per format —
//!
//! ```text
//! R-type  (reg-reg ALU)      [op:6][rd:5][rs1:5][rs2:5][0:11]
//! I-type  (imm ALU, loads)   [op:6][rd:5][rs1:5][imm:16 signed]
//! S-type  (stores)           [op:6][rs1:5][rs2:5][imm:16 signed]
//! B-type  (branches)         [op:6][rs1:5][rs2:5][target:16]
//! U-type  (li, jal)          [op:6][rd:5][imm:21 signed]
//! ```
//!
//! `Lui` is the RISC-V-style shifted load-immediate: its 21-bit field is
//! decoded as `imm << 12`, which is how workload kernels materialise
//! 4 KiB-aligned data-segment base addresses that exceed the plain
//! 21-bit `li` range. Both decode to the shared [`Opcode::Li`], so the
//! interpreter semantics are untouched.
//!
//! Encoding is partial by design: [`RiscIsa::encode`] returns `None` for
//! floating-point operations and for immediates that do not fit their
//! field. A workload enters the RISC suite only when every instruction of
//! its built-in program encodes (see `smarts-workloads`), which also
//! guarantees `decode(encode(i)) == i` — the RISC frontend then executes
//! the *identical* committed stream through the shared interpreter while
//! exercising a real fetch-and-decode of the binary form on every step.

use crate::isa::{Isa, IsaId};
use crate::{Cpu, ExecRecord, Inst, IsaError, Memory, Opcode, Program};

/// Field layout constants; see the module docs for the formats.
const OP_SHIFT: u32 = 26;
const RD_SHIFT: u32 = 21;
const RS1_SHIFT: u32 = 16;
const RS2_SHIFT: u32 = 11;
const REG_MASK: u32 = 0x1F;
const IMM16_MASK: u32 = 0xFFFF;
const IMM21_MASK: u32 = 0x1F_FFFF;

/// `Lui`'s decoded immediate is its field shifted left by this amount.
const LUI_SHIFT: u32 = 12;

/// Operation tags (the top six bits). Tag 0 is reserved invalid so an
/// all-zero word never decodes. Tags are part of the encoding; never
/// reorder or reuse them.
#[rustfmt::skip]
mod tag {
    pub const ADD: u32 = 1;   pub const SUB: u32 = 2;   pub const MUL: u32 = 3;
    pub const DIV: u32 = 4;   pub const REM: u32 = 5;   pub const AND: u32 = 6;
    pub const OR: u32 = 7;    pub const XOR: u32 = 8;   pub const SLL: u32 = 9;
    pub const SRL: u32 = 10;  pub const SRA: u32 = 11;  pub const SLT: u32 = 12;
    pub const SLTU: u32 = 13; pub const ADDI: u32 = 14; pub const ANDI: u32 = 15;
    pub const ORI: u32 = 16;  pub const XORI: u32 = 17; pub const SLLI: u32 = 18;
    pub const SRLI: u32 = 19; pub const SRAI: u32 = 20; pub const SLTI: u32 = 21;
    pub const LI: u32 = 22;   pub const LUI: u32 = 23;  pub const LB: u32 = 24;
    pub const LBU: u32 = 25;  pub const LH: u32 = 26;   pub const LHU: u32 = 27;
    pub const LW: u32 = 28;   pub const LWU: u32 = 29;  pub const LD: u32 = 30;
    pub const SB: u32 = 31;   pub const SH: u32 = 32;   pub const SW: u32 = 33;
    pub const SD: u32 = 34;   pub const BEQ: u32 = 35;  pub const BNE: u32 = 36;
    pub const BLT: u32 = 37;  pub const BGE: u32 = 38;  pub const BLTU: u32 = 39;
    pub const BGEU: u32 = 40; pub const JAL: u32 = 41;  pub const JALR: u32 = 42;
    pub const NOP: u32 = 43;  pub const HALT: u32 = 44;
}

fn fits_i16(imm: i64) -> bool {
    i16::try_from(imm).is_ok()
}

fn fits_u16(imm: i64) -> bool {
    (0..=0xFFFF).contains(&imm)
}

fn fits_i21(imm: i64) -> bool {
    (-(1 << 20)..(1 << 20)).contains(&imm)
}

fn fits_u21(imm: i64) -> bool {
    (0..(1 << 21)).contains(&imm)
}

fn regs_ok(inst: &Inst) -> bool {
    inst.rd < 32 && inst.rs1 < 32 && inst.rs2 < 32
}

fn enc_r(op: u32, inst: &Inst) -> u32 {
    (op << OP_SHIFT)
        | ((inst.rd as u32) << RD_SHIFT)
        | ((inst.rs1 as u32) << RS1_SHIFT)
        | ((inst.rs2 as u32) << RS2_SHIFT)
}

fn enc_i(op: u32, inst: &Inst) -> u32 {
    (op << OP_SHIFT)
        | ((inst.rd as u32) << RD_SHIFT)
        | ((inst.rs1 as u32) << RS1_SHIFT)
        | (inst.imm as u32 & IMM16_MASK)
}

fn enc_s(op: u32, inst: &Inst) -> u32 {
    (op << OP_SHIFT)
        | ((inst.rs1 as u32) << RD_SHIFT)
        | ((inst.rs2 as u32) << RS1_SHIFT)
        | (inst.imm as u32 & IMM16_MASK)
}

fn enc_u(op: u32, rd: u8, imm: i64) -> u32 {
    (op << OP_SHIFT) | ((rd as u32) << RD_SHIFT) | (imm as u32 & IMM21_MASK)
}

fn imm16_signed(word: u32) -> i64 {
    (word & IMM16_MASK) as u16 as i16 as i64
}

fn imm16_unsigned(word: u32) -> i64 {
    (word & IMM16_MASK) as i64
}

fn imm21_signed(word: u32) -> i64 {
    let raw = word & IMM21_MASK;
    ((raw << 11) as i32 >> 11) as i64
}

fn imm21_unsigned(word: u32) -> i64 {
    (word & IMM21_MASK) as i64
}

/// A program of raw 32-bit instruction words.
///
/// Construction validates that every word decodes, so the per-step decode
/// on the hot path cannot fail for a constructed program (the error
/// branch stays for robustness against state corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiscProgram {
    words: Vec<u32>,
}

impl RiscProgram {
    /// Wraps raw instruction words into a program.
    ///
    /// # Errors
    ///
    /// [`IsaError::EmptyProgram`] when `words` is empty, or
    /// [`IsaError::InvalidEncoding`] naming the first word that does not
    /// decode.
    pub fn from_words(words: Vec<u32>) -> Result<Self, IsaError> {
        if words.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        for &word in &words {
            if RiscIsa::decode(word).is_none() {
                return Err(IsaError::InvalidEncoding(word));
            }
        }
        Ok(RiscProgram { words })
    }

    /// Encodes a built-in program instruction-for-instruction, or `None`
    /// when any instruction is outside the RISC set (FP operation,
    /// immediate too wide). Indices — and therefore branch targets and
    /// the committed stream — are preserved exactly.
    pub fn encode_program(program: &Program) -> Option<Self> {
        let words: Option<Vec<u32>> = program.insts().iter().map(RiscIsa::encode).collect();
        Some(RiscProgram { words: words? })
    }

    /// Number of static instructions.
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// Whether the program has no instructions (never true for a
    /// constructed program; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The raw word at index `pc`, or `None` past the end.
    pub fn get(&self, pc: u64) -> Option<u32> {
        self.words.get(pc as usize).copied()
    }

    /// All instruction words in program order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

/// The compact RISC-style frontend (see the module docs).
///
/// Reuses the shared [`Cpu`] architectural state — same register files,
/// same [`Cpu::STATE_WORDS`] snapshot layout — but fetches and decodes a
/// real 32-bit binary word on every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiscIsa;

impl RiscIsa {
    #[inline(always)]
    fn fetch_decode(cpu: &Cpu, program: &RiscProgram) -> Result<Inst, IsaError> {
        let pc = cpu.pc();
        let word = program.get(pc).ok_or(IsaError::PcOutOfRange {
            pc,
            len: program.len(),
        })?;
        Self::decode(word).ok_or(IsaError::InvalidEncoding(word))
    }
}

impl Isa for RiscIsa {
    type Word = u64;
    type Instr = u32;
    type Cpu = Cpu;
    type Program = RiscProgram;

    const NAME: &'static str = "risc";
    const ID: IsaId = IsaId::Risc;
    const INST_BYTES: u64 = 4;
    const STATE_WORDS: usize = Cpu::STATE_WORDS;

    #[inline]
    fn new_cpu() -> Cpu {
        Cpu::new()
    }

    #[inline]
    fn pc(cpu: &Cpu) -> u64 {
        cpu.pc()
    }

    #[inline]
    fn halted(cpu: &Cpu) -> bool {
        cpu.halted()
    }

    #[inline]
    fn retired(cpu: &Cpu) -> u64 {
        cpu.retired()
    }

    #[inline]
    fn program_len(program: &RiscProgram) -> u64 {
        program.len()
    }

    #[inline]
    fn save_state(cpu: &Cpu, out: &mut Vec<u64>) {
        cpu.save_state(out)
    }

    #[inline]
    fn load_state(cpu: &mut Cpu, words: &[u64]) -> Option<usize> {
        cpu.load_state(words)
    }

    #[inline]
    fn step(
        cpu: &mut Cpu,
        program: &RiscProgram,
        mem: &mut Memory,
    ) -> Result<ExecRecord, IsaError> {
        if cpu.halted() {
            return Err(IsaError::Halted);
        }
        let inst = Self::fetch_decode(cpu, program)?;
        Ok(cpu.exec_decoded(inst, mem))
    }

    #[inline]
    fn step_block(
        cpu: &mut Cpu,
        program: &RiscProgram,
        mem: &mut Memory,
        max_insts: u64,
        mut sink: impl FnMut(&ExecRecord),
    ) -> Result<u64, IsaError> {
        let mut executed = 0;
        while executed < max_insts && !cpu.halted() {
            let inst = Self::fetch_decode(cpu, program)?;
            let rec = cpu.exec_decoded(inst, mem);
            sink(&rec);
            executed += 1;
        }
        Ok(executed)
    }

    fn decode(raw: u32) -> Option<Inst> {
        let rd = ((raw >> RD_SHIFT) & REG_MASK) as u8;
        let rs1 = ((raw >> RS1_SHIFT) & REG_MASK) as u8;
        let rs2 = ((raw >> RS2_SHIFT) & REG_MASK) as u8;
        use Opcode::*;
        let inst = match raw >> OP_SHIFT {
            tag::ADD => Inst::new(Add, rd, rs1, rs2, 0),
            tag::SUB => Inst::new(Sub, rd, rs1, rs2, 0),
            tag::MUL => Inst::new(Mul, rd, rs1, rs2, 0),
            tag::DIV => Inst::new(Div, rd, rs1, rs2, 0),
            tag::REM => Inst::new(Rem, rd, rs1, rs2, 0),
            tag::AND => Inst::new(And, rd, rs1, rs2, 0),
            tag::OR => Inst::new(Or, rd, rs1, rs2, 0),
            tag::XOR => Inst::new(Xor, rd, rs1, rs2, 0),
            tag::SLL => Inst::new(Sll, rd, rs1, rs2, 0),
            tag::SRL => Inst::new(Srl, rd, rs1, rs2, 0),
            tag::SRA => Inst::new(Sra, rd, rs1, rs2, 0),
            tag::SLT => Inst::new(Slt, rd, rs1, rs2, 0),
            tag::SLTU => Inst::new(Sltu, rd, rs1, rs2, 0),
            tag::ADDI => Inst::new(Addi, rd, rs1, 0, imm16_signed(raw)),
            tag::ANDI => Inst::new(Andi, rd, rs1, 0, imm16_signed(raw)),
            tag::ORI => Inst::new(Ori, rd, rs1, 0, imm16_signed(raw)),
            tag::XORI => Inst::new(Xori, rd, rs1, 0, imm16_signed(raw)),
            tag::SLLI => Inst::new(Slli, rd, rs1, 0, imm16_signed(raw)),
            tag::SRLI => Inst::new(Srli, rd, rs1, 0, imm16_signed(raw)),
            tag::SRAI => Inst::new(Srai, rd, rs1, 0, imm16_signed(raw)),
            tag::SLTI => Inst::new(Slti, rd, rs1, 0, imm16_signed(raw)),
            tag::LI => Inst::new(Li, rd, 0, 0, imm21_signed(raw)),
            tag::LUI => Inst::new(Li, rd, 0, 0, imm21_signed(raw) << LUI_SHIFT),
            tag::LB => Inst::new(Lb, rd, rs1, 0, imm16_signed(raw)),
            tag::LBU => Inst::new(Lbu, rd, rs1, 0, imm16_signed(raw)),
            tag::LH => Inst::new(Lh, rd, rs1, 0, imm16_signed(raw)),
            tag::LHU => Inst::new(Lhu, rd, rs1, 0, imm16_signed(raw)),
            tag::LW => Inst::new(Lw, rd, rs1, 0, imm16_signed(raw)),
            tag::LWU => Inst::new(Lwu, rd, rs1, 0, imm16_signed(raw)),
            tag::LD => Inst::new(Ld, rd, rs1, 0, imm16_signed(raw)),
            // S-type: rs1 sits in the rd field, rs2 in the rs1 field.
            tag::SB => Inst::new(Sb, 0, rd, rs1, imm16_signed(raw)),
            tag::SH => Inst::new(Sh, 0, rd, rs1, imm16_signed(raw)),
            tag::SW => Inst::new(Sw, 0, rd, rs1, imm16_signed(raw)),
            tag::SD => Inst::new(Sd, 0, rd, rs1, imm16_signed(raw)),
            tag::BEQ => Inst::new(Beq, 0, rd, rs1, imm16_unsigned(raw)),
            tag::BNE => Inst::new(Bne, 0, rd, rs1, imm16_unsigned(raw)),
            tag::BLT => Inst::new(Blt, 0, rd, rs1, imm16_unsigned(raw)),
            tag::BGE => Inst::new(Bge, 0, rd, rs1, imm16_unsigned(raw)),
            tag::BLTU => Inst::new(Bltu, 0, rd, rs1, imm16_unsigned(raw)),
            tag::BGEU => Inst::new(Bgeu, 0, rd, rs1, imm16_unsigned(raw)),
            tag::JAL => Inst::new(Jal, rd, 0, 0, imm21_unsigned(raw)),
            tag::JALR => Inst::new(Jalr, rd, rs1, 0, imm16_signed(raw)),
            tag::NOP if raw == tag::NOP << OP_SHIFT => Inst::nop(),
            tag::HALT if raw == tag::HALT << OP_SHIFT => Inst::new(Halt, 0, 0, 0, 0),
            _ => return None,
        };
        Some(inst)
    }

    fn encode(inst: &Inst) -> Option<u32> {
        if !regs_ok(inst) {
            return None;
        }
        use Opcode::*;
        let r = |op| (inst.imm == 0).then(|| enc_r(op, inst));
        let i = |op| fits_i16(inst.imm).then(|| enc_i(op, inst));
        let s = |op| (fits_i16(inst.imm) && inst.rd == 0).then(|| enc_s(op, inst));
        let b = |op| (fits_u16(inst.imm) && inst.rd == 0).then(|| enc_s(op, inst));
        match inst.op {
            Add => r(tag::ADD),
            Sub => r(tag::SUB),
            Mul => r(tag::MUL),
            Div => r(tag::DIV),
            Rem => r(tag::REM),
            And => r(tag::AND),
            Or => r(tag::OR),
            Xor => r(tag::XOR),
            Sll => r(tag::SLL),
            Srl => r(tag::SRL),
            Sra => r(tag::SRA),
            Slt => r(tag::SLT),
            Sltu => r(tag::SLTU),
            Addi => i(tag::ADDI),
            Andi => i(tag::ANDI),
            Ori => i(tag::ORI),
            Xori => i(tag::XORI),
            Slli => i(tag::SLLI),
            Srli => i(tag::SRLI),
            Srai => i(tag::SRAI),
            Slti => i(tag::SLTI),
            Li if inst.rs1 == 0 && inst.rs2 == 0 => {
                if fits_i21(inst.imm) {
                    Some(enc_u(tag::LI, inst.rd, inst.imm))
                } else if inst.imm & ((1 << LUI_SHIFT) - 1) == 0 && fits_i21(inst.imm >> LUI_SHIFT)
                {
                    Some(enc_u(tag::LUI, inst.rd, inst.imm >> LUI_SHIFT))
                } else {
                    None
                }
            }
            Lb => i(tag::LB),
            Lbu => i(tag::LBU),
            Lh => i(tag::LH),
            Lhu => i(tag::LHU),
            Lw => i(tag::LW),
            Lwu => i(tag::LWU),
            Ld => i(tag::LD),
            Sb => s(tag::SB),
            Sh => s(tag::SH),
            Sw => s(tag::SW),
            Sd => s(tag::SD),
            Beq => b(tag::BEQ),
            Bne => b(tag::BNE),
            Blt => b(tag::BLT),
            Bge => b(tag::BGE),
            Bltu => b(tag::BLTU),
            Bgeu => b(tag::BGEU),
            Jal if inst.rs1 == 0 && inst.rs2 == 0 && fits_u21(inst.imm) => {
                Some(enc_u(tag::JAL, inst.rd, inst.imm))
            }
            Jalr if inst.rs2 == 0 && fits_i16(inst.imm) => Some(enc_i(tag::JALR, inst)),
            Nop if *inst == Inst::nop() => Some(tag::NOP << OP_SHIFT),
            Halt if (inst.rd, inst.rs1, inst.rs2, inst.imm) == (0, 0, 0, 0) => {
                Some(tag::HALT << OP_SHIFT)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Asm};

    fn encodable_samples() -> Vec<Inst> {
        use Opcode::*;
        vec![
            Inst::new(Add, 1, 2, 3, 0),
            Inst::new(Sub, 31, 30, 29, 0),
            Inst::new(Mul, 5, 5, 5, 0),
            Inst::new(Addi, 4, 4, 0, -1), // negative immediate
            Inst::new(Addi, 4, 4, 0, 32767),
            Inst::new(Andi, 7, 8, 0, 255),
            Inst::new(Slli, 9, 10, 0, 63),
            Inst::new(Li, 11, 0, 0, -1_000_000),
            Inst::new(Li, 12, 0, 0, 1_048_575),
            Inst::new(Li, 13, 0, 0, 0x1000_0000), // DATA_BASE via Lui
            Inst::new(Ld, 14, 15, 0, -8),
            Inst::new(Lbu, 16, 17, 0, 4095),
            Inst::new(Sd, 0, 18, 19, 16),
            Inst::new(Sb, 0, 20, 21, -32768),
            Inst::new(Beq, 0, 1, 2, 0),
            Inst::new(Bgeu, 0, 3, 4, 65535),
            Inst::new(Jal, reg::RA, 0, 0, 12345),
            Inst::new(Jal, reg::ZERO, 0, 0, 0),
            Inst::new(Jalr, reg::ZERO, reg::RA, 0, 0),
            Inst::nop(),
            Inst::new(Halt, 0, 0, 0, 0),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for inst in encodable_samples() {
            let word =
                RiscIsa::encode(&inst).unwrap_or_else(|| panic!("sample must encode: {inst:?}"));
            let back = RiscIsa::decode(word)
                .unwrap_or_else(|| panic!("encoded word must decode: {inst:?}"));
            assert_eq!(back, inst, "round trip for {inst:?} (word {word:#010x})");
        }
    }

    #[test]
    fn unencodable_instructions_are_rejected() {
        use Opcode::*;
        let cases = [
            Inst::new(FAdd, 1, 2, 3, 0),         // FP is outside the set
            Inst::new(FLd, 1, 2, 0, 0),          // FP load
            Inst::new(Addi, 1, 2, 0, 40000),     // imm16 overflow
            Inst::new(Li, 1, 0, 0, 0x1000_0008), // unaligned, too wide for li
            Inst::new(Li, 1, 0, 0, 1 << 40),     // too wide even shifted
            Inst::new(Beq, 0, 1, 2, -1),         // negative branch target
            Inst::new(Beq, 0, 1, 2, 70000),      // target past imm16
            Inst::new(Add, 1, 2, 3, 5),          // R-type with an immediate
        ];
        for inst in cases {
            assert_eq!(RiscIsa::encode(&inst), None, "{inst:?} must not encode");
        }
    }

    #[test]
    fn invalid_words_do_not_decode() {
        assert_eq!(RiscIsa::decode(0), None, "reserved tag 0");
        assert_eq!(RiscIsa::decode(63 << OP_SHIFT), None, "unassigned tag");
        // NOP/HALT with stray operand bits are not canonical.
        assert_eq!(RiscIsa::decode((tag::NOP << OP_SHIFT) | 1), None);
        assert_eq!(
            RiscIsa::decode((tag::HALT << OP_SHIFT) | (3 << RD_SHIFT)),
            None
        );
    }

    #[test]
    fn program_construction_validates() {
        assert_eq!(RiscProgram::from_words(vec![]), Err(IsaError::EmptyProgram));
        let halt = RiscIsa::encode(&Inst::new(Opcode::Halt, 0, 0, 0, 0)).unwrap();
        assert_eq!(
            RiscProgram::from_words(vec![halt, 0]),
            Err(IsaError::InvalidEncoding(0))
        );
        let p = RiscProgram::from_words(vec![halt]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(0), Some(halt));
        assert_eq!(p.get(1), None);
    }

    /// The load-bearing property: an encodable built-in program executes
    /// the identical committed stream on the RISC frontend.
    #[test]
    fn risc_execution_matches_builtin_stream() {
        let mut a = Asm::new();
        a.li(reg::S1, 0x1000_0000);
        a.li(reg::T0, 8);
        let l = a.label();
        a.bind(l).unwrap();
        a.sd(reg::T0, reg::S1, 0);
        a.ld(reg::T1, reg::S1, 0);
        a.addi(reg::S1, reg::S1, 8);
        a.addi(reg::T0, reg::T0, -1);
        a.bnez(reg::T0, l);
        a.halt();
        let program = a.finish().unwrap();
        let risc = RiscProgram::encode_program(&program).expect("int kernel encodes");

        let mut b_cpu = Cpu::new();
        let mut b_mem = Memory::new();
        let mut r_cpu = RiscIsa::new_cpu();
        let mut r_mem = Memory::new();
        loop {
            if b_cpu.halted() {
                break;
            }
            let want = b_cpu.step(&program, &mut b_mem).unwrap();
            let got = RiscIsa::step(&mut r_cpu, &risc, &mut r_mem).unwrap();
            assert_eq!(want, got);
        }
        assert!(RiscIsa::halted(&r_cpu));
        assert_eq!(RiscIsa::retired(&r_cpu), b_cpu.retired());
        assert!(matches!(
            RiscIsa::step(&mut r_cpu, &risc, &mut r_mem),
            Err(IsaError::Halted)
        ));

        // State snapshots share the Cpu layout and round-trip bit-exactly.
        let mut words = Vec::new();
        RiscIsa::save_state(&r_cpu, &mut words);
        assert_eq!(words.len(), RiscIsa::STATE_WORDS);
        let mut restored = RiscIsa::new_cpu();
        assert_eq!(
            RiscIsa::load_state(&mut restored, &words),
            Some(RiscIsa::STATE_WORDS)
        );
        assert_eq!(restored, r_cpu);
    }

    #[test]
    fn step_block_matches_single_steps() {
        let mut a = Asm::new();
        a.li(reg::T0, 100);
        let l = a.label();
        a.bind(l).unwrap();
        a.addi(reg::T0, reg::T0, -1);
        a.bnez(reg::T0, l);
        a.halt();
        let risc = RiscProgram::encode_program(&a.finish().unwrap()).unwrap();

        let mut single = RiscIsa::new_cpu();
        let mut single_mem = Memory::new();
        let mut singles = Vec::new();
        while !single.halted() {
            singles.push(RiscIsa::step(&mut single, &risc, &mut single_mem).unwrap());
        }

        let mut blocked = RiscIsa::new_cpu();
        let mut blocked_mem = Memory::new();
        let mut blocks = Vec::new();
        while !blocked.halted() {
            RiscIsa::step_block(&mut blocked, &risc, &mut blocked_mem, 7, |r| {
                blocks.push(*r)
            })
            .unwrap();
        }
        assert_eq!(singles, blocks);
        assert_eq!(single, blocked);
    }
}

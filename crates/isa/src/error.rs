use std::error::Error;
use std::fmt;

/// Error type for functional execution and program assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// The program counter left the program's text section.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u64,
        /// Number of instructions in the program.
        len: u64,
    },
    /// Stepping a CPU that has already executed a `halt`.
    Halted,
    /// A register operand outside 0..=31.
    InvalidRegister(u8),
    /// A binary instruction word that does not decode to any instruction
    /// of the frontend's set.
    InvalidEncoding(u32),
    /// A label was referenced but never bound to a position.
    UnboundLabel(usize),
    /// A label was bound more than once.
    RedefinedLabel(usize),
    /// The assembled program is empty.
    EmptyProgram,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::PcOutOfRange { pc, len } => {
                write!(
                    f,
                    "program counter {pc} outside program of {len} instructions"
                )
            }
            IsaError::Halted => write!(f, "cpu has halted"),
            IsaError::InvalidRegister(r) => write!(f, "register index {r} outside 0..=31"),
            IsaError::InvalidEncoding(word) => {
                write!(f, "instruction word {word:#010x} does not decode")
            }
            IsaError::UnboundLabel(id) => write!(f, "label {id} referenced but never bound"),
            IsaError::RedefinedLabel(id) => write!(f, "label {id} bound more than once"),
            IsaError::EmptyProgram => write!(f, "assembled program contains no instructions"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            IsaError::PcOutOfRange { pc: 10, len: 5 },
            IsaError::Halted,
            IsaError::InvalidRegister(40),
            IsaError::UnboundLabel(3),
            IsaError::RedefinedLabel(3),
            IsaError::EmptyProgram,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

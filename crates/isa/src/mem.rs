use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const OFFSET_MASK: u64 = (PAGE_SIZE - 1) as u64;

/// Fibonacci-multiplicative hasher for page indices.
///
/// Page indices are small, trusted integers produced by the simulator
/// itself (never attacker-controlled), so SipHash's DoS resistance buys
/// nothing here while its latency sits on the load/store fast path of
/// functional simulation. One multiply by the 64-bit golden-ratio
/// constant spreads low-entropy indices across the high bits, which is
/// exactly what `HashMap`'s bucket selection consumes. Behaviour is
/// hash-order-independent by construction: the page map is only ever
/// probed by key, never iterated.
#[derive(Default)]
pub struct PageIndexHasher(u64);

impl Hasher for PageIndexHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not used by u64 keys): fold bytes in.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap = HashMap<u64, Arc<[u8; PAGE_SIZE]>, BuildHasherDefault<PageIndexHasher>>;

/// Sparse, paged, byte-addressed memory.
///
/// Pages of 4 KiB are allocated on first touch; unwritten bytes read as
/// zero. Accesses may straddle page boundaries and are not required to be
/// aligned.
///
/// Pages are reference-counted, so cloning a `Memory` is O(pages) pointer
/// bumps and clones share storage copy-on-write — the property that makes
/// checkpoint libraries (à la TurboSMARTS) affordable.
///
/// # Examples
///
/// ```
/// use smarts_isa::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(mem.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(mem.read_u8(0x1000), 0x0D); // little-endian
/// assert_eq!(mem.read_u64(0x9_0000), 0); // untouched memory reads zero
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    pages: PageMap,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            pages: PageMap::default(),
        }
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of backing store currently allocated.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Bytes of backing store not already counted in `seen`, which
    /// accumulates page identities (`Arc` pointers) across calls.
    ///
    /// Clones share pages copy-on-write, so summing
    /// [`Memory::resident_bytes`] over a set of snapshots overstates
    /// their true footprint; folding each snapshot through one `seen`
    /// set counts every physical page exactly once.
    pub fn resident_bytes_dedup(&self, seen: &mut HashSet<usize>) -> usize {
        let mut fresh = 0;
        for page in self.pages.values() {
            if seen.insert(Arc::as_ptr(page) as usize) {
                fresh += PAGE_SIZE;
            }
        }
        fresh
    }

    /// Page size in bytes: the granularity of allocation, copy-on-write
    /// sharing, and checkpoint-store serialization.
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// Allocated pages as `(page_index, contents)`, sorted ascending by
    /// index. Sorting makes the view deterministic (the backing map is
    /// hash-ordered), which checkpoint serialization requires.
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8])> {
        let mut pages: Vec<(u64, &[u8])> = self.pages.iter().map(|(&i, p)| (i, &p[..])).collect();
        pages.sort_unstable_by_key(|&(index, _)| index);
        pages
    }

    /// Installs a whole page at `page_index`, replacing any existing
    /// page — the checkpoint-store decode path. The page is inserted even
    /// when all-zero: pages allocate on first write, so an all-zero page
    /// is real state and the exact page set must round-trip.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`Memory::PAGE_BYTES`] long.
    pub fn insert_page(&mut self, page_index: u64, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            PAGE_SIZE,
            "a page is exactly {PAGE_SIZE} bytes"
        );
        let mut page = [0u8; PAGE_SIZE];
        page.copy_from_slice(bytes);
        self.pages.insert(page_index, Arc::new(page));
    }

    fn page(&mut self, page_index: u64) -> &mut [u8; PAGE_SIZE] {
        let arc = self
            .pages
            .entry(page_index)
            .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
        Arc::make_mut(arc)
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page(addr >> PAGE_BITS)[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        let offset = (addr & OFFSET_MASK) as usize;
        if offset + N <= PAGE_SIZE {
            if let Some(page) = self.pages.get(&(addr >> PAGE_BITS)) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
        } else {
            for (i, byte) in out.iter_mut().enumerate() {
                *byte = self.read_u8(addr + i as u64);
            }
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let offset = (addr & OFFSET_MASK) as usize;
        if offset + bytes.len() <= PAGE_SIZE {
            let page = self.page(addr >> PAGE_BITS);
            page[offset..offset + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &byte) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, byte);
            }
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f64` stored with [`Memory::write_f64`].
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u64(0xFFFF_FFFF_FFFF_0000), 0);
        assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn round_trip_all_widths() {
        let mut mem = Memory::new();
        mem.write_u8(10, 0xAB);
        mem.write_u16(20, 0xBEEF);
        mem.write_u32(30, 0xDEAD_BEEF);
        mem.write_u64(40, 0x0123_4567_89AB_CDEF);
        mem.write_f64(50, -1234.5678);
        assert_eq!(mem.read_u8(10), 0xAB);
        assert_eq!(mem.read_u16(20), 0xBEEF);
        assert_eq!(mem.read_u32(30), 0xDEAD_BEEF);
        assert_eq!(mem.read_u64(40), 0x0123_4567_89AB_CDEF);
        assert_eq!(mem.read_f64(50), -1234.5678);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write_u32(0, 0x0403_0201);
        assert_eq!(mem.read_u8(0), 1);
        assert_eq!(mem.read_u8(1), 2);
        assert_eq!(mem.read_u8(2), 3);
        assert_eq!(mem.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE as u64 - 3; // straddles the first page boundary
        mem.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(mem.page_count(), 2);
    }

    #[test]
    fn cross_page_read_of_untouched_tail() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE as u64 - 1;
        mem.write_u8(addr, 0xFF);
        // The next page is untouched, so upper bytes read zero.
        assert_eq!(mem.read_u64(addr), 0xFF);
    }

    #[test]
    fn pages_allocated_on_write_only() {
        let mut mem = Memory::new();
        let _ = mem.read_u64(0x10_0000);
        assert_eq!(mem.page_count(), 0);
        mem.write_u8(0x10_0000, 1);
        assert_eq!(mem.page_count(), 1);
        assert_eq!(mem.resident_bytes(), PAGE_SIZE);
    }

    #[test]
    fn clones_are_copy_on_write() {
        let mut a = Memory::new();
        a.write_u64(0x100, 7);
        let snapshot = a.clone();
        a.write_u64(0x100, 9);
        a.write_u64(0x10_0000, 3); // new page after the snapshot
        assert_eq!(snapshot.read_u64(0x100), 7, "snapshot is isolated");
        assert_eq!(snapshot.read_u64(0x10_0000), 0);
        assert_eq!(a.read_u64(0x100), 9);
        assert_eq!(a.read_u64(0x10_0000), 3);
    }

    #[test]
    fn dedup_counts_shared_pages_once() {
        let mut a = Memory::new();
        a.write_u64(0x100, 7);
        a.write_u64(0x10_0000, 3);
        let b = a.clone(); // shares both pages
        let mut c = a.clone();
        c.write_u64(0x100, 9); // diverges on one page

        let mut seen = HashSet::new();
        let first = a.resident_bytes_dedup(&mut seen);
        assert_eq!(first, 2 * PAGE_SIZE);
        // b shares everything with a: nothing new.
        assert_eq!(b.resident_bytes_dedup(&mut seen), 0);
        // c rewrote one page copy-on-write: exactly one new page.
        assert_eq!(c.resident_bytes_dedup(&mut seen), PAGE_SIZE);
    }

    #[test]
    fn overwrite_is_last_write_wins() {
        let mut mem = Memory::new();
        mem.write_u64(0, u64::MAX);
        mem.write_u16(2, 0);
        assert_eq!(mem.read_u64(0), 0xFFFF_FFFF_0000_FFFF);
    }
}

//! A 64-bit RISC instruction-set substrate for the SMARTS reproduction.
//!
//! The original SMARTS evaluation ran SPEC CPU2000 Alpha binaries on
//! SimpleScalar. Neither the binaries nor the toolchain are available
//! here, so this crate provides the substitute substrate: a small,
//! fully-implemented 64-bit RISC ISA with
//!
//! * decoded [`Inst`] structures (no binary encoding — programs are
//!   constructed with the [`Asm`] assembler),
//! * a sparse paged [`Memory`],
//! * a fast functional interpreter ([`Cpu`]) whose [`ExecRecord`] stream
//!   drives both microarchitectural warming and the trace-driven
//!   out-of-order timing model, and
//! * instruction classification ([`OpClass`]) used for functional-unit
//!   selection and energy accounting.
//!
//! # Examples
//!
//! Assemble and run a loop that sums the integers 1..=10:
//!
//! ```
//! use smarts_isa::{Asm, Cpu, Memory, reg};
//!
//! # fn main() -> Result<(), smarts_isa::IsaError> {
//! let mut a = Asm::new();
//! a.li(reg::T0, 0); // sum
//! a.li(reg::T1, 1); // i
//! a.li(reg::T2, 10);
//! let top = a.label();
//! a.bind(top)?;
//! a.add(reg::T0, reg::T0, reg::T1);
//! a.addi(reg::T1, reg::T1, 1);
//! a.ble(reg::T1, reg::T2, top);
//! a.halt();
//! let program = a.finish()?;
//!
//! let mut cpu = Cpu::new();
//! let mut mem = Memory::new();
//! while !cpu.halted() {
//!     cpu.step(&program, &mut mem)?;
//! }
//! assert_eq!(cpu.reg(reg::T0), 55);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cpu;
mod error;
mod inst;
mod isa;
mod mem;
mod program;
mod risc;
mod trace;

pub use asm::{Asm, Label};
pub use cpu::{Cpu, ExecRecord, MemAccess};
pub use error::IsaError;
pub use inst::{reg, ArchReg, Inst, OpClass, Opcode};
pub use isa::{BuiltinIsa, Isa, IsaId, MemTouches};
pub use mem::Memory;
pub use program::{Program, TEXT_BASE};
pub use risc::{RiscIsa, RiscProgram};
pub use trace::{
    encode_trace, write_trace, TraceCpu, TraceError, TraceIsa, TraceProgram, TRACE_MAGIC,
    TRACE_VERSION,
};

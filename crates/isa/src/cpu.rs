use crate::{Inst, IsaError, Memory, OpClass, Opcode, Program};

/// A data-memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// Everything the rest of the simulator needs to know about one committed
/// instruction: the correct-path execution trace element.
///
/// The functional warming logic uses `mem`/`taken` to update caches, TLBs,
/// and branch predictors; the trace-driven out-of-order timing model
/// replays records through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecRecord {
    /// Instruction index at which the instruction was fetched.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// The data access, if the instruction touched memory.
    pub mem: Option<MemAccess>,
    /// For control instructions, whether control transferred; `false`
    /// otherwise.
    pub taken: bool,
    /// Instruction index of the next instruction on the correct path.
    pub next_pc: u64,
}

impl ExecRecord {
    /// Byte address of this instruction as seen by the instruction cache.
    pub fn fetch_addr(&self) -> u64 {
        Program::fetch_addr(self.pc)
    }

    /// Byte address of the next-instruction fetch.
    pub fn next_fetch_addr(&self) -> u64 {
        Program::fetch_addr(self.next_pc)
    }

    /// Instruction class (delegates to the instruction).
    pub fn class(&self) -> OpClass {
        self.inst.class()
    }
}

/// The functional processor: architectural state plus an interpreter.
///
/// This is the fast-forwarding engine of SMARTS — it maintains only
/// programmer-visible state (registers, memory via the `step` argument,
/// and the program counter), simulating no microarchitecture at all.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq)]
pub struct Cpu {
    regs: [u64; 32],
    fregs: [f64; 32],
    pc: u64,
    halted: bool,
    retired: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers, starting at instruction 0.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            fregs: [0.0; 32],
            pc: 0,
            halted: false,
            retired: 0,
        }
    }

    /// Current program counter (an instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether a `halt` instruction has been executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far (including the `halt`).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads integer register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn reg(&self, index: u8) -> u64 {
        self.regs[index as usize]
    }

    /// Writes integer register `index`; writes to register 0 are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn set_reg(&mut self, index: u8, value: u64) {
        if index != 0 {
            self.regs[index as usize] = value;
        }
    }

    /// Reads floating-point register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn freg(&self, index: u8) -> f64 {
        self.fregs[index as usize]
    }

    /// Writes floating-point register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn set_freg(&mut self, index: u8, value: f64) {
        self.fregs[index as usize] = value;
    }

    /// Number of words [`Cpu::save_state`] appends: 32 integer registers,
    /// 32 FP register bit patterns, pc, halt flag, retired count.
    pub const STATE_WORDS: usize = 32 + 32 + 3;

    /// Appends the architectural state as fixed-width words (FP registers
    /// as IEEE-754 bit patterns, so the round trip is bit-exact even for
    /// NaNs) for the checkpoint store.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.regs);
        out.extend(self.fregs.iter().map(|f| f.to_bits()));
        out.push(self.pc);
        out.push(self.halted as u64);
        out.push(self.retired);
    }

    /// Restores state written by [`Cpu::save_state`], returning the number
    /// of words consumed, or `None` if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let words = words.get(..Self::STATE_WORDS)?;
        for (reg, &word) in self.regs.iter_mut().zip(&words[..32]) {
            *reg = word;
        }
        for (freg, &word) in self.fregs.iter_mut().zip(&words[32..64]) {
            *freg = f64::from_bits(word);
        }
        self.pc = words[64];
        self.halted = words[65] != 0;
        self.retired = words[66];
        Some(Self::STATE_WORDS)
    }

    /// Executes one instruction, updating architectural state.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Halted`] if the CPU already halted, or
    /// [`IsaError::PcOutOfRange`] if the program counter fell off the end
    /// of the text section.
    #[inline]
    pub fn step(&mut self, program: &Program, mem: &mut Memory) -> Result<ExecRecord, IsaError> {
        if self.halted {
            return Err(IsaError::Halted);
        }
        self.exec_one(program, mem)
    }

    /// Executes one instruction assuming the caller has already checked
    /// [`Cpu::halted`]. This is the interpreter body shared by [`Cpu::step`]
    /// and the batched [`Cpu::step_block`] loop; `inline(always)` so the
    /// opcode dispatch fuses into the caller's loop.
    #[inline(always)]
    fn exec_one(&mut self, program: &Program, mem: &mut Memory) -> Result<ExecRecord, IsaError> {
        let pc = self.pc;
        let inst = *program.get(pc).ok_or(IsaError::PcOutOfRange {
            pc,
            len: program.len(),
        })?;
        Ok(self.exec_decoded(inst, mem))
    }

    /// Executes one already-fetched, already-decoded instruction,
    /// assuming the caller has checked [`Cpu::halted`].
    ///
    /// This is the fetchless interpreter body: frontends with their own
    /// program representation (binary encodings decoded per step) fetch
    /// and decode themselves, then commit through here so every frontend
    /// shares one set of operation semantics. The built-in [`Cpu::step`]
    /// path goes through this same body, so factoring it out cannot
    /// change built-in behaviour.
    #[inline(always)]
    pub fn exec_decoded(&mut self, inst: Inst, mem: &mut Memory) -> ExecRecord {
        let pc = self.pc;
        let mut next_pc = pc + 1;
        let mut taken = false;
        let mut mem_access = None;

        let rs1 = self.regs[inst.rs1 as usize];
        let rs2 = self.regs[inst.rs2 as usize];
        let frs1 = self.fregs[inst.rs1 as usize];
        let frs2 = self.fregs[inst.rs2 as usize];

        use Opcode::*;
        match inst.op {
            Add => self.set_reg(inst.rd, rs1.wrapping_add(rs2)),
            Sub => self.set_reg(inst.rd, rs1.wrapping_sub(rs2)),
            Mul => self.set_reg(inst.rd, rs1.wrapping_mul(rs2)),
            Div => self.set_reg(inst.rd, rs1.checked_div(rs2).unwrap_or(u64::MAX)),
            Rem => self.set_reg(inst.rd, if rs2 == 0 { rs1 } else { rs1 % rs2 }),
            And => self.set_reg(inst.rd, rs1 & rs2),
            Or => self.set_reg(inst.rd, rs1 | rs2),
            Xor => self.set_reg(inst.rd, rs1 ^ rs2),
            Sll => self.set_reg(inst.rd, rs1 << (rs2 & 63)),
            Srl => self.set_reg(inst.rd, rs1 >> (rs2 & 63)),
            Sra => self.set_reg(inst.rd, ((rs1 as i64) >> (rs2 & 63)) as u64),
            Slt => self.set_reg(inst.rd, ((rs1 as i64) < (rs2 as i64)) as u64),
            Sltu => self.set_reg(inst.rd, (rs1 < rs2) as u64),
            Addi => self.set_reg(inst.rd, rs1.wrapping_add(inst.imm as u64)),
            Andi => self.set_reg(inst.rd, rs1 & inst.imm as u64),
            Ori => self.set_reg(inst.rd, rs1 | inst.imm as u64),
            Xori => self.set_reg(inst.rd, rs1 ^ inst.imm as u64),
            Slli => self.set_reg(inst.rd, rs1 << (inst.imm as u64 & 63)),
            Srli => self.set_reg(inst.rd, rs1 >> (inst.imm as u64 & 63)),
            Srai => self.set_reg(inst.rd, ((rs1 as i64) >> (inst.imm as u64 & 63)) as u64),
            Slti => self.set_reg(inst.rd, ((rs1 as i64) < inst.imm) as u64),
            Li => self.set_reg(inst.rd, inst.imm as u64),

            FAdd => self.fregs[inst.rd as usize] = frs1 + frs2,
            FSub => self.fregs[inst.rd as usize] = frs1 - frs2,
            FMul => self.fregs[inst.rd as usize] = frs1 * frs2,
            FDiv => self.fregs[inst.rd as usize] = frs1 / frs2,
            FSqrt => self.fregs[inst.rd as usize] = frs1.sqrt(),
            FMin => self.fregs[inst.rd as usize] = frs1.min(frs2),
            FMax => self.fregs[inst.rd as usize] = frs1.max(frs2),
            FAbs => self.fregs[inst.rd as usize] = frs1.abs(),
            FNeg => self.fregs[inst.rd as usize] = -frs1,
            FCvtIf => self.fregs[inst.rd as usize] = rs1 as i64 as f64,
            FCvtFi => self.set_reg(inst.rd, frs1 as i64 as u64),
            FMvIf => self.fregs[inst.rd as usize] = f64::from_bits(rs1),
            FMvFi => self.set_reg(inst.rd, frs1.to_bits()),
            FLi => self.fregs[inst.rd as usize] = f64::from_bits(inst.imm as u64),
            FLt => self.set_reg(inst.rd, (frs1 < frs2) as u64),
            FLe => self.set_reg(inst.rd, (frs1 <= frs2) as u64),
            FEq => self.set_reg(inst.rd, (frs1 == frs2) as u64),

            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | FLd => {
                let addr = rs1.wrapping_add(inst.imm as u64);
                let size = match inst.op {
                    Lb | Lbu => 1,
                    Lh | Lhu => 2,
                    Lw | Lwu => 4,
                    _ => 8,
                };
                mem_access = Some(MemAccess {
                    addr,
                    size,
                    is_store: false,
                });
                match inst.op {
                    Lb => self.set_reg(inst.rd, mem.read_u8(addr) as i8 as i64 as u64),
                    Lbu => self.set_reg(inst.rd, mem.read_u8(addr) as u64),
                    Lh => self.set_reg(inst.rd, mem.read_u16(addr) as i16 as i64 as u64),
                    Lhu => self.set_reg(inst.rd, mem.read_u16(addr) as u64),
                    Lw => self.set_reg(inst.rd, mem.read_u32(addr) as i32 as i64 as u64),
                    Lwu => self.set_reg(inst.rd, mem.read_u32(addr) as u64),
                    Ld => self.set_reg(inst.rd, mem.read_u64(addr)),
                    FLd => self.fregs[inst.rd as usize] = mem.read_f64(addr),
                    _ => unreachable!(),
                }
            }
            Sb | Sh | Sw | Sd | FSd => {
                let addr = rs1.wrapping_add(inst.imm as u64);
                let size = match inst.op {
                    Sb => 1,
                    Sh => 2,
                    Sw => 4,
                    _ => 8,
                };
                mem_access = Some(MemAccess {
                    addr,
                    size,
                    is_store: true,
                });
                match inst.op {
                    Sb => mem.write_u8(addr, rs2 as u8),
                    Sh => mem.write_u16(addr, rs2 as u16),
                    Sw => mem.write_u32(addr, rs2 as u32),
                    Sd => mem.write_u64(addr, rs2),
                    FSd => mem.write_f64(addr, frs2),
                    _ => unreachable!(),
                }
            }

            Beq => taken = rs1 == rs2,
            Bne => taken = rs1 != rs2,
            Blt => taken = (rs1 as i64) < (rs2 as i64),
            Bge => taken = (rs1 as i64) >= (rs2 as i64),
            Bltu => taken = rs1 < rs2,
            Bgeu => taken = rs1 >= rs2,
            Jal => {
                self.set_reg(inst.rd, pc + 1);
                taken = true;
                next_pc = inst.imm as u64;
            }
            Jalr => {
                let target = rs1.wrapping_add(inst.imm as u64);
                self.set_reg(inst.rd, pc + 1);
                taken = true;
                next_pc = target;
            }
            Nop => {}
            Halt => {
                self.halted = true;
            }
        }

        if matches!(inst.op, Beq | Bne | Blt | Bge | Bltu | Bgeu) && taken {
            next_pc = inst.imm as u64;
        }
        if self.halted {
            next_pc = pc;
        }

        self.pc = next_pc;
        self.retired += 1;
        ExecRecord {
            pc,
            inst,
            mem: mem_access,
            taken,
            next_pc,
        }
    }

    /// Runs at most `max_insts` instructions, feeding each committed
    /// [`ExecRecord`] to `sink`, stopping early on `halt`.
    ///
    /// This is the batched fast-forward hot loop: the halted flag is the
    /// loop condition (not re-checked inside the interpreter), records are
    /// passed to the sink by reference, and the interpreter body inlines
    /// into the loop. Functional warming runs as
    /// `cpu.step_block(.., |rec| warm.warm_record(rec))`.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (e.g. [`IsaError::PcOutOfRange`]);
    /// starting from a halted CPU returns `Ok(0)`.
    #[inline]
    pub fn step_block(
        &mut self,
        program: &Program,
        mem: &mut Memory,
        max_insts: u64,
        mut sink: impl FnMut(&ExecRecord),
    ) -> Result<u64, IsaError> {
        let mut executed = 0;
        while executed < max_insts && !self.halted {
            let rec = self.exec_one(program, mem)?;
            sink(&rec);
            executed += 1;
        }
        Ok(executed)
    }

    /// Runs at most `max_insts` instructions, stopping early on `halt`.
    ///
    /// Returns the number of instructions executed. This is the hot
    /// fast-forward path when no warming is requested.
    ///
    /// # Errors
    ///
    /// Propagates [`Cpu::step`] errors other than reaching the
    /// instruction budget.
    pub fn run(
        &mut self,
        program: &Program,
        mem: &mut Memory,
        max_insts: u64,
    ) -> Result<u64, IsaError> {
        self.step_block(program, mem, max_insts, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Asm};

    fn run_to_halt(a: Asm) -> (Cpu, Memory) {
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        for _ in 0..1_000_000 {
            if cpu.halted() {
                break;
            }
            cpu.step(&program, &mut mem).unwrap();
        }
        assert!(cpu.halted(), "program did not halt");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let mut a = Asm::new();
        a.li(reg::T0, 7);
        a.li(reg::T1, 5);
        a.add(reg::T2, reg::T0, reg::T1);
        a.sub(reg::T3, reg::T0, reg::T1);
        a.mul(reg::T4, reg::T0, reg::T1);
        a.addi(reg::T5, reg::T0, -10);
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T2), 12);
        assert_eq!(cpu.reg(reg::T3), 2);
        assert_eq!(cpu.reg(reg::T4), 35);
        assert_eq!(cpu.reg(reg::T5) as i64, -3);
    }

    #[test]
    fn division_semantics() {
        let mut a = Asm::new();
        a.li(reg::T0, 17);
        a.li(reg::T1, 5);
        a.div(reg::T2, reg::T0, reg::T1);
        a.rem(reg::T3, reg::T0, reg::T1);
        a.div(reg::T4, reg::T0, reg::ZERO); // ÷0 → all ones
        a.rem(reg::T5, reg::T0, reg::ZERO); // mod 0 → dividend
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T2), 3);
        assert_eq!(cpu.reg(reg::T3), 2);
        assert_eq!(cpu.reg(reg::T4), u64::MAX);
        assert_eq!(cpu.reg(reg::T5), 17);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut a = Asm::new();
        a.li(reg::ZERO, 99);
        a.addi(reg::ZERO, reg::ZERO, 1);
        a.mv(reg::T0, reg::ZERO);
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::ZERO), 0);
        assert_eq!(cpu.reg(reg::T0), 0);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let mut a = Asm::new();
        a.li(reg::T0, -1);
        a.li(reg::T1, 1);
        a.slt(reg::T2, reg::T0, reg::T1); // -1 < 1 signed
        a.sltu(reg::T3, reg::T0, reg::T1); // u64::MAX < 1 unsigned: no
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T2), 1);
        assert_eq!(cpu.reg(reg::T3), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        let mut a = Asm::new();
        a.li(reg::T0, 1);
        a.slli(reg::T1, reg::T0, 65); // = shift by 1
        a.li(reg::T2, -8);
        a.srai(reg::T3, reg::T2, 1);
        a.srli(reg::T4, reg::T2, 60);
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T1), 2);
        assert_eq!(cpu.reg(reg::T3) as i64, -4);
        assert_eq!(cpu.reg(reg::T4), 0xF);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let mut a = Asm::new();
        a.li(reg::S0, 0x2000);
        a.li(reg::T0, 0xFF);
        a.sb(reg::T0, reg::S0, 0);
        a.lb(reg::T1, reg::S0, 0);
        a.lbu(reg::T2, reg::S0, 0);
        a.li(reg::T0, 0x8000);
        a.sh(reg::T0, reg::S0, 8);
        a.lh(reg::T3, reg::S0, 8);
        a.lhu(reg::T4, reg::S0, 8);
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T1) as i64, -1);
        assert_eq!(cpu.reg(reg::T2), 0xFF);
        assert_eq!(cpu.reg(reg::T3) as i64, -32768);
        assert_eq!(cpu.reg(reg::T4), 0x8000);
    }

    #[test]
    fn store_load_roundtrip_and_record() {
        let mut a = Asm::new();
        a.li(reg::S0, 0x3000);
        a.li(reg::T0, 0x1234_5678_9ABC_DEF0u64 as i64);
        a.sd(reg::T0, reg::S0, 16);
        a.ld(reg::T1, reg::S0, 16);
        a.halt();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.step(&program, &mut mem).unwrap();
        cpu.step(&program, &mut mem).unwrap();
        let store = cpu.step(&program, &mut mem).unwrap();
        assert_eq!(
            store.mem,
            Some(MemAccess {
                addr: 0x3010,
                size: 8,
                is_store: true
            })
        );
        let load = cpu.step(&program, &mut mem).unwrap();
        assert_eq!(
            load.mem,
            Some(MemAccess {
                addr: 0x3010,
                size: 8,
                is_store: false
            })
        );
        assert_eq!(cpu.reg(reg::T1), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn fp_operations() {
        let mut a = Asm::new();
        a.fli(0, 2.0);
        a.fli(1, 8.0);
        a.fadd(2, 0, 1);
        a.fdiv(3, 1, 0);
        a.fsqrt(4, 1);
        a.fcvt_fi(reg::T0, 3);
        a.flt(reg::T1, 0, 1);
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.freg(2), 10.0);
        assert_eq!(cpu.freg(3), 4.0);
        assert!((cpu.freg(4) - 8.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(cpu.reg(reg::T0), 4);
        assert_eq!(cpu.reg(reg::T1), 1);
    }

    #[test]
    fn branch_records_taken_and_next_pc() {
        let mut a = Asm::new();
        let target = a.label();
        a.li(reg::T0, 1); // 0
        a.bnez(reg::T0, target); // 1 -> 3
        a.nop(); // 2 skipped
        a.bind(target).unwrap();
        a.halt(); // 3
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.step(&program, &mut mem).unwrap();
        let br = cpu.step(&program, &mut mem).unwrap();
        assert!(br.taken);
        assert_eq!(br.next_pc, 3);
        let halt = cpu.step(&program, &mut mem).unwrap();
        assert_eq!(halt.pc, 3);
        assert!(cpu.halted());
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let mut a = Asm::new();
        let target = a.label();
        a.beq(reg::T0, reg::T1, target); // 0 taken? t0==t1==0 yes...
        a.bind(target).unwrap();
        a.halt();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let br = cpu.step(&program, &mut mem).unwrap();
        assert!(br.taken); // both registers zero
        assert_eq!(br.next_pc, 1);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        let func = a.label();
        a.call(func); // 0
        a.li(reg::T1, 7); // 1 (after return)
        a.halt(); // 2
        a.bind(func).unwrap();
        a.li(reg::T0, 5); // 3
        a.ret(); // 4
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T0), 5);
        assert_eq!(cpu.reg(reg::T1), 7);
        assert_eq!(cpu.reg(reg::RA), 1);
    }

    #[test]
    fn computed_jump_table() {
        let mut a = Asm::new();
        let case1 = a.label();
        let end = a.label();
        a.la(reg::T0, case1);
        a.jr(reg::T0, 0);
        a.halt(); // skipped
        a.bind(case1).unwrap();
        a.li(reg::T1, 42);
        a.j(end);
        a.nop();
        a.bind(end).unwrap();
        a.halt();
        let (cpu, _) = run_to_halt(a);
        assert_eq!(cpu.reg(reg::T1), 42);
    }

    #[test]
    fn step_after_halt_errors() {
        let mut a = Asm::new();
        a.halt();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.step(&program, &mut mem).unwrap();
        assert_eq!(cpu.step(&program, &mut mem), Err(IsaError::Halted));
        assert_eq!(cpu.retired(), 1);
    }

    #[test]
    fn pc_out_of_range_errors() {
        let mut a = Asm::new();
        a.nop();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.step(&program, &mut mem).unwrap();
        assert_eq!(
            cpu.step(&program, &mut mem),
            Err(IsaError::PcOutOfRange { pc: 1, len: 1 })
        );
    }

    #[test]
    fn run_stops_at_budget_and_halt() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top).unwrap();
        a.addi(reg::T0, reg::T0, 1);
        a.j(top);
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let n = cpu.run(&program, &mut mem, 1000).unwrap();
        assert_eq!(n, 1000);
        assert_eq!(cpu.retired(), 1000);
        assert!(!cpu.halted());

        let mut b = Asm::new();
        b.halt();
        let program2 = b.finish().unwrap();
        let mut cpu2 = Cpu::new();
        let n2 = cpu2.run(&program2, &mut mem, 1000).unwrap();
        assert_eq!(n2, 1);
        assert!(cpu2.halted());
    }
}

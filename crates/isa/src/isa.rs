//! The [`Isa`] frontend abstraction: everything the simulator stack needs
//! from an instruction set, expressed as a monomorphized trait.
//!
//! SMARTS's sampling theory is ISA-agnostic: systematic selection,
//! functional warming, and checkpoint replay consume only the committed
//! instruction stream. This module captures the contract between a
//! frontend and the rest of the stack:
//!
//! * an architectural CPU ([`Isa::Cpu`]) that can be stepped, snapshotted
//!   as fixed-width words, and restored bit-exactly;
//! * a program representation ([`Isa::Program`]) addressed by an
//!   *instruction index* program counter;
//! * a binary encoding ([`Isa::Instr`], [`Isa::decode`]/[`Isa::encode`]) —
//!   optional per instruction, since not every frontend has one;
//! * the memory touches each committed instruction implies for functional
//!   warming ([`Isa::mem_touches`]).
//!
//! Every frontend lowers its committed instructions to the shared
//! [`ExecRecord`] vocabulary (the built-in [`Inst`]/[`OpClass`]
//! (crate::OpClass) operation set). That choice keeps the warming
//! structures, the out-of-order timing model, and the checkpoint page
//! codec completely frontend-independent: a `WarmState` or `Pipeline`
//! never learns which ISA produced its records, so the built-in frontend's
//! behaviour — and its golden fingerprints — cannot change when new
//! frontends are added.
//!
//! All methods are associated functions over `Self::Cpu`, so generic code
//! monomorphizes per frontend with no dynamic dispatch anywhere on the
//! step loop.

use crate::{Cpu, ExecRecord, Inst, IsaError, MemAccess, Memory, Program, TEXT_BASE};
use std::fmt;

/// Identifies a frontend in store headers, fingerprints, job specs, and
/// diagnostics.
///
/// The numeric tags are part of the checkpoint-store format (version ≥ 3
/// headers carry one); they must never be reordered or reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaId {
    /// The built-in RISC-like set interpreted from decoded [`Inst`]s.
    Builtin,
    /// The compact fixed-32-bit-encoding RISC set ([`crate::RiscIsa`]).
    Risc,
    /// The instruction-trace import frontend ([`crate::TraceIsa`]).
    Trace,
}

impl IsaId {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            IsaId::Builtin => 0,
            IsaId::Risc => 1,
            IsaId::Trace => 2,
        }
    }

    /// Inverse of [`IsaId::tag`].
    pub fn from_tag(tag: u8) -> Option<IsaId> {
        match tag {
            0 => Some(IsaId::Builtin),
            1 => Some(IsaId::Risc),
            2 => Some(IsaId::Trace),
            _ => None,
        }
    }

    /// Canonical lower-case name, as accepted by `--isa` and job specs.
    pub fn name(self) -> &'static str {
        match self {
            IsaId::Builtin => "builtin",
            IsaId::Risc => "risc",
            IsaId::Trace => "trace",
        }
    }

    /// Inverse of [`IsaId::name`].
    pub fn from_name(name: &str) -> Option<IsaId> {
        match name {
            "builtin" => Some(IsaId::Builtin),
            "risc" => Some(IsaId::Risc),
            "trace" => Some(IsaId::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for IsaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Iterator over the memory touches one committed instruction implies:
/// the instruction fetch first, then the data access if any.
///
/// Produced by [`Isa::mem_touches`]; consumed by warming code that wants
/// the frontend-defined touch stream rather than the raw record.
#[derive(Debug, Clone)]
pub struct MemTouches {
    fetch: Option<MemAccess>,
    data: Option<MemAccess>,
}

impl Iterator for MemTouches {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        self.fetch.take().or_else(|| self.data.take())
    }
}

/// An instruction-set frontend.
///
/// # Contract
///
/// The engine and checkpoint layers may assume:
///
/// * **Index program counter.** `pc` is an index into the program's text,
///   not a byte address; instruction `i` occupies the
///   [`Isa::INST_BYTES`] bytes at `TEXT_BASE + i · INST_BYTES`, which is
///   what the I-cache and I-TLB warm on.
/// * **Shared record vocabulary.** [`Isa::step`] returns [`ExecRecord`]s
///   over the built-in [`Inst`] operation set; `retired` increments by
///   exactly one per record, and a `Halt`-class record pins the CPU
///   halted with `next_pc == pc`.
/// * **Bit-exact state words.** [`Isa::save_state`] appends exactly
///   [`Isa::STATE_WORDS`] words and [`Isa::load_state`] restores them so
///   that stepping the restored CPU replays the identical record stream —
///   the property checkpoint stores are built on. Floating-point state
///   must round-trip as bit patterns (NaN-safe).
/// * **Deterministic memory.** All data state lives in the shared paged
///   [`Memory`]; page size and the page-index hasher are properties of
///   [`Memory`], not of the frontend.
///
/// Changing any observable behaviour of a frontend (decode, interpreter
/// semantics, state layout) invalidates stores written under its
/// [`Isa::ID`]; bump the store fingerprint seed rules in `smarts-ckpt`
/// when doing so intentionally.
pub trait Isa: Sized + Send + Sync + 'static {
    /// Machine word of the architectural state (always `u64` today; kept
    /// associated so the contract is explicit).
    type Word: Copy + Send + Sync + 'static;
    /// Binary instruction encoding unit (`u32` for fixed-width sets; the
    /// built-in set has no binary encoding and uses [`Inst`] itself).
    type Instr: Copy + Send + Sync + 'static;
    /// Architectural CPU state.
    type Cpu: Clone + PartialEq + fmt::Debug + Send + Sync + 'static;
    /// Program representation addressed by instruction index.
    type Program: Clone + fmt::Debug + Send + Sync + 'static;

    /// Canonical lower-case frontend name.
    const NAME: &'static str;
    /// Store/fingerprint identifier.
    const ID: IsaId;
    /// Bytes one instruction occupies in the text section; the I-side
    /// warming granularity (`fetch_addr = TEXT_BASE + pc · INST_BYTES`).
    const INST_BYTES: u64;
    /// Number of words [`Isa::save_state`] appends.
    const STATE_WORDS: usize;

    /// A reset CPU at instruction index 0.
    fn new_cpu() -> Self::Cpu;
    /// Current program counter (instruction index).
    fn pc(cpu: &Self::Cpu) -> u64;
    /// Whether the CPU has executed a halt.
    fn halted(cpu: &Self::Cpu) -> bool;
    /// Instructions retired so far.
    fn retired(cpu: &Self::Cpu) -> u64;
    /// Number of static instructions in `program`.
    fn program_len(program: &Self::Program) -> u64;

    /// Appends exactly [`Isa::STATE_WORDS`] words of architectural state.
    fn save_state(cpu: &Self::Cpu, out: &mut Vec<u64>);
    /// Restores state written by [`Isa::save_state`], returning the number
    /// of words consumed, or `None` if `words` is too short.
    fn load_state(cpu: &mut Self::Cpu, words: &[u64]) -> Option<usize>;

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`IsaError::Halted`] if the CPU already halted, or a
    /// frontend-specific decode/fetch error.
    fn step(
        cpu: &mut Self::Cpu,
        program: &Self::Program,
        mem: &mut Memory,
    ) -> Result<ExecRecord, IsaError>;

    /// Runs at most `max_insts` instructions, feeding each committed
    /// record to `sink` and stopping early on halt. Returns the number of
    /// instructions executed.
    ///
    /// This is the fast-forward/warming hot loop; implementations keep the
    /// halted flag as the loop condition and inline their interpreter into
    /// the loop body.
    ///
    /// # Errors
    ///
    /// Propagates [`Isa::step`] errors other than reaching the budget.
    fn step_block(
        cpu: &mut Self::Cpu,
        program: &Self::Program,
        mem: &mut Memory,
        max_insts: u64,
        sink: impl FnMut(&ExecRecord),
    ) -> Result<u64, IsaError>;

    /// Decodes one binary instruction to the shared [`Inst`] vocabulary,
    /// or `None` if the encoding is invalid.
    fn decode(raw: Self::Instr) -> Option<Inst>;

    /// Encodes an [`Inst`] into this set's binary form, or `None` when the
    /// instruction is not representable (out-of-range immediate, opcode
    /// outside the set).
    fn encode(inst: &Inst) -> Option<Self::Instr>;

    /// The memory touches `rec` implies for functional warming: the
    /// instruction fetch (at `TEXT_BASE + pc · INST_BYTES`, of
    /// [`Isa::INST_BYTES`] bytes) followed by the data access if any.
    ///
    /// `WarmState::warm_record` consumes records directly on the hot path,
    /// but its I-side/D-side update pattern is — by contract — exactly
    /// this touch stream; tests assert the equivalence.
    fn mem_touches(rec: &ExecRecord) -> MemTouches {
        MemTouches {
            fetch: Some(MemAccess {
                addr: TEXT_BASE + rec.pc * Self::INST_BYTES,
                size: Self::INST_BYTES as u8,
                is_store: false,
            }),
            data: rec.mem,
        }
    }
}

/// The built-in frontend: the original decoded-[`Inst`] interpreter.
///
/// It has no binary encoding — programs are vectors of already-decoded
/// instructions produced by the [`Asm`](crate::Asm) builder — so
/// [`Isa::Instr`] is [`Inst`] itself and decode/encode are identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinIsa;

impl Isa for BuiltinIsa {
    type Word = u64;
    type Instr = Inst;
    type Cpu = Cpu;
    type Program = Program;

    const NAME: &'static str = "builtin";
    const ID: IsaId = IsaId::Builtin;
    const INST_BYTES: u64 = Program::INST_BYTES;
    const STATE_WORDS: usize = Cpu::STATE_WORDS;

    #[inline]
    fn new_cpu() -> Cpu {
        Cpu::new()
    }

    #[inline]
    fn pc(cpu: &Cpu) -> u64 {
        cpu.pc()
    }

    #[inline]
    fn halted(cpu: &Cpu) -> bool {
        cpu.halted()
    }

    #[inline]
    fn retired(cpu: &Cpu) -> u64 {
        cpu.retired()
    }

    #[inline]
    fn program_len(program: &Program) -> u64 {
        program.len()
    }

    #[inline]
    fn save_state(cpu: &Cpu, out: &mut Vec<u64>) {
        cpu.save_state(out)
    }

    #[inline]
    fn load_state(cpu: &mut Cpu, words: &[u64]) -> Option<usize> {
        cpu.load_state(words)
    }

    #[inline]
    fn step(cpu: &mut Cpu, program: &Program, mem: &mut Memory) -> Result<ExecRecord, IsaError> {
        cpu.step(program, mem)
    }

    #[inline]
    fn step_block(
        cpu: &mut Cpu,
        program: &Program,
        mem: &mut Memory,
        max_insts: u64,
        sink: impl FnMut(&ExecRecord),
    ) -> Result<u64, IsaError> {
        cpu.step_block(program, mem, max_insts, sink)
    }

    #[inline]
    fn decode(raw: Inst) -> Option<Inst> {
        Some(raw)
    }

    #[inline]
    fn encode(inst: &Inst) -> Option<Inst> {
        Some(*inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Asm, OpClass, Opcode};

    #[test]
    fn isa_id_tags_round_trip() {
        for id in [IsaId::Builtin, IsaId::Risc, IsaId::Trace] {
            assert_eq!(IsaId::from_tag(id.tag()), Some(id));
            assert_eq!(IsaId::from_name(id.name()), Some(id));
        }
        assert_eq!(IsaId::from_tag(200), None);
        assert_eq!(IsaId::from_name("mips"), None);
        assert_eq!(IsaId::Builtin.to_string(), "builtin");
    }

    #[test]
    fn builtin_isa_matches_direct_cpu() {
        let mut a = Asm::new();
        a.li(reg::T0, 5);
        let l = a.label();
        a.bind(l).unwrap();
        a.addi(reg::T0, reg::T0, -1);
        a.bne(reg::T0, reg::ZERO, l);
        a.halt();
        let program = a.finish().unwrap();

        let mut direct = Cpu::new();
        let mut direct_mem = Memory::new();
        let mut traited = BuiltinIsa::new_cpu();
        let mut traited_mem = Memory::new();
        loop {
            if direct.halted() {
                break;
            }
            let want = direct.step(&program, &mut direct_mem).unwrap();
            let got = BuiltinIsa::step(&mut traited, &program, &mut traited_mem).unwrap();
            assert_eq!(want, got);
        }
        assert!(BuiltinIsa::halted(&traited));
        assert_eq!(BuiltinIsa::retired(&traited), direct.retired());
        assert_eq!(BuiltinIsa::pc(&traited), direct.pc());

        let mut a_words = Vec::new();
        let mut b_words = Vec::new();
        direct.save_state(&mut a_words);
        BuiltinIsa::save_state(&traited, &mut b_words);
        assert_eq!(a_words, b_words);
        assert_eq!(a_words.len(), BuiltinIsa::STATE_WORDS);
    }

    #[test]
    fn default_mem_touches_are_fetch_then_data() {
        let rec = ExecRecord {
            pc: 7,
            inst: Inst::new(Opcode::Ld, reg::T0, reg::S0, 0, 16),
            mem: Some(MemAccess {
                addr: 0x2000,
                size: 8,
                is_store: false,
            }),
            taken: false,
            next_pc: 8,
        };
        let touches: Vec<MemAccess> = BuiltinIsa::mem_touches(&rec).collect();
        assert_eq!(touches.len(), 2);
        assert_eq!(touches[0].addr, rec.fetch_addr());
        assert_eq!(touches[0].size as u64, BuiltinIsa::INST_BYTES);
        assert!(!touches[0].is_store);
        assert_eq!(touches[1].addr, 0x2000);
        assert_eq!(rec.class(), OpClass::Load);

        let alu = ExecRecord {
            pc: 3,
            inst: Inst::new(Opcode::Add, 1, 2, 3, 0),
            mem: None,
            taken: false,
            next_pc: 4,
        };
        assert_eq!(BuiltinIsa::mem_touches(&alu).count(), 1);
    }
}

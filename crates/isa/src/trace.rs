//! [`TraceIsa`]: a frontend that replays externally produced instruction
//! traces through the unchanged warming/sampling pipeline.
//!
//! A trace file is a versioned, CRC-checked serialization of committed
//! [`ExecRecord`]s — operation, operands, pc, control outcome, and the
//! memory touch if any. "Executing" the trace replays the recorded
//! stream verbatim: the [`TraceCpu`] is just a cursor (position, halted
//! flag, retired count), which is exactly the state a checkpoint needs to
//! resume mid-trace. Because the replayed records are bit-identical to
//! the recorded ones, warming a trace exported from a built-in run
//! produces byte-identical warm state, and sampled replay produces a
//! byte-identical report — the round-trip property the `trace-export`
//! CLI subcommand exists to test.
//!
//! # File format (version 1, little-endian)
//!
//! ```text
//! magic    b"SMARTSTR"                                      8 bytes
//! version  u32                                              4 bytes
//! name_len u32, name bytes (source workload, informational)
//! records  × count:
//!   pc u64 | op u8 | rd u8 | rs1 u8 | rs2 u8 | imm u64
//!   flags u8 (bit0 taken, bit1 mem-present, bit2 mem-is-store)
//!   next_pc u64
//!   [addr u64 | size u8]          only when mem-present
//! trailer  record count u64, crc32 u32
//! ```
//!
//! The CRC covers every byte after the magic up to (and including) the
//! trailer's record count, so truncation, bit corruption, and a wrong
//! count are all detected before any record is replayed.

use crate::isa::{Isa, IsaId};
use crate::{ExecRecord, Inst, IsaError, MemAccess, Memory, OpClass, Opcode};
use std::error::Error;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"SMARTSTR";
/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;
/// Flag bits in each record's flags byte.
const FLAG_TAKEN: u8 = 1;
const FLAG_MEM: u8 = 2;
const FLAG_STORE: u8 = 4;
/// Trailer size: record count (8) + CRC (4).
const TRAILER_BYTES: usize = 12;
/// Refuse to load traces whose record count is obviously corrupt.
const MAX_RECORDS: u64 = 1 << 40;

/// Error loading or validating a trace file.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An I/O error reading or writing the file.
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file is structurally invalid (bad CRC, wrong record count,
    /// undecodable record, truncated stream).
    Corrupted(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "trace format version {v} is not supported")
            }
            TraceError::Corrupted(detail) => write!(f, "trace corrupted: {detail}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), bitwise — the trace files are small
/// enough that a table is not worth the bytes.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Every opcode in declaration order; a tag is an index into this table.
/// Part of the trace format — append only, never reorder.
#[rustfmt::skip]
const OPCODES: [Opcode; 62] = {
    use Opcode::*;
    [
        Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
        Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Li,
        FAdd, FSub, FMul, FDiv, FSqrt, FMin, FMax, FAbs, FNeg,
        FCvtIf, FCvtFi, FMvIf, FMvFi, FLi, FLt, FLe, FEq,
        Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld, Sb, Sh, Sw, Sd, FLd, FSd,
        Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr, Nop, Halt,
    ]
};

fn opcode_tag(op: Opcode) -> u8 {
    // The table is tiny and this only runs on the export path.
    OPCODES
        .iter()
        .position(|&o| o == op)
        .expect("every opcode is in the table") as u8
}

fn opcode_from_tag(tag: u8) -> Option<Opcode> {
    OPCODES.get(tag as usize).copied()
}

fn encode_record(rec: &ExecRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&rec.pc.to_le_bytes());
    out.push(opcode_tag(rec.inst.op));
    out.push(rec.inst.rd);
    out.push(rec.inst.rs1);
    out.push(rec.inst.rs2);
    out.extend_from_slice(&(rec.inst.imm as u64).to_le_bytes());
    let mut flags = 0;
    if rec.taken {
        flags |= FLAG_TAKEN;
    }
    if let Some(mem) = &rec.mem {
        flags |= FLAG_MEM;
        if mem.is_store {
            flags |= FLAG_STORE;
        }
    }
    out.push(flags);
    out.extend_from_slice(&rec.next_pc.to_le_bytes());
    if let Some(mem) = &rec.mem {
        out.extend_from_slice(&mem.addr.to_le_bytes());
        out.push(mem.size);
    }
}

/// Incremental little-endian reader over a byte region.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.bytes.split_at_checked(N)?;
        self.bytes = rest;
        Some(head.try_into().expect("split length"))
    }

    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }
}

fn decode_record(r: &mut Reader<'_>) -> Option<ExecRecord> {
    let pc = r.u64()?;
    let op = opcode_from_tag(r.u8()?)?;
    let rd = r.u8()?;
    let rs1 = r.u8()?;
    let rs2 = r.u8()?;
    let imm = r.u64()? as i64;
    let flags = r.u8()?;
    if flags & !(FLAG_TAKEN | FLAG_MEM | FLAG_STORE) != 0 {
        return None;
    }
    let next_pc = r.u64()?;
    let mem = if flags & FLAG_MEM != 0 {
        let addr = r.u64()?;
        let size = r.u8()?;
        if !matches!(size, 1 | 2 | 4 | 8) {
            return None;
        }
        Some(MemAccess {
            addr,
            size,
            is_store: flags & FLAG_STORE != 0,
        })
    } else if flags & FLAG_STORE != 0 {
        return None;
    } else {
        None
    };
    Some(ExecRecord {
        pc,
        inst: Inst::new(op, rd, rs1, rs2, imm),
        mem,
        taken: flags & FLAG_TAKEN != 0,
        next_pc,
    })
}

/// Serializes `records` as a version-1 trace file body (magic through
/// trailer). `name` records the source workload for diagnostics.
pub fn encode_trace(name: &str, records: &[ExecRecord]) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + records.len() * 32);
    body.extend_from_slice(&TRACE_MAGIC);
    body.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    body.extend_from_slice(&(name.len() as u32).to_le_bytes());
    body.extend_from_slice(name.as_bytes());
    for rec in records {
        encode_record(rec, &mut body);
    }
    body.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let crc = crc32(&body[TRACE_MAGIC.len()..]);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Writes `records` to `path` in the trace file format.
///
/// # Errors
///
/// Propagates I/O errors; the file is written atomically enough for
/// tests (single `write_all` of the encoded body).
pub fn write_trace(path: &Path, name: &str, records: &[ExecRecord]) -> Result<(), TraceError> {
    let body = encode_trace(name, records);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&body)?;
    file.flush()?;
    Ok(())
}

/// A loaded instruction trace: the replay "program" of [`TraceIsa`].
///
/// Records are held behind an `Arc`, so cloning a program (every engine
/// snapshot holds one) is a pointer bump.
#[derive(Debug, Clone)]
pub struct TraceProgram {
    name: String,
    records: Arc<[ExecRecord]>,
}

impl TraceProgram {
    /// Wraps in-memory records as a trace program.
    pub fn from_records(name: &str, records: Vec<ExecRecord>) -> Self {
        TraceProgram {
            name: name.to_string(),
            records: records.into(),
        }
    }

    /// Parses a trace file body (as produced by [`encode_trace`]).
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
    /// foreign files, [`TraceError::Corrupted`] for CRC mismatches,
    /// truncation, record-count mismatches, or undecodable records.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let corrupted = |detail: &str| TraceError::Corrupted(detail.to_string());
        let after_magic = bytes
            .strip_prefix(&TRACE_MAGIC[..])
            .ok_or(TraceError::BadMagic)?;
        if after_magic.len() < 4 + 4 + TRAILER_BYTES {
            return Err(corrupted("file shorter than its fixed fields"));
        }
        let (checked, crc_bytes) = after_magic.split_at(after_magic.len() - 4);
        let want_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(checked) != want_crc {
            return Err(corrupted("crc mismatch"));
        }
        let mut r = Reader { bytes: checked };
        let version = u32::from_le_bytes(r.take::<4>().ok_or_else(|| corrupted("version"))?);
        if version == 0 || version > TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let name_len =
            u32::from_le_bytes(r.take::<4>().ok_or_else(|| corrupted("name length"))?) as usize;
        if name_len > r.bytes.len().saturating_sub(8) {
            return Err(corrupted("name length exceeds file"));
        }
        let (name_bytes, rest) = r.bytes.split_at(name_len);
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| corrupted("name is not utf-8"))?
            .to_string();
        r.bytes = rest;
        // The trailer count sits in the last 8 checked bytes.
        if r.bytes.len() < 8 {
            return Err(corrupted("missing record count"));
        }
        let (record_region, count_bytes) = r.bytes.split_at(r.bytes.len() - 8);
        let count = u64::from_le_bytes(count_bytes.try_into().expect("8 bytes"));
        if count > MAX_RECORDS {
            return Err(corrupted("record count implausible"));
        }
        let mut r = Reader {
            bytes: record_region,
        };
        let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
        for index in 0..count {
            let rec = decode_record(&mut r)
                .ok_or_else(|| corrupted(&format!("record {index} does not decode")))?;
            records.push(rec);
        }
        if !r.bytes.is_empty() {
            return Err(corrupted("trailing bytes after the last record"));
        }
        Ok(TraceProgram {
            name,
            records: records.into(),
        })
    }

    /// Loads and validates a trace file.
    ///
    /// # Errors
    ///
    /// See [`TraceProgram::decode`], plus I/O errors.
    pub fn load(path: &Path) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// The recorded source-workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded stream.
    pub fn records(&self) -> &[ExecRecord] {
        &self.records
    }
}

/// Replay cursor over a [`TraceProgram`]: the architectural "CPU" of the
/// trace frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCpu {
    pos: u64,
    halted: bool,
    retired: u64,
}

impl TraceCpu {
    /// Words [`TraceIsa::save_state`] appends: position, halted flag,
    /// retired count.
    pub const STATE_WORDS: usize = 3;

    /// Current position in the trace (records consumed).
    pub fn pos(&self) -> u64 {
        self.pos
    }
}

/// The trace-import frontend (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceIsa;

impl Isa for TraceIsa {
    type Word = u64;
    // Traces have no fixed-width binary instruction unit; like the
    // built-in set, the "encoding" is the decoded instruction itself
    // (the on-disk record codec is a file format, not an ISA encoding).
    type Instr = Inst;
    type Cpu = TraceCpu;
    type Program = TraceProgram;

    const NAME: &'static str = "trace";
    const ID: IsaId = IsaId::Trace;
    // Traces record index-pc frontends whose text is 4 bytes/instruction;
    // record fetch addresses are reproduced from pc exactly as the source
    // frontend computed them.
    const INST_BYTES: u64 = 4;
    const STATE_WORDS: usize = TraceCpu::STATE_WORDS;

    #[inline]
    fn new_cpu() -> TraceCpu {
        TraceCpu::default()
    }

    #[inline]
    fn pc(cpu: &TraceCpu) -> u64 {
        cpu.pos
    }

    #[inline]
    fn halted(cpu: &TraceCpu) -> bool {
        cpu.halted
    }

    #[inline]
    fn retired(cpu: &TraceCpu) -> u64 {
        cpu.retired
    }

    #[inline]
    fn program_len(program: &TraceProgram) -> u64 {
        program.len()
    }

    fn save_state(cpu: &TraceCpu, out: &mut Vec<u64>) {
        out.push(cpu.pos);
        out.push(cpu.halted as u64);
        out.push(cpu.retired);
    }

    fn load_state(cpu: &mut TraceCpu, words: &[u64]) -> Option<usize> {
        let words = words.get(..Self::STATE_WORDS)?;
        cpu.pos = words[0];
        cpu.halted = words[1] != 0;
        cpu.retired = words[2];
        Some(Self::STATE_WORDS)
    }

    #[inline]
    fn step(
        cpu: &mut TraceCpu,
        program: &TraceProgram,
        _mem: &mut Memory,
    ) -> Result<ExecRecord, IsaError> {
        if cpu.halted {
            return Err(IsaError::Halted);
        }
        let rec = *program
            .records
            .get(cpu.pos as usize)
            .ok_or(IsaError::PcOutOfRange {
                pc: cpu.pos,
                len: program.len(),
            })?;
        cpu.pos += 1;
        cpu.retired += 1;
        if rec.class() == OpClass::Halt {
            cpu.halted = true;
        }
        Ok(rec)
    }

    #[inline]
    fn step_block(
        cpu: &mut TraceCpu,
        program: &TraceProgram,
        _mem: &mut Memory,
        max_insts: u64,
        mut sink: impl FnMut(&ExecRecord),
    ) -> Result<u64, IsaError> {
        let mut executed = 0;
        while executed < max_insts && !cpu.halted {
            let rec = program
                .records
                .get(cpu.pos as usize)
                .ok_or(IsaError::PcOutOfRange {
                    pc: cpu.pos,
                    len: program.len(),
                })?;
            cpu.pos += 1;
            cpu.retired += 1;
            if rec.class() == OpClass::Halt {
                cpu.halted = true;
            }
            sink(rec);
            executed += 1;
        }
        Ok(executed)
    }

    #[inline]
    fn decode(raw: Inst) -> Option<Inst> {
        Some(raw)
    }

    #[inline]
    fn encode(inst: &Inst) -> Option<Inst> {
        Some(*inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Asm, Cpu};

    fn sample_records() -> Vec<ExecRecord> {
        let mut a = Asm::new();
        a.li(reg::S1, 0x1000_0000);
        a.li(reg::T0, 5);
        let l = a.label();
        a.bind(l).unwrap();
        a.sd(reg::T0, reg::S1, 0);
        a.ld(reg::T1, reg::S1, 0);
        a.addi(reg::T0, reg::T0, -1);
        a.bnez(reg::T0, l);
        a.halt();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let mut records = Vec::new();
        while !cpu.halted() {
            records.push(cpu.step(&program, &mut mem).unwrap());
        }
        records
    }

    #[test]
    fn opcode_tags_cover_every_opcode() {
        for (tag, &op) in OPCODES.iter().enumerate() {
            assert_eq!(opcode_tag(op) as usize, tag);
            assert_eq!(opcode_from_tag(tag as u8), Some(op));
        }
        assert_eq!(opcode_from_tag(62), None);
    }

    #[test]
    fn trace_encode_decode_round_trips() {
        let records = sample_records();
        let body = encode_trace("unit-test", &records);
        let program = TraceProgram::decode(&body).expect("valid trace decodes");
        assert_eq!(program.name(), "unit-test");
        assert_eq!(program.records(), &records[..]);
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let records = sample_records();
        let program = TraceProgram::from_records("t", records.clone());
        let mut cpu = TraceIsa::new_cpu();
        let mut mem = Memory::new();
        let mut replayed = Vec::new();
        while !TraceIsa::halted(&cpu) {
            replayed.push(TraceIsa::step(&mut cpu, &program, &mut mem).unwrap());
        }
        assert_eq!(replayed, records);
        assert_eq!(TraceIsa::retired(&cpu), records.len() as u64);
        assert!(matches!(
            TraceIsa::step(&mut cpu, &program, &mut mem),
            Err(IsaError::Halted)
        ));

        // Cursor state round-trips through save/load and resumes exactly.
        let mut words = Vec::new();
        TraceIsa::save_state(&cpu, &mut words);
        assert_eq!(words.len(), TraceIsa::STATE_WORDS);
        let mut restored = TraceIsa::new_cpu();
        assert_eq!(
            TraceIsa::load_state(&mut restored, &words),
            Some(TraceIsa::STATE_WORDS)
        );
        assert_eq!(restored, cpu);
    }

    #[test]
    fn mid_trace_resume_is_exact() {
        let records = sample_records();
        let program = TraceProgram::from_records("t", records.clone());
        let mut cpu = TraceIsa::new_cpu();
        let mut mem = Memory::new();
        for _ in 0..3 {
            TraceIsa::step(&mut cpu, &program, &mut mem).unwrap();
        }
        let mut words = Vec::new();
        TraceIsa::save_state(&cpu, &mut words);
        let mut resumed = TraceIsa::new_cpu();
        TraceIsa::load_state(&mut resumed, &words).unwrap();
        let a = TraceIsa::step(&mut cpu, &program, &mut mem).unwrap();
        let b = TraceIsa::step(&mut resumed, &program, &mut mem).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, records[3]);
    }

    #[test]
    fn corrupt_and_truncated_traces_are_rejected() {
        let records = sample_records();
        let body = encode_trace("t", &records);

        // Bad magic.
        let mut bad = body.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            TraceProgram::decode(&bad),
            Err(TraceError::BadMagic)
        ));

        // Every single-byte corruption past the magic must be caught by
        // the CRC (or, for the CRC bytes themselves, by the mismatch).
        let step = (body.len() / 37).max(1);
        for index in (TRACE_MAGIC.len()..body.len()).step_by(step) {
            let mut bad = body.clone();
            bad[index] ^= 0x40;
            assert!(
                TraceProgram::decode(&bad).is_err(),
                "flipped byte {index} must not decode"
            );
        }

        // Truncation at every length short of the full file.
        for len in 0..body.len() {
            assert!(
                TraceProgram::decode(&body[..len]).is_err(),
                "truncated to {len} bytes must not decode"
            );
        }

        // Unsupported version (with a recomputed, valid CRC).
        let mut versioned = body.clone();
        versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc_at = versioned.len() - 4;
        let crc = crc32(&versioned[TRACE_MAGIC.len()..crc_at]);
        versioned[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            TraceProgram::decode(&versioned),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("smarts-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.trace");
        let records = sample_records();
        write_trace(&path, "disk-test", &records).unwrap();
        let program = TraceProgram::load(&path).unwrap();
        assert_eq!(program.name(), "disk-test");
        assert_eq!(program.records(), &records[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

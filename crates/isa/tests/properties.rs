//! Property-based tests of the ISA substrate: memory, assembler, and the
//! functional CPU's architectural invariants.

use proptest::prelude::*;
use smarts_isa::{reg, Asm, Cpu, Inst, Memory, Opcode, Program};

fn arb_alu_op() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::Sub),
        Just(Opcode::Mul),
        Just(Opcode::Div),
        Just(Opcode::Rem),
        Just(Opcode::And),
        Just(Opcode::Or),
        Just(Opcode::Xor),
        Just(Opcode::Sll),
        Just(Opcode::Srl),
        Just(Opcode::Sra),
        Just(Opcode::Slt),
        Just(Opcode::Sltu),
    ]
}

proptest! {
    #[test]
    fn memory_roundtrips_any_u64(addr in 0u64..u64::MAX - 8, value: u64) {
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        prop_assert_eq!(mem.read_u64(addr), value);
    }

    #[test]
    fn memory_narrow_writes_compose(addr in 0u64..1u64 << 40, bytes: [u8; 8]) {
        let mut mem = Memory::new();
        for (i, &b) in bytes.iter().enumerate() {
            mem.write_u8(addr + i as u64, b);
        }
        prop_assert_eq!(mem.read_u64(addr), u64::from_le_bytes(bytes));
    }

    #[test]
    fn memory_adjacent_writes_do_not_interfere(
        addr in 8u64..1u64 << 40,
        a: u64,
        b: u64,
    ) {
        let mut mem = Memory::new();
        mem.write_u64(addr - 8, a);
        mem.write_u64(addr + 8, b);
        prop_assert_eq!(mem.read_u64(addr - 8), a);
        prop_assert_eq!(mem.read_u64(addr + 8), b);
        // The word between the two writes was never touched.
        prop_assert_eq!(mem.read_u64(addr), 0);
    }

    #[test]
    fn zero_register_survives_any_alu_storm(
        ops in proptest::collection::vec((arb_alu_op(), 0u8..8, 0u8..8, 0u8..8), 1..200),
    ) {
        // Random ALU programs over registers 0..8 never corrupt x0 and
        // never touch memory or control flow.
        let mut insts = Vec::new();
        for (op, rd, rs1, rs2) in ops {
            insts.push(Inst::new(op, rd, rs1, rs2, 0));
        }
        insts.push(Inst::new(Opcode::Halt, 0, 0, 0, 0));
        let len = insts.len() as u64;
        let program = Program::from_insts(insts).unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            let rec = cpu.step(&program, &mut mem).unwrap();
            prop_assert!(rec.mem.is_none());
            prop_assert!(!rec.taken);
        }
        prop_assert_eq!(cpu.reg(0), 0);
        prop_assert_eq!(cpu.retired(), len);
        prop_assert_eq!(mem.page_count(), 0);
    }

    #[test]
    fn store_then_load_roundtrips_through_the_cpu(
        base in 0x1000u64..0x100_0000,
        value: u64,
        disp in 0i64..256,
    ) {
        let mut a = Asm::new();
        a.li(reg::S0, base as i64);
        a.li(reg::T0, value as i64);
        a.sd(reg::T0, reg::S0, disp);
        a.ld(reg::T1, reg::S0, disp);
        a.halt();
        let program = a.finish().unwrap();
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&program, &mut mem).unwrap();
        }
        prop_assert_eq!(cpu.reg(reg::T1), value);
    }

    #[test]
    fn branch_taken_iff_condition_holds(lhs: i64, rhs: i64) {
        let cases = [
            (Opcode::Beq, lhs == rhs),
            (Opcode::Bne, lhs != rhs),
            (Opcode::Blt, lhs < rhs),
            (Opcode::Bge, lhs >= rhs),
            (Opcode::Bltu, (lhs as u64) < (rhs as u64)),
            (Opcode::Bgeu, (lhs as u64) >= (rhs as u64)),
        ];
        for (op, expect) in cases {
            let insts = vec![
                Inst::new(Opcode::Li, reg::T0, 0, 0, lhs),
                Inst::new(Opcode::Li, reg::T1, 0, 0, rhs),
                Inst::new(op, 0, reg::T0, reg::T1, 4),
                Inst::new(Opcode::Halt, 0, 0, 0, 0), // fall-through
                Inst::new(Opcode::Halt, 0, 0, 0, 0), // target
            ];
            let program = Program::from_insts(insts).unwrap();
            let mut cpu = Cpu::new();
            let mut mem = Memory::new();
            cpu.step(&program, &mut mem).unwrap();
            cpu.step(&program, &mut mem).unwrap();
            let rec = cpu.step(&program, &mut mem).unwrap();
            prop_assert_eq!(rec.taken, expect, "{:?} {} {}", op, lhs, rhs);
            prop_assert_eq!(rec.next_pc, if expect { 4 } else { 3 });
        }
    }

    #[test]
    fn execution_is_deterministic(seed_ops in proptest::collection::vec((arb_alu_op(), 0u8..16, 0u8..16, 0u8..16), 1..100)) {
        let mut insts: Vec<Inst> = seed_ops
            .iter()
            .map(|&(op, rd, rs1, rs2)| Inst::new(op, rd, rs1, rs2, 7))
            .collect();
        insts.push(Inst::new(Opcode::Halt, 0, 0, 0, 0));
        let program = Program::from_insts(insts).unwrap();
        let run = || {
            let mut cpu = Cpu::new();
            let mut mem = Memory::new();
            while !cpu.halted() {
                cpu.step(&program, &mut mem).unwrap();
            }
            (0..32).map(|r| cpu.reg(r)).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn assembler_labels_resolve_to_bound_positions(extra_nops in 0usize..20) {
        let mut a = Asm::new();
        let target = a.label();
        a.j(target);
        for _ in 0..extra_nops {
            a.nop();
        }
        a.bind(target).unwrap();
        a.halt();
        let program = a.finish().unwrap();
        prop_assert_eq!(program.get(0).unwrap().imm as u64, 1 + extra_nops as u64);
    }
}

//! Activity-based energy model for SMARTS energy-per-instruction (EPI)
//! estimation.
//!
//! The original SMARTSim used the Wattch 1.02 extensions to SimpleScalar,
//! which derive per-access capacitances from Cacti-style circuit models.
//! Those capacitance tables are not reproducible here, so this crate
//! substitutes an *activity-event* model: the timing model counts events
//! per microarchitectural structure ([`ActivityCounters`]), and
//! [`EnergyModel`] converts the counts into nanojoules with per-event
//! energies plus a conditionally-clocked per-cycle base cost — the same
//! structure as Wattch's "clock-gated, 10% idle" accounting style.
//!
//! What matters for reproducing the paper's EPI results is not the
//! absolute nanojoule scale but that energy varies with activity the same
//! way: EPI variation tracks — but is damped relative to — CPI variation,
//! which is why the paper's Figure 7 confidence intervals are tighter than
//! Figure 6's.
//!
//! # Examples
//!
//! ```
//! use smarts_energy::{ActivityCounters, EnergyModel};
//!
//! let model = EnergyModel::eight_way();
//! let mut counters = ActivityCounters::default();
//! counters.commits = 1000;
//! counters.int_alu_ops = 800;
//! counters.l1d_accesses = 300;
//! let epi = model.energy_per_instruction(&counters, 1500);
//! assert!(epi > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-structure event counts accumulated by the timing model.
///
/// All counts are cumulative; the model is linear, so counters from
/// disjoint measurement windows can be added field-wise with
/// [`ActivityCounters::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing event counts
pub struct ActivityCounters {
    pub fetches: u64,
    pub decodes: u64,
    pub renames: u64,
    pub window_wakeups: u64,
    pub window_issues: u64,
    pub regfile_reads: u64,
    pub regfile_writes: u64,
    pub int_alu_ops: u64,
    pub int_mul_ops: u64,
    pub int_div_ops: u64,
    pub fp_alu_ops: u64,
    pub fp_mul_ops: u64,
    pub fp_div_ops: u64,
    pub l1i_accesses: u64,
    pub l1d_accesses: u64,
    pub l2_accesses: u64,
    pub mem_accesses: u64,
    pub itlb_accesses: u64,
    pub dtlb_accesses: u64,
    pub bpred_lookups: u64,
    pub bpred_updates: u64,
    pub btb_lookups: u64,
    pub lsq_searches: u64,
    pub store_buffer_ops: u64,
    pub commits: u64,
    /// Resolved conditional-branch direction mispredictions. Carries no
    /// energy weight; tracked here so per-unit sampling can estimate
    /// branch MPKI alongside EPI from the same counter set.
    pub branch_mispredicts: u64,
}

impl ActivityCounters {
    /// Adds another counter set field-wise.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.fetches += other.fetches;
        self.decodes += other.decodes;
        self.renames += other.renames;
        self.window_wakeups += other.window_wakeups;
        self.window_issues += other.window_issues;
        self.regfile_reads += other.regfile_reads;
        self.regfile_writes += other.regfile_writes;
        self.int_alu_ops += other.int_alu_ops;
        self.int_mul_ops += other.int_mul_ops;
        self.int_div_ops += other.int_div_ops;
        self.fp_alu_ops += other.fp_alu_ops;
        self.fp_mul_ops += other.fp_mul_ops;
        self.fp_div_ops += other.fp_div_ops;
        self.l1i_accesses += other.l1i_accesses;
        self.l1d_accesses += other.l1d_accesses;
        self.l2_accesses += other.l2_accesses;
        self.mem_accesses += other.mem_accesses;
        self.itlb_accesses += other.itlb_accesses;
        self.dtlb_accesses += other.dtlb_accesses;
        self.bpred_lookups += other.bpred_lookups;
        self.bpred_updates += other.bpred_updates;
        self.btb_lookups += other.btb_lookups;
        self.lsq_searches += other.lsq_searches;
        self.store_buffer_ops += other.store_buffer_ops;
        self.commits += other.commits;
        self.branch_mispredicts += other.branch_mispredicts;
    }

    /// Total functional-unit operations of any kind.
    pub fn fu_ops(&self) -> u64 {
        self.int_alu_ops
            + self.int_mul_ops
            + self.int_div_ops
            + self.fp_alu_ops
            + self.fp_mul_ops
            + self.fp_div_ops
    }
}

/// Per-event energies in nanojoules, plus the per-cycle base cost.
///
/// The defaults are plausible 100 nm-generation magnitudes chosen so that
/// EPI lands in the tens-of-nJ range the paper's Figure 7 reports; the
/// *relative* weighting across structures (memory ≫ L2 ≫ L1 ≫ ALU)
/// follows Wattch's published breakdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field names mirror ActivityCounters
pub struct EnergyParams {
    pub fetch_nj: f64,
    pub decode_nj: f64,
    pub rename_nj: f64,
    pub window_wakeup_nj: f64,
    pub window_issue_nj: f64,
    pub regfile_read_nj: f64,
    pub regfile_write_nj: f64,
    pub int_alu_nj: f64,
    pub int_mul_nj: f64,
    pub int_div_nj: f64,
    pub fp_alu_nj: f64,
    pub fp_mul_nj: f64,
    pub fp_div_nj: f64,
    pub l1i_nj: f64,
    pub l1d_nj: f64,
    pub l2_nj: f64,
    pub mem_nj: f64,
    pub itlb_nj: f64,
    pub dtlb_nj: f64,
    pub bpred_lookup_nj: f64,
    pub bpred_update_nj: f64,
    pub btb_nj: f64,
    pub lsq_search_nj: f64,
    pub store_buffer_nj: f64,
    pub commit_nj: f64,
    /// Clock tree, leakage, and idle (conditionally-clocked) structures,
    /// charged every cycle regardless of activity.
    pub base_cycle_nj: f64,
}

impl EnergyParams {
    /// Parameters sized for the paper's 8-way baseline configuration.
    pub fn eight_way() -> Self {
        EnergyParams {
            fetch_nj: 0.10,
            decode_nj: 0.05,
            rename_nj: 0.08,
            window_wakeup_nj: 0.06,
            window_issue_nj: 0.10,
            regfile_read_nj: 0.05,
            regfile_write_nj: 0.06,
            int_alu_nj: 0.10,
            int_mul_nj: 0.30,
            int_div_nj: 0.50,
            fp_alu_nj: 0.25,
            fp_mul_nj: 0.35,
            fp_div_nj: 0.60,
            l1i_nj: 0.20,
            l1d_nj: 0.22,
            l2_nj: 0.90,
            mem_nj: 6.0,
            itlb_nj: 0.03,
            dtlb_nj: 0.03,
            bpred_lookup_nj: 0.04,
            bpred_update_nj: 0.04,
            btb_nj: 0.04,
            lsq_search_nj: 0.08,
            store_buffer_nj: 0.05,
            commit_nj: 0.05,
            base_cycle_nj: 1.2,
        }
    }

    /// Parameters sized for the 16-way aggressive configuration: wider
    /// datapath, larger window and caches — every structure costs more
    /// per access, and the clock network grows with the datapath.
    pub fn sixteen_way() -> Self {
        let base = EnergyParams::eight_way();
        EnergyParams {
            fetch_nj: base.fetch_nj * 1.6,
            decode_nj: base.decode_nj * 1.6,
            rename_nj: base.rename_nj * 1.8,
            window_wakeup_nj: base.window_wakeup_nj * 2.0,
            window_issue_nj: base.window_issue_nj * 2.0,
            regfile_read_nj: base.regfile_read_nj * 1.7,
            regfile_write_nj: base.regfile_write_nj * 1.7,
            int_alu_nj: base.int_alu_nj,
            int_mul_nj: base.int_mul_nj,
            int_div_nj: base.int_div_nj,
            fp_alu_nj: base.fp_alu_nj,
            fp_mul_nj: base.fp_mul_nj,
            fp_div_nj: base.fp_div_nj,
            l1i_nj: base.l1i_nj * 1.5,
            l1d_nj: base.l1d_nj * 1.5,
            l2_nj: base.l2_nj * 1.4,
            mem_nj: base.mem_nj,
            itlb_nj: base.itlb_nj,
            dtlb_nj: base.dtlb_nj,
            bpred_lookup_nj: base.bpred_lookup_nj * 1.5,
            bpred_update_nj: base.bpred_update_nj * 1.5,
            btb_nj: base.btb_nj * 1.5,
            lsq_search_nj: base.lsq_search_nj * 1.8,
            store_buffer_nj: base.store_buffer_nj * 1.5,
            commit_nj: base.commit_nj * 1.6,
            base_cycle_nj: base.base_cycle_nj * 2.2,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::eight_way()
    }
}

/// Converts activity counts into energy.
///
/// # Examples
///
/// ```
/// use smarts_energy::{ActivityCounters, EnergyModel};
///
/// let model = EnergyModel::eight_way();
/// let idle = ActivityCounters::default();
/// // An idle cycle still burns clock/leakage energy.
/// assert!(model.total_energy(&idle, 1) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// A model with the given parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// Model preset for the 8-way baseline machine.
    pub fn eight_way() -> Self {
        EnergyModel::new(EnergyParams::eight_way())
    }

    /// Model preset for the 16-way aggressive machine.
    pub fn sixteen_way() -> Self {
        EnergyModel::new(EnergyParams::sixteen_way())
    }

    /// The model's parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Total energy in nanojoules for the given activity over `cycles`.
    pub fn total_energy(&self, c: &ActivityCounters, cycles: u64) -> f64 {
        let p = &self.params;
        c.fetches as f64 * p.fetch_nj
            + c.decodes as f64 * p.decode_nj
            + c.renames as f64 * p.rename_nj
            + c.window_wakeups as f64 * p.window_wakeup_nj
            + c.window_issues as f64 * p.window_issue_nj
            + c.regfile_reads as f64 * p.regfile_read_nj
            + c.regfile_writes as f64 * p.regfile_write_nj
            + c.int_alu_ops as f64 * p.int_alu_nj
            + c.int_mul_ops as f64 * p.int_mul_nj
            + c.int_div_ops as f64 * p.int_div_nj
            + c.fp_alu_ops as f64 * p.fp_alu_nj
            + c.fp_mul_ops as f64 * p.fp_mul_nj
            + c.fp_div_ops as f64 * p.fp_div_nj
            + c.l1i_accesses as f64 * p.l1i_nj
            + c.l1d_accesses as f64 * p.l1d_nj
            + c.l2_accesses as f64 * p.l2_nj
            + c.mem_accesses as f64 * p.mem_nj
            + c.itlb_accesses as f64 * p.itlb_nj
            + c.dtlb_accesses as f64 * p.dtlb_nj
            + c.bpred_lookups as f64 * p.bpred_lookup_nj
            + c.bpred_updates as f64 * p.bpred_update_nj
            + c.btb_lookups as f64 * p.btb_nj
            + c.lsq_searches as f64 * p.lsq_search_nj
            + c.store_buffer_ops as f64 * p.store_buffer_nj
            + c.commits as f64 * p.commit_nj
            + cycles as f64 * p.base_cycle_nj
    }

    /// Energy per committed instruction in nanojoules.
    ///
    /// Returns 0 when no instructions committed.
    pub fn energy_per_instruction(&self, c: &ActivityCounters, cycles: u64) -> f64 {
        if c.commits == 0 {
            0.0
        } else {
            self.total_energy(c, cycles) / c.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_counters() -> ActivityCounters {
        ActivityCounters {
            fetches: 1200,
            decodes: 1100,
            renames: 1100,
            window_wakeups: 900,
            window_issues: 1000,
            regfile_reads: 1800,
            regfile_writes: 900,
            int_alu_ops: 700,
            int_mul_ops: 30,
            int_div_ops: 5,
            fp_alu_ops: 100,
            fp_mul_ops: 60,
            fp_div_ops: 10,
            l1i_accesses: 1200,
            l1d_accesses: 400,
            l2_accesses: 40,
            mem_accesses: 8,
            itlb_accesses: 1200,
            dtlb_accesses: 400,
            bpred_lookups: 200,
            bpred_updates: 150,
            btb_lookups: 200,
            lsq_searches: 350,
            store_buffer_ops: 120,
            commits: 1000,
            branch_mispredicts: 1,
        }
    }

    #[test]
    fn idle_cycles_cost_base_energy_only() {
        let model = EnergyModel::eight_way();
        let idle = ActivityCounters::default();
        let e = model.total_energy(&idle, 100);
        assert!((e - 100.0 * model.params().base_cycle_nj).abs() < 1e-9);
    }

    #[test]
    fn energy_is_linear_in_activity() {
        let model = EnergyModel::eight_way();
        let c = busy_counters();
        let mut doubled = c;
        doubled.merge(&c);
        let e1 = model.total_energy(&c, 1500);
        let e2 = model.total_energy(&doubled, 3000);
        assert!((e2 - 2.0 * e1).abs() < 1e-6);
    }

    #[test]
    fn epi_in_plausible_range() {
        let model = EnergyModel::eight_way();
        let epi = model.energy_per_instruction(&busy_counters(), 1500);
        // The paper's Figure 7 reports EPI on a nJ/instruction scale.
        assert!(epi > 1.0 && epi < 100.0, "epi = {epi}");
    }

    #[test]
    fn epi_zero_without_commits() {
        let model = EnergyModel::eight_way();
        assert_eq!(
            model.energy_per_instruction(&ActivityCounters::default(), 99),
            0.0
        );
    }

    #[test]
    fn sixteen_way_costs_more_per_cycle_and_access() {
        let p8 = EnergyParams::eight_way();
        let p16 = EnergyParams::sixteen_way();
        assert!(p16.base_cycle_nj > p8.base_cycle_nj);
        assert!(p16.window_issue_nj > p8.window_issue_nj);
        assert!(p16.l2_nj > p8.l2_nj);
        // FU op energy is per-op and unchanged.
        assert_eq!(p16.int_alu_nj, p8.int_alu_nj);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = busy_counters();
        let b = busy_counters();
        a.merge(&b);
        assert_eq!(a.fetches, 2400);
        assert_eq!(a.branch_mispredicts, 2);
        assert_eq!(a.commits, 2000);
        assert_eq!(a.mem_accesses, 16);
        assert_eq!(a.fu_ops(), 2 * (700 + 30 + 5 + 100 + 60 + 10));
    }

    #[test]
    fn memory_dominates_cache_hierarchy_energy() {
        let p = EnergyParams::eight_way();
        assert!(p.mem_nj > p.l2_nj && p.l2_nj > p.l1d_nj && p.l1d_nj > p.dtlb_nj);
    }
}

//! Randomized tests of the workload generators: every kernel must
//! terminate, be deterministic in its seed, and scale linearly. Cases
//! come from the crate's own `SplitMix64`, so the suite needs no
//! external crates and failures reproduce from the fixed seeds.

use smarts_isa::{Cpu, Memory};
use smarts_workloads::{cyclic_permutation, kernels, suite, SplitMix64};

fn run(program: &smarts_isa::Program, mut memory: Memory, budget: u64) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    cpu.run(program, &mut memory, budget)
        .expect("kernel executes");
    assert!(cpu.halted(), "kernel must halt within {budget}");
    (cpu, memory)
}

const CASES: u64 = 24;

#[test]
fn chase_terminates_for_any_geometry() {
    let mut rng = SplitMix64::new(101);
    for _ in 0..CASES {
        let nodes = 2 + rng.next_below(510) as usize;
        let steps = 1 + rng.next_below(1999);
        let seed = rng.next_below(100);
        let (program, memory) = kernels::chase::build(nodes, steps, seed);
        let (cpu, _) = run(&program, memory, 3 * steps + 100);
        assert_eq!(cpu.retired(), 3 * steps + 3);
    }
}

#[test]
fn stream_is_seed_deterministic() {
    let mut rng = SplitMix64::new(102);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(255) as usize;
        let reps = 1 + rng.next_below(3);
        let seed = rng.next_below(50);
        let run_once = || {
            let (program, memory) = kernels::stream::build(n, reps, seed);
            let (_, memory) = run(&program, memory, 1_000_000);
            (0..n as u64)
                .map(|i| memory.read_f64(kernels::DATA_BASE + i * 8).to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run_once(), run_once());
    }
}

#[test]
fn sortk_always_terminates_and_bubbles_maxima() {
    let mut rng = SplitMix64::new(103);
    for _ in 0..CASES {
        let n = 2 + rng.next_below(62) as usize;
        let passes = 1 + rng.next_below(3);
        let seed = rng.next_below(50);
        let (program, memory) = kernels::sortk::build(n, passes, 1, seed, false);
        let (_, memory) = run(&program, memory, 3_000_000);
        let values: Vec<i64> = (0..n as u64)
            .map(|i| memory.read_u64(kernels::DATA_BASE + i * 8) as i64)
            .collect();
        // After p bubble passes, the top p elements are in final position.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for i in 0..(passes as usize).min(n) {
            assert_eq!(values[n - 1 - i], sorted[n - 1 - i]);
        }
    }
}

#[test]
fn cyclic_permutation_is_always_one_cycle() {
    let mut rng = SplitMix64::new(104);
    for _ in 0..CASES {
        let n = 2 + rng.next_below(398) as usize;
        let seed = rng.next_u64();
        let next = cyclic_permutation(n, seed);
        let mut at = 0usize;
        let mut visited = 0;
        loop {
            at = next[at] as usize;
            visited += 1;
            if at == 0 {
                break;
            }
            assert!(visited <= n, "walk did not close after {n} steps");
        }
        assert_eq!(visited, n);
    }
}

#[test]
fn splitmix_next_below_is_in_range() {
    let mut meta = SplitMix64::new(105);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(999_999);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            assert!(rng.next_below(bound) < bound);
        }
    }
}

#[test]
fn scaling_changes_length_roughly_linearly() {
    let mut rng = SplitMix64::new(106);
    for _ in 0..CASES {
        let factor = 0.2 + 0.8 * rng.next_f64();
        for bench in suite().into_iter().take(4) {
            let base = bench.approx_len() as f64;
            let scaled = bench.scaled(factor).approx_len() as f64;
            let ratio = scaled / base;
            assert!(
                (ratio - factor).abs() < 0.35,
                "{}: ratio {ratio} vs factor {factor}",
                bench.name()
            );
        }
    }
}

#[test]
fn every_kernel_family_is_deterministic_end_to_end() {
    for bench in smarts_workloads::scaled_suite(0.01) {
        let digest = |_: ()| {
            let loaded = bench.load();
            let mut cpu = Cpu::new();
            let mut mem = loaded.memory;
            cpu.run(&loaded.program, &mut mem, u64::MAX).unwrap();
            let mut acc = 0u64;
            for r in 0..32 {
                acc = acc.wrapping_mul(31).wrapping_add(cpu.reg(r));
            }
            (cpu.retired(), acc)
        };
        assert_eq!(digest(()), digest(()), "{} not deterministic", bench.name());
    }
}

//! Property-based tests of the workload generators: every kernel must
//! terminate, be deterministic in its seed, and scale linearly.

use proptest::prelude::*;
use smarts_isa::{Cpu, Memory};
use smarts_workloads::{cyclic_permutation, kernels, suite, SplitMix64};

fn run(program: &smarts_isa::Program, mut memory: Memory, budget: u64) -> (Cpu, Memory) {
    let mut cpu = Cpu::new();
    cpu.run(program, &mut memory, budget).expect("kernel executes");
    assert!(cpu.halted(), "kernel must halt within {budget}");
    (cpu, memory)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chase_terminates_for_any_geometry(
        nodes in 2usize..512,
        steps in 1u64..2000,
        seed in 0u64..100,
    ) {
        let (program, memory) = kernels::chase::build(nodes, steps, seed);
        let (cpu, _) = run(&program, memory, 3 * steps + 100);
        prop_assert_eq!(cpu.retired(), 3 * steps + 3);
    }

    #[test]
    fn stream_is_seed_deterministic(
        n in 1usize..256,
        reps in 1u64..4,
        seed in 0u64..50,
    ) {
        let run_once = || {
            let (program, memory) = kernels::stream::build(n, reps, seed);
            let (_, memory) = run(&program, memory, 1_000_000);
            (0..n as u64).map(|i| memory.read_f64(kernels::DATA_BASE + i * 8).to_bits()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run_once(), run_once());
    }

    #[test]
    fn sortk_always_terminates_and_bubbles_maxima(
        n in 2usize..64,
        passes in 1u64..4,
        seed in 0u64..50,
    ) {
        let (program, memory) = kernels::sortk::build(n, passes, 1, seed, false);
        let (_, memory) = run(&program, memory, 3_000_000);
        let values: Vec<i64> = (0..n as u64)
            .map(|i| memory.read_u64(kernels::DATA_BASE + i * 8) as i64)
            .collect();
        // After p bubble passes, the top p elements are in final position.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for i in 0..(passes as usize).min(n) {
            prop_assert_eq!(values[n - 1 - i], sorted[n - 1 - i]);
        }
    }

    #[test]
    fn cyclic_permutation_is_always_one_cycle(n in 2usize..400, seed: u64) {
        let next = cyclic_permutation(n, seed);
        let mut at = 0usize;
        let mut visited = 0;
        loop {
            at = next[at] as usize;
            visited += 1;
            if at == 0 {
                break;
            }
            prop_assert!(visited <= n, "walk did not close after {n} steps");
        }
        prop_assert_eq!(visited, n);
    }

    #[test]
    fn splitmix_next_below_is_in_range(seed: u64, bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn scaling_changes_length_roughly_linearly(factor in 0.2f64..1.0) {
        for bench in suite().into_iter().take(4) {
            let base = bench.approx_len() as f64;
            let scaled = bench.scaled(factor).approx_len() as f64;
            let ratio = scaled / base;
            prop_assert!(
                (ratio - factor).abs() < 0.35,
                "{}: ratio {ratio} vs factor {factor}",
                bench.name()
            );
        }
    }
}

#[test]
fn every_kernel_family_is_deterministic_end_to_end() {
    for bench in smarts_workloads::scaled_suite(0.01) {
        let digest = |_: ()| {
            let loaded = bench.load();
            let mut cpu = Cpu::new();
            let mut mem = loaded.memory;
            cpu.run(&loaded.program, &mut mem, u64::MAX).unwrap();
            let mut acc = 0u64;
            for r in 0..32 {
                acc = acc.wrapping_mul(31).wrapping_add(cpu.reg(r));
            }
            (cpu.retired(), acc)
        };
        assert_eq!(digest(()), digest(()), "{} not deterministic", bench.name());
    }
}

//! Workload resolution per instruction-set frontend.
//!
//! The store/replay pipeline persists only a benchmark *name* and *scale*
//! in checkpoint-store metadata; replay re-derives the program and initial
//! memory from them. [`Frontend`] is the trait that makes this resolution
//! step frontend-generic: each [`Isa`] that can act as a pipeline frontend
//! knows how to turn `(name, scale)` back into a loaded workload.
//!
//! * [`smarts_isa::BuiltinIsa`] resolves against the kernel suite
//!   ([`crate::find`]), exactly as the pre-frontend code did.
//! * [`smarts_isa::RiscIsa`] resolves the same names, then re-encodes the
//!   assembled program into its fixed 32-bit binary form; kernels that use
//!   instructions outside the compact set are rejected (see
//!   [`risc_suite`] for the encodable subset).
//! * [`smarts_isa::TraceIsa`] treats the name as a path to a
//!   CRC-checked trace file and ignores `scale` (a recorded trace has a
//!   fixed length).

use crate::suite::Benchmark;
use crate::{find, suite};
use smarts_isa::{BuiltinIsa, Isa, Memory, RiscIsa, RiscProgram, TraceIsa, TraceProgram};
use std::fmt;
use std::path::Path;

/// A workload ready for execution under frontend `I`: program text in the
/// frontend's own representation plus initialized memory.
pub struct Loaded<I: Isa> {
    /// The workload's name (a suite benchmark name, or a trace path for
    /// the trace frontend).
    pub name: String,
    /// Program text in `I`'s representation.
    pub program: I::Program,
    /// Initial memory image (data segments).
    pub memory: Memory,
}

/// A suite benchmark loaded for the built-in frontend.
pub type LoadedBenchmark = Loaded<BuiltinIsa>;

impl<I: Isa> Clone for Loaded<I> {
    fn clone(&self) -> Self {
        Loaded {
            name: self.name.clone(),
            program: self.program.clone(),
            memory: self.memory.clone(),
        }
    }
}

impl<I: Isa> fmt::Debug for Loaded<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Loaded")
            .field("isa", &I::NAME)
            .field("name", &self.name)
            .field("program", &self.program)
            .finish_non_exhaustive()
    }
}

/// An [`Isa`] that can resolve pipeline workloads by `(name, scale)`.
///
/// Resolution must be deterministic: replaying a checkpoint store resolves
/// the same `(name, scale)` recorded at save time and assumes the result
/// is the identical program and initial memory.
pub trait Frontend: Isa {
    /// Resolves a workload name at `scale` into a loaded program.
    ///
    /// # Errors
    ///
    /// A human-readable message when the name is unknown to this frontend
    /// or the workload cannot be represented in it.
    fn resolve(name: &str, scale: f64) -> Result<Loaded<Self>, String>;

    /// Approximate dynamic instruction count of the resolved workload,
    /// used to derive sampling parameters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Frontend::resolve`].
    fn approx_len(name: &str, scale: f64) -> Result<u64, String>;
}

fn find_scaled(name: &str, scale: f64) -> Result<Benchmark, String> {
    if scale <= 0.0 {
        return Err(format!("scale {scale} is not positive"));
    }
    find(name)
        .map(|b| b.scaled(scale))
        .ok_or_else(|| format!("unknown benchmark: {name}"))
}

impl Frontend for BuiltinIsa {
    fn resolve(name: &str, scale: f64) -> Result<Loaded<Self>, String> {
        Ok(find_scaled(name, scale)?.load())
    }

    fn approx_len(name: &str, scale: f64) -> Result<u64, String> {
        Ok(find_scaled(name, scale)?.approx_len())
    }
}

impl Frontend for RiscIsa {
    fn resolve(name: &str, scale: f64) -> Result<Loaded<Self>, String> {
        let loaded = find_scaled(name, scale)?.load();
        let program = RiscProgram::encode_program(&loaded.program).ok_or_else(|| {
            format!("benchmark {name} uses instructions outside the risc encoding")
        })?;
        Ok(Loaded {
            name: loaded.name,
            program,
            memory: loaded.memory,
        })
    }

    fn approx_len(name: &str, scale: f64) -> Result<u64, String> {
        // The encoding is 1:1 with the built-in program, so the length
        // model carries over; still reject non-encodable workloads here so
        // both entry points agree on which names this frontend accepts.
        Self::resolve(name, scale)?;
        Ok(find_scaled(name, scale)?.approx_len())
    }
}

impl Frontend for TraceIsa {
    fn resolve(name: &str, _scale: f64) -> Result<Loaded<Self>, String> {
        let program = TraceProgram::load(Path::new(name))
            .map_err(|e| format!("cannot load trace {name}: {e}"))?;
        Ok(Loaded {
            name: name.to_string(),
            program,
            memory: Memory::new(),
        })
    }

    fn approx_len(name: &str, scale: f64) -> Result<u64, String> {
        Ok(Self::resolve(name, scale)?.program.len())
    }
}

/// The subset of the default suite whose assembled programs fit the
/// compact RISC binary encoding (no FP opcodes, immediates within field
/// widths) at default scale.
pub fn risc_suite() -> Vec<Benchmark> {
    suite()
        .into_iter()
        .filter(|b| RiscProgram::encode_program(&b.load().program).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_isa::Cpu;

    #[test]
    fn builtin_resolve_matches_direct_load() {
        let via_trait = BuiltinIsa::resolve("chase-1", 0.05).unwrap();
        let direct = find("chase-1").unwrap().scaled(0.05).load();
        assert_eq!(via_trait.name, direct.name);
        assert_eq!(via_trait.program, direct.program);
        assert_eq!(
            BuiltinIsa::approx_len("chase-1", 0.05).unwrap(),
            find("chase-1").unwrap().scaled(0.05).approx_len()
        );
        assert!(BuiltinIsa::resolve("no-such", 1.0).is_err());
        assert!(BuiltinIsa::resolve("chase-1", 0.0).is_err());
    }

    #[test]
    fn risc_suite_is_nonempty_and_resolves() {
        let subset = risc_suite();
        assert!(
            !subset.is_empty(),
            "at least one suite kernel must fit the risc encoding"
        );
        for bench in &subset {
            RiscIsa::resolve(bench.name(), 0.01).unwrap();
        }
        // FP-heavy kernels are expected to fall outside the compact set.
        assert!(RiscIsa::resolve("fpchain-1", 0.01).is_err());
        assert!(RiscIsa::approx_len("fpchain-1", 0.01).is_err());
    }

    #[test]
    fn risc_resolution_replays_builtin_stream() {
        let bench = &risc_suite()[0];
        let name = bench.name().to_string();
        let b = BuiltinIsa::resolve(&name, 0.01).unwrap();
        let r = RiscIsa::resolve(&name, 0.01).unwrap();
        assert_eq!(
            RiscIsa::approx_len(&name, 0.01).unwrap(),
            BuiltinIsa::approx_len(&name, 0.01).unwrap()
        );

        let mut bc = Cpu::new();
        let mut bm = b.memory.clone();
        let mut rc = RiscIsa::new_cpu();
        let mut rm = r.memory.clone();
        while !bc.halted() {
            let want = BuiltinIsa::step(&mut bc, &b.program, &mut bm).unwrap();
            let got = RiscIsa::step(&mut rc, &r.program, &mut rm).unwrap();
            assert_eq!(want, got);
        }
        assert!(RiscIsa::halted(&rc));
    }

    #[test]
    fn trace_resolution_round_trips_a_recorded_stream() {
        let b = BuiltinIsa::resolve("loopy-1", 0.001).unwrap();
        let mut cpu = Cpu::new();
        let mut mem = b.memory.clone();
        let mut records = Vec::new();
        while !cpu.halted() {
            records.push(cpu.step(&b.program, &mut mem).unwrap());
        }

        let path = std::env::temp_dir().join(format!(
            "smarts_frontend_rt_{}.smartstr",
            std::process::id()
        ));
        smarts_isa::write_trace(&path, "loopy-1", &records).unwrap();
        let loaded = TraceIsa::resolve(path.to_str().unwrap(), 1.0).unwrap();
        assert_eq!(loaded.program.records(), records.as_slice());
        assert_eq!(
            TraceIsa::approx_len(path.to_str().unwrap(), 1.0).unwrap(),
            records.len() as u64
        );
        std::fs::remove_file(&path).ok();

        assert!(TraceIsa::resolve("/no/such/file.smartstr", 1.0).is_err());
    }
}

//! Small deterministic generators used for data initialization.
//!
//! Workload construction must be reproducible from a seed alone, so the
//! crate uses splitmix64 directly instead of threading a `rand` RNG
//! through every kernel builder (the `rand` dependency is used where
//! distributions matter, e.g. shuffles).

/// Splitmix64: a fast, well-distributed 64-bit mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniformly random f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random cyclic permutation of `0..n` (a single cycle visiting every
/// element), used to build pointer-chase chains with no short cycles.
///
/// Uses Sattolo's algorithm.
pub fn cyclic_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n >= 2, "a cycle needs at least two elements");
    let mut items: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(seed);
    // Sattolo: shuffle into a single cycle.
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64) as usize;
        items.swap(i, j);
    }
    // items is now a cyclic order; produce next[] mapping.
    let mut next = vec![0u32; n];
    for w in 0..n {
        next[items[w] as usize] = items[(w + 1) % n];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn cyclic_permutation_is_one_cycle() {
        for seed in [1, 2, 42] {
            let n = 257;
            let next = cyclic_permutation(n, seed);
            let mut seen = vec![false; n];
            let mut at = 0usize;
            for _ in 0..n {
                assert!(!seen[at], "revisited {at} before covering the cycle");
                seen[at] = true;
                at = next[at] as usize;
            }
            assert_eq!(at, 0, "walk returns to the start after n steps");
            assert!(seen.iter().all(|&s| s));
        }
    }
}

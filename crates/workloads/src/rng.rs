//! Small deterministic generators used for data initialization.
//!
//! Workload construction must be reproducible from a seed alone, and the
//! workspace builds offline, so the crate implements splitmix64 plus the
//! few distributions kernels need (shuffles, weighted choice) directly
//! instead of depending on `rand`.

/// Splitmix64: a fast, well-distributed 64-bit mixer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniformly random f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks an index in `0..weights.len()` with probability proportional
    /// to its weight. Weights must be non-negative with a positive sum.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with a positive sum"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        // Rounding can push the scan past the end; the last positive
        // weight is the correct owner of the residual mass.
        weights.iter().rposition(|&w| w > 0.0).unwrap()
    }
}

/// A random cyclic permutation of `0..n` (a single cycle visiting every
/// element), used to build pointer-chase chains with no short cycles.
///
/// Uses Sattolo's algorithm.
pub fn cyclic_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n >= 2, "a cycle needs at least two elements");
    let mut items: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(seed);
    // Sattolo: shuffle into a single cycle.
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64) as usize;
        items.swap(i, j);
    }
    // items is now a cyclic order; produce next[] mapping.
    let mut next = vec![0u32; n];
    for w in 0..n {
        next[items[w] as usize] = items[(w + 1) % n];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(9);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(items, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = SplitMix64::new(9);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [7u32];
        rng.shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..1000 {
            let i = rng.weighted_choice(&[0.0, 3.0, 0.0, 1.0, 0.0]);
            assert!(i == 1 || i == 3, "picked zero-weight index {i}");
        }
    }

    #[test]
    fn weighted_choice_tracks_the_distribution() {
        let mut rng = SplitMix64::new(13);
        let weights = [1.0, 3.0];
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio} far from 3");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_choice_rejects_all_zero_weights() {
        SplitMix64::new(1).weighted_choice(&[0.0, 0.0]);
    }

    #[test]
    fn cyclic_permutation_is_one_cycle() {
        for seed in [1, 2, 42] {
            let n = 257;
            let next = cyclic_permutation(n, seed);
            let mut seen = vec![false; n];
            let mut at = 0usize;
            for _ in 0..n {
                assert!(!seen[at], "revisited {at} before covering the cycle");
                seen[at] = true;
                at = next[at] as usize;
            }
            assert_eq!(at, 0, "walk returns to the start after n steps");
            assert!(seen.iter().all(|&s| s));
        }
    }
}

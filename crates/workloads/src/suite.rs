//! The benchmark suite: named kernel/input combinations standing in for
//! the paper's 41 SPEC2K benchmark/input pairs.

use crate::frontend::LoadedBenchmark;
use crate::kernels;
use std::fmt;

/// Kernel selection plus all of its input parameters.
///
/// Each variant corresponds to one kernel module in [`crate::kernels`];
/// the fields are the knobs the suite varies across "inputs".
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // parameter names match the kernel builders
pub enum Spec {
    Stream {
        n: usize,
        reps: u64,
        seed: u64,
    },
    Mtx {
        n: usize,
        reps: u64,
        seed: u64,
    },
    Chase {
        nodes: usize,
        steps: u64,
        seed: u64,
    },
    HashProbe {
        table_words: usize,
        ops: u64,
        seed: u64,
    },
    Branchy {
        iters: u64,
        seed: u64,
    },
    SortK {
        n: usize,
        passes: u64,
        reps: u64,
        seed: u64,
        presorted: bool,
    },
    FpChain {
        iters: u64,
    },
    Phased {
        small: usize,
        large: usize,
        steps_per_phase: u64,
        phases: u64,
        seed: u64,
    },
    Loopy {
        iters: u64,
    },
    Mixed {
        iters: u64,
        seed: u64,
    },
    Rle {
        n: usize,
        reps: u64,
        mean_run_len: usize,
        seed: u64,
    },
    NBody {
        n: usize,
        steps: u64,
        seed: u64,
    },
}

/// A named, loadable benchmark: the unit the SMARTS driver and all
/// experiment binaries operate on.
///
/// # Examples
///
/// ```
/// use smarts_workloads::suite;
///
/// let bench = &suite()[0];
/// let loaded = bench.load();
/// assert!(loaded.program.len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Benchmark {
    name: String,
    spec: Spec,
}

impl Benchmark {
    /// Creates a benchmark from a name and spec.
    pub fn new(name: impl Into<String>, spec: Spec) -> Self {
        Benchmark {
            name: name.into(),
            spec,
        }
    }

    /// The benchmark's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The benchmark's kernel/input specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Approximate dynamic instruction count (from the kernel length
    /// models; within a few percent of the true count).
    pub fn approx_len(&self) -> u64 {
        match &self.spec {
            Spec::Stream { n, reps, .. } => reps * (10 * *n as u64 + 6),
            Spec::Mtx { n, reps, .. } => {
                let n = *n as u64;
                reps * (8 * n * n * n + 13 * n * n + 6 * n + 2)
            }
            Spec::Chase { steps, .. } => 3 * steps,
            Spec::HashProbe { ops, .. } => 13 * ops,
            Spec::Branchy { iters, .. } => 19 * iters,
            Spec::SortK {
                n,
                passes,
                reps,
                presorted,
                ..
            } => {
                // Scramble: 6 (presorted) or 9 (LCG) instructions/element;
                // compare body: 6 without a swap, 8 with one (~half early on).
                let scramble = if *presorted { 6 } else { 9 } * *n as u64;
                let per_compare = if *presorted { 6 } else { 7 };
                reps * (scramble + passes * per_compare * (*n as u64 - 1))
            }
            Spec::FpChain { iters } => 5 * iters,
            Spec::Phased {
                steps_per_phase,
                phases,
                ..
            } => phases * (3 * steps_per_phase + 7),
            Spec::Loopy { iters } => 6 * iters,
            Spec::Mixed { iters, .. } => 490 * iters,
            Spec::Rle { n, reps, .. } => reps * 8 * *n as u64,
            Spec::NBody { n, steps, .. } => steps * 14 * (*n as u64) * (*n as u64),
        }
    }

    /// Returns a copy with the benchmark's repetition knob multiplied by
    /// `factor` (clamped to at least one unit of work), leaving data-set
    /// sizes unchanged.
    pub fn scaled(&self, factor: f64) -> Benchmark {
        assert!(factor > 0.0, "scale factor must be positive");
        let mul = |x: u64| ((x as f64 * factor).round() as u64).max(1);
        let spec = match self.spec.clone() {
            Spec::Stream { n, reps, seed } => Spec::Stream {
                n,
                reps: mul(reps),
                seed,
            },
            Spec::Mtx { n, reps, seed } => Spec::Mtx {
                n,
                reps: mul(reps),
                seed,
            },
            Spec::Chase { nodes, steps, seed } => Spec::Chase {
                nodes,
                steps: mul(steps),
                seed,
            },
            Spec::HashProbe {
                table_words,
                ops,
                seed,
            } => Spec::HashProbe {
                table_words,
                ops: mul(ops),
                seed,
            },
            Spec::Branchy { iters, seed } => Spec::Branchy {
                iters: mul(iters),
                seed,
            },
            Spec::SortK {
                n,
                passes,
                reps,
                seed,
                presorted,
            } => Spec::SortK {
                n,
                passes,
                reps: mul(reps),
                seed,
                presorted,
            },
            Spec::FpChain { iters } => Spec::FpChain { iters: mul(iters) },
            Spec::Phased {
                small,
                large,
                steps_per_phase,
                phases,
                seed,
            } => Spec::Phased {
                small,
                large,
                steps_per_phase,
                phases: mul(phases),
                seed,
            },
            Spec::Loopy { iters } => Spec::Loopy { iters: mul(iters) },
            Spec::Mixed { iters, seed } => Spec::Mixed {
                iters: mul(iters),
                seed,
            },
            Spec::Rle {
                n,
                reps,
                mean_run_len,
                seed,
            } => Spec::Rle {
                n,
                reps: mul(reps),
                mean_run_len,
                seed,
            },
            Spec::NBody { n, steps, seed } => Spec::NBody {
                n,
                steps: mul(steps),
                seed,
            },
        };
        Benchmark {
            name: self.name.clone(),
            spec,
        }
    }

    /// Assembles the program and initializes memory.
    pub fn load(&self) -> LoadedBenchmark {
        let (program, memory) = match &self.spec {
            Spec::Stream { n, reps, seed } => kernels::stream::build(*n, *reps, *seed),
            Spec::Mtx { n, reps, seed } => kernels::mtx::build(*n, *reps, *seed),
            Spec::Chase { nodes, steps, seed } => kernels::chase::build(*nodes, *steps, *seed),
            Spec::HashProbe {
                table_words,
                ops,
                seed,
            } => kernels::hashp::build(*table_words, *ops, *seed),
            Spec::Branchy { iters, seed } => kernels::branchy::build(*iters, *seed),
            Spec::SortK {
                n,
                passes,
                reps,
                seed,
                presorted,
            } => kernels::sortk::build(*n, *passes, *reps, *seed, *presorted),
            Spec::FpChain { iters } => kernels::fpchain::build(*iters),
            Spec::Phased {
                small,
                large,
                steps_per_phase,
                phases,
                seed,
            } => kernels::phased::build(*small, *large, *steps_per_phase, *phases, *seed),
            Spec::Loopy { iters } => kernels::loopy::build(*iters),
            Spec::Mixed { iters, seed } => kernels::mixed::build(*iters, *seed),
            Spec::Rle {
                n,
                reps,
                mean_run_len,
                seed,
            } => kernels::rle::build(*n, *reps, *mean_run_len, *seed),
            Spec::NBody { n, steps, seed } => kernels::nbody::build(*n, *steps, *seed),
        };
        LoadedBenchmark {
            name: self.name.clone(),
            program,
            memory,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (~{:.1}M instructions)",
            self.name,
            self.approx_len() as f64 / 1e6
        )
    }
}

/// The default suite: 18 benchmark/input combinations spanning the CPI
/// and variability regimes of the paper's SPEC2K study, each a few
/// million dynamic instructions at default scale.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "stream-1",
            Spec::Stream {
                n: 65_536,
                reps: 6,
                seed: 101,
            },
        ),
        Benchmark::new(
            "stream-2",
            Spec::Stream {
                n: 2_048,
                reps: 190,
                seed: 102,
            },
        ),
        Benchmark::new(
            "mtx-1",
            Spec::Mtx {
                n: 48,
                reps: 4,
                seed: 201,
            },
        ),
        Benchmark::new(
            "mtx-2",
            Spec::Mtx {
                n: 20,
                reps: 55,
                seed: 202,
            },
        ),
        Benchmark::new(
            "chase-1",
            Spec::Chase {
                nodes: 262_144,
                steps: 400_000,
                seed: 301,
            },
        ),
        Benchmark::new(
            "chase-2",
            Spec::Chase {
                nodes: 8_192,
                steps: 1_000_000,
                seed: 302,
            },
        ),
        Benchmark::new(
            "hashp-1",
            Spec::HashProbe {
                table_words: 1 << 21,
                ops: 250_000,
                seed: 401,
            },
        ),
        Benchmark::new(
            "hashp-2",
            Spec::HashProbe {
                table_words: 1 << 15,
                ops: 300_000,
                seed: 402,
            },
        ),
        Benchmark::new(
            "branchy-1",
            Spec::Branchy {
                iters: 220_000,
                seed: 501,
            },
        ),
        Benchmark::new(
            "branchy-2",
            Spec::Branchy {
                iters: 220_000,
                seed: 502,
            },
        ),
        Benchmark::new(
            "sortk-1",
            Spec::SortK {
                n: 2_048,
                passes: 40,
                reps: 5,
                seed: 601,
                presorted: false,
            },
        ),
        Benchmark::new(
            "sortk-2",
            Spec::SortK {
                n: 512,
                passes: 30,
                reps: 30,
                seed: 602,
                presorted: false,
            },
        ),
        Benchmark::new(
            "sortk-3",
            Spec::SortK {
                n: 2_048,
                passes: 200,
                reps: 1,
                seed: 603,
                presorted: true,
            },
        ),
        Benchmark::new("fpchain-1", Spec::FpChain { iters: 500_000 }),
        Benchmark::new(
            "phased-1",
            Spec::Phased {
                small: 64,
                large: 262_144,
                steps_per_phase: 100_000,
                phases: 14,
                seed: 701,
            },
        ),
        Benchmark::new(
            "phased-2",
            Spec::Phased {
                small: 64,
                large: 262_144,
                steps_per_phase: 20_000,
                phases: 70,
                seed: 702,
            },
        ),
        Benchmark::new("loopy-1", Spec::Loopy { iters: 600_000 }),
        Benchmark::new(
            "mixed-1",
            Spec::Mixed {
                iters: 9_000,
                seed: 801,
            },
        ),
    ]
}

/// The extended suite: the default 18 combinations plus a second wave of
/// inputs, widening coverage toward the paper's 41 benchmark/input
/// combinations. The recorded experiments (EXPERIMENTS.md) use
/// [`suite`]; the extension exists for broader studies.
pub fn extended_suite() -> Vec<Benchmark> {
    let mut all = suite();
    all.extend([
        Benchmark::new(
            "stream-3",
            Spec::Stream {
                n: 16_384,
                reps: 24,
                seed: 103,
            },
        ),
        Benchmark::new(
            "mtx-3",
            Spec::Mtx {
                n: 64,
                reps: 2,
                seed: 203,
            },
        ),
        Benchmark::new(
            "chase-3",
            Spec::Chase {
                nodes: 65_536,
                steps: 500_000,
                seed: 303,
            },
        ),
        Benchmark::new(
            "hashp-3",
            Spec::HashProbe {
                table_words: 1 << 18,
                ops: 280_000,
                seed: 403,
            },
        ),
        Benchmark::new(
            "branchy-3",
            Spec::Branchy {
                iters: 220_000,
                seed: 503,
            },
        ),
        Benchmark::new(
            "sortk-4",
            Spec::SortK {
                n: 8_192,
                passes: 12,
                reps: 4,
                seed: 604,
                presorted: false,
            },
        ),
        Benchmark::new("fpchain-2", Spec::FpChain { iters: 900_000 }),
        Benchmark::new(
            "phased-3",
            Spec::Phased {
                small: 2_048,
                large: 262_144,
                steps_per_phase: 50_000,
                phases: 28,
                seed: 703,
            },
        ),
        Benchmark::new("loopy-2", Spec::Loopy { iters: 750_000 }),
        Benchmark::new(
            "mixed-2",
            Spec::Mixed {
                iters: 9_000,
                seed: 802,
            },
        ),
        Benchmark::new(
            "rle-1",
            Spec::Rle {
                n: 65_536,
                reps: 7,
                mean_run_len: 8,
                seed: 901,
            },
        ),
        Benchmark::new(
            "rle-2",
            Spec::Rle {
                n: 65_536,
                reps: 7,
                mean_run_len: 1,
                seed: 902,
            },
        ),
        Benchmark::new(
            "nbody-1",
            Spec::NBody {
                n: 160,
                steps: 10,
                seed: 1001,
            },
        ),
        Benchmark::new(
            "nbody-2",
            Spec::NBody {
                n: 48,
                steps: 110,
                seed: 1002,
            },
        ),
    ]);
    all
}

/// The suite with every benchmark's repetition knob scaled by `factor`.
///
/// Use small factors (e.g. 0.05) for fast tests and large ones for more
/// statistically demanding experiments.
pub fn scaled_suite(factor: f64) -> Vec<Benchmark> {
    suite().iter().map(|b| b.scaled(factor)).collect()
}

/// Looks up a benchmark by name in the extended suite.
pub fn find(name: &str) -> Option<Benchmark> {
    extended_suite().into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_isa::Cpu;

    #[test]
    fn suite_names_are_unique() {
        let suite = suite();
        let mut names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        assert!(
            before >= 15,
            "suite should span many benchmark/input combos"
        );
    }

    #[test]
    fn find_locates_by_name() {
        assert!(find("chase-1").is_some());
        assert!(find("stream-3").is_some(), "extension inputs are findable");
        assert!(find("no-such-bench").is_none());
    }

    #[test]
    fn extended_suite_supersets_the_default() {
        let base = suite();
        let extended = extended_suite();
        assert!(extended.len() >= base.len() + 14);
        for bench in &base {
            assert!(extended.iter().any(|b| b.name() == bench.name()));
        }
        let mut names: Vec<&str> = extended.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "extended names are unique");
    }

    #[test]
    fn extension_inputs_run_to_halt_at_tiny_scale() {
        for bench in extended_suite() {
            if suite().iter().any(|b| b.name() == bench.name()) {
                continue;
            }
            let bench = bench.scaled(0.01);
            let loaded = bench.load();
            let mut cpu = Cpu::new();
            let mut mem = loaded.memory;
            cpu.run(&loaded.program, &mut mem, bench.approx_len() * 3 + 10_000)
                .unwrap();
            assert!(cpu.halted(), "{} did not halt", bench.name());
        }
    }

    #[test]
    fn approx_len_matches_execution_at_small_scale() {
        // Validate the length model against real execution for every
        // kernel family, at 1/100 scale to keep the test fast.
        for bench in scaled_suite(0.01) {
            let loaded = bench.load();
            let mut cpu = Cpu::new();
            let mut mem = loaded.memory;
            let budget = bench.approx_len() * 3 + 10_000;
            cpu.run(&loaded.program, &mut mem, budget).unwrap();
            assert!(
                cpu.halted(),
                "{} did not halt within {budget}",
                bench.name()
            );
            let actual = cpu.retired();
            let approx = bench.approx_len();
            let ratio = actual as f64 / approx as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: approx {approx} vs actual {actual} (ratio {ratio:.2})",
                bench.name()
            );
        }
    }

    #[test]
    fn default_suite_lengths_are_laptop_scale() {
        for bench in suite() {
            let len = bench.approx_len();
            assert!(
                (500_000..30_000_000).contains(&len),
                "{}: {len} instructions",
                bench.name()
            );
        }
    }

    #[test]
    fn scaled_preserves_name_and_dataset() {
        let b = find("chase-1").unwrap();
        let s = b.scaled(0.5);
        assert_eq!(s.name(), "chase-1");
        match (b.spec(), s.spec()) {
            (
                Spec::Chase {
                    nodes: n1,
                    steps: s1,
                    ..
                },
                Spec::Chase {
                    nodes: n2,
                    steps: s2,
                    ..
                },
            ) => {
                assert_eq!(n1, n2, "dataset size unchanged");
                assert_eq!(*s2, s1 / 2);
            }
            _ => panic!("spec variant changed"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = find("loopy-1").unwrap().scaled(0.0);
    }
}

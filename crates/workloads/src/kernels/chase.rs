//! `chase` — dependent pointer chasing over a randomized linked list, in
//! the spirit of `mcf`: every step is a load whose address depends on the
//! previous load.
//!
//! With the node pool sized beyond L2, every step misses the whole
//! hierarchy and CPI is dominated by serialized memory latency; sized to
//! fit L2 (but not L1) it exercises the mid-latency regime.

use super::DATA_BASE;
use crate::rng::cyclic_permutation;
use smarts_isa::{reg, Asm, Memory, Program};

/// Bytes per list node (one cache line, so distinct nodes never share a
/// line).
pub const NODE_BYTES: u64 = 64;

/// Builds the chase kernel: `steps` dependent loads over a single-cycle
/// random chain of `nodes` nodes.
///
/// Dynamic length ≈ `3 · steps` instructions.
///
/// # Panics
///
/// Panics if `nodes < 2` or `steps` is zero.
pub fn build(nodes: usize, steps: u64, seed: u64) -> (Program, Memory) {
    assert!(nodes >= 2 && steps > 0);
    let mut memory = Memory::new();
    let next = cyclic_permutation(nodes, seed);
    for (i, &succ) in next.iter().enumerate() {
        let addr = DATA_BASE + i as u64 * NODE_BYTES;
        let succ_addr = DATA_BASE + succ as u64 * NODE_BYTES;
        memory.write_u64(addr, succ_addr);
    }

    let mut a = Asm::new();
    a.li(reg::S0, DATA_BASE as i64);
    a.li(reg::T1, steps as i64);
    let top = a.label();
    a.bind(top).expect("label binds once");
    a.ld(reg::S0, reg::S0, 0);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();

    (a.finish().expect("chase kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn walks_the_full_cycle_back_to_head() {
        let nodes = 128;
        let (program, memory) = build(nodes, nodes as u64, 9);
        let (cpu, _) = run_to_halt(&program, memory, 10_000).unwrap();
        // After exactly `nodes` steps a cyclic permutation returns to the
        // head node.
        assert_eq!(cpu.reg(reg::S0), DATA_BASE);
    }

    #[test]
    fn never_leaves_the_node_pool() {
        let nodes = 64;
        let (program, memory) = build(nodes, 1000, 5);
        let (cpu, _) = run_to_halt(&program, memory, 10_000).unwrap();
        let end = DATA_BASE + nodes as u64 * NODE_BYTES;
        let at = cpu.reg(reg::S0);
        assert!((DATA_BASE..end).contains(&at));
        assert_eq!(at % NODE_BYTES, 0, "lands on node boundaries");
    }

    #[test]
    fn dynamic_length_matches_model() {
        let (program, memory) = build(16, 500, 1);
        let (cpu, _) = run_to_halt(&program, memory, 10_000).unwrap();
        assert_eq!(cpu.retired(), 3 * 500 + 3);
    }
}

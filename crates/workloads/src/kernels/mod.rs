//! Hand-assembled workload kernels.
//!
//! Each kernel module exposes a `build` function returning the assembled
//! [`Program`](smarts_isa::Program) and an initialized
//! [`Memory`](smarts_isa::Memory) image. All kernels terminate via `halt`
//! after a parameterized amount of work, and all randomness is seeded.

pub mod branchy;
pub mod chase;
pub mod fpchain;
pub mod hashp;
pub mod loopy;
pub mod mixed;
pub mod mtx;
pub mod nbody;
pub mod phased;
pub mod rle;
pub mod sortk;
pub mod stream;

/// Base address of kernel data segments, far from the text section.
pub const DATA_BASE: u64 = 0x1000_0000;

#[cfg(test)]
pub(crate) mod testutil {
    use smarts_isa::{Cpu, IsaError, Memory, Program};

    /// Runs a program to completion, panicking if it does not halt within
    /// `max_insts` instructions. Returns the CPU and memory at halt.
    pub fn run_to_halt(
        program: &Program,
        mut memory: Memory,
        max_insts: u64,
    ) -> Result<(Cpu, Memory), IsaError> {
        let mut cpu = Cpu::new();
        let executed = cpu.run(program, &mut memory, max_insts)?;
        assert!(
            cpu.halted(),
            "kernel did not halt within {executed} instructions"
        );
        Ok((cpu, memory))
    }
}

//! `nbody` — all-pairs gravitational accumulation, in the spirit of
//! FP-heavy SPEC codes with O(n²) inner loops (`art`, `galgel`): dense
//! FP multiply/divide with square roots, strided loads, and very regular
//! control flow.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the n-body kernel: `steps` iterations of the all-pairs force
/// accumulation over `n` bodies in one dimension (position + mass per
/// body; forces accumulate into a third array).
///
/// Dynamic length ≈ `steps · 14·n²` instructions.
///
/// # Panics
///
/// Panics if `n < 2` or `steps` is zero.
pub fn build(n: usize, steps: u64, seed: u64) -> (Program, Memory) {
    assert!(n >= 2 && steps > 0);
    let pos = DATA_BASE;
    let mass = pos + n as u64 * 8;
    let force = mass + n as u64 * 8;

    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..n as u64 {
        memory.write_f64(pos + i * 8, rng.next_f64() * 100.0);
        memory.write_f64(mass + i * 8, 0.5 + rng.next_f64());
    }

    let mut a = Asm::new();
    a.li(reg::S7, steps as i64);
    a.fli(5, 1e-3); // softening term to avoid division blow-ups
    let step_top = a.label();
    a.bind(step_top).expect("label binds once");
    // Outer loop over bodies i: s0 = i countdown, t0 = &pos[i] cursor,
    // t4 = &force[i] cursor.
    a.li(reg::S0, n as i64);
    a.li(reg::T0, pos as i64);
    a.li(reg::T4, force as i64);
    let i_top = a.label();
    a.bind(i_top).expect("label binds once");
    a.fld(0, reg::T0, 0); // xi
    a.fli(1, 0.0); // accumulated force
                   // Inner loop over bodies j: s1 = j countdown, t1/t2 = pos/mass cursors.
    a.li(reg::S1, n as i64);
    a.li(reg::T1, pos as i64);
    a.li(reg::T2, mass as i64);
    let j_top = a.label();
    a.bind(j_top).expect("label binds once");
    a.fld(2, reg::T1, 0); // xj
    a.fld(3, reg::T2, 0); // mj
    a.fsub(2, 2, 0); // dx
    a.fmul(4, 2, 2); // dx²
    a.fadd(4, 4, 5); // dx² + ε
    a.fdiv(3, 3, 4); // mj / (dx² + ε)
    a.fmul(3, 3, 2); // · dx  (direction)
    a.fadd(1, 1, 3); // accumulate
    a.addi(reg::T1, reg::T1, 8);
    a.addi(reg::T2, reg::T2, 8);
    a.addi(reg::S1, reg::S1, -1);
    a.bnez(reg::S1, j_top);
    a.fsd(1, reg::T4, 0);
    a.addi(reg::T0, reg::T0, 8);
    a.addi(reg::T4, reg::T4, 8);
    a.addi(reg::S0, reg::S0, -1);
    a.bnez(reg::S0, i_top);
    a.addi(reg::S7, reg::S7, -1);
    a.bnez(reg::S7, step_top);
    a.halt();

    (a.finish().expect("nbody kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn forces_match_a_rust_reference() {
        let n = 12;
        let (program, memory) = build(n, 1, 5);
        let pos_base = DATA_BASE;
        let mass_base = pos_base + n as u64 * 8;
        let force_base = mass_base + n as u64 * 8;
        let pos: Vec<f64> = (0..n as u64)
            .map(|i| memory.read_f64(pos_base + i * 8))
            .collect();
        let mass: Vec<f64> = (0..n as u64)
            .map(|i| memory.read_f64(mass_base + i * 8))
            .collect();
        let (_, memory) = run_to_halt(&program, memory, 100_000).unwrap();
        for i in 0..n {
            let mut expect = 0.0;
            for j in 0..n {
                let dx = pos[j] - pos[i];
                expect += mass[j] / (dx * dx + 1e-3) * dx;
            }
            let got = memory.read_f64(force_base + i as u64 * 8);
            assert!(
                (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "force[{i}] = {got}, want {expect}"
            );
        }
    }

    #[test]
    fn symmetric_pair_pulls_in_opposite_directions() {
        // With two equal-mass bodies, forces are equal and opposite.
        let (program, memory) = build(2, 1, 9);
        let force_base = DATA_BASE + 2 * 2 * 8;
        let (_, memory) = run_to_halt(&program, memory, 10_000).unwrap();
        let f0 = memory.read_f64(force_base);
        let f1 = memory.read_f64(force_base + 8);
        // Equal masses are not guaranteed by the seed, so check signs only.
        assert!(f0 * f1 <= 0.0, "forces {f0} and {f1} must oppose");
    }

    #[test]
    fn dynamic_length_matches_model() {
        let n = 10u64;
        let (program, memory) = build(n as usize, 2, 1);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        let approx = 2 * 14 * n * n;
        let ratio = cpu.retired() as f64 / approx as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }
}

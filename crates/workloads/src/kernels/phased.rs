//! `phased` — alternating cache-resident and cache-hostile pointer-chase
//! phases executed by the *same static code*, in the spirit of `gcc-2`'s
//! behaviour in the paper's Section 5.3.
//!
//! Both phases run the identical inner basic block; only the data region
//! differs (a small chain that fits L1 versus a huge chain that misses
//! L2). Basic-block-vector profiles of the two phases are therefore
//! nearly identical while CPI differs by an order of magnitude — the
//! exact failure mode the paper demonstrates for SimPoint, and a high-
//! variance stress case (`ammp`/`vpr`-like) for Figure 2/6.

use super::DATA_BASE;
use crate::kernels::chase::NODE_BYTES;
use crate::rng::cyclic_permutation;
use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the phased kernel: `phases` alternating chase phases of
/// `steps_per_phase` dependent loads, odd phases over `large_nodes`
/// nodes, even phases over `small_nodes` nodes.
///
/// Dynamic length ≈ `phases · (3·steps_per_phase + 7)` instructions.
///
/// # Panics
///
/// Panics if either pool has fewer than two nodes, or `steps_per_phase`/
/// `phases` is zero.
pub fn build(
    small_nodes: usize,
    large_nodes: usize,
    steps_per_phase: u64,
    phases: u64,
    seed: u64,
) -> (Program, Memory) {
    assert!(small_nodes >= 2 && large_nodes >= 2);
    assert!(steps_per_phase > 0 && phases > 0);
    let small_base = DATA_BASE;
    let large_base = DATA_BASE + (small_nodes as u64 + 16) * NODE_BYTES;

    let mut memory = Memory::new();
    for (base, nodes, salt) in [
        (small_base, small_nodes, 0u64),
        (large_base, large_nodes, 1),
    ] {
        let next = cyclic_permutation(nodes, seed ^ salt);
        for (i, &succ) in next.iter().enumerate() {
            memory.write_u64(
                base + i as u64 * NODE_BYTES,
                base + succ as u64 * NODE_BYTES,
            );
        }
    }

    let mut a = Asm::new();
    a.li(reg::S1, small_base as i64);
    a.li(reg::S2, large_base as i64);
    a.li(reg::S5, phases as i64);
    let phase_top = a.label();
    let use_small = a.label();
    let start = a.label();
    a.bind(phase_top).expect("label binds once");
    a.andi(reg::T0, reg::S5, 1);
    a.beqz(reg::T0, use_small);
    a.mv(reg::S0, reg::S2); // odd phase: large pool
    a.j(start);
    a.bind(use_small).expect("label binds once");
    a.mv(reg::S0, reg::S1); // even phase: small pool
    a.bind(start).expect("label binds once");
    a.li(reg::T1, steps_per_phase as i64);
    let chase_top = a.label();
    a.bind(chase_top).expect("label binds once");
    a.ld(reg::S0, reg::S0, 0);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, chase_top);
    a.addi(reg::S5, reg::S5, -1);
    a.bnez(reg::S5, phase_top);
    a.halt();

    (a.finish().expect("phased kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn terminates_and_stays_in_pools() {
        let (program, memory) = build(8, 64, 100, 6, 3);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        let at = cpu.reg(reg::S0);
        let small_end = DATA_BASE + 8 * NODE_BYTES;
        let large_base = DATA_BASE + (8 + 16) * NODE_BYTES;
        let large_end = large_base + 64 * NODE_BYTES;
        assert!(
            (DATA_BASE..small_end).contains(&at) || (large_base..large_end).contains(&at),
            "final pointer 0x{at:x} escaped both pools"
        );
    }

    #[test]
    fn pools_do_not_overlap() {
        let small_nodes = 32;
        let (_, memory) = build(small_nodes, 32, 10, 2, 7);
        // Every small-pool next-pointer stays in the small pool.
        let small_end = DATA_BASE + small_nodes as u64 * NODE_BYTES;
        for i in 0..small_nodes as u64 {
            let next = memory.read_u64(DATA_BASE + i * NODE_BYTES);
            assert!((DATA_BASE..small_end).contains(&next));
        }
    }

    #[test]
    fn dynamic_length_matches_model() {
        let steps = 50;
        let phases = 4;
        let (program, memory) = build(4, 4, steps, phases, 1);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        // Per phase: 2 select + (mv, maybe j) + li + 3·steps + 2 loop end.
        // Odd phases run 6 non-chase instructions, even phases 5.
        let expected = 3 + phases / 2 * (6 + 5) + 3 * steps * phases + phases + 1;
        assert_eq!(cpu.retired(), expected);
    }
}

//! `mixed` — a rotation of small compute, memory, and control subroutines
//! invoked through call/return, in the spirit of `parser`/`twolf`:
//! exercises the return-address stack and mixes all instruction classes.

use super::DATA_BASE;
use crate::rng::{cyclic_permutation, SplitMix64};
use smarts_isa::{reg, Asm, Memory, Program};

const ARRAY_ELEMS: usize = 512; // 4 KiB f64 array for the compute routine
const CHAIN_NODES: usize = 1024; // 64 KiB chase chain (L1-evicting)
const CHASE_STEPS_PER_CALL: i64 = 32;

/// Builds the mixed kernel: `iters` rounds, each calling a small FP
/// routine, a pointer-chase routine, and a branchy LCG routine.
///
/// Dynamic length ≈ `490 · iters` instructions.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn build(iters: u64, seed: u64) -> (Program, Memory) {
    assert!(iters > 0);
    let array_base = DATA_BASE;
    let chain_base = DATA_BASE + (ARRAY_ELEMS as u64 + 16) * 8;

    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..ARRAY_ELEMS as u64 {
        memory.write_f64(array_base + i * 8, rng.next_f64());
    }
    let next = cyclic_permutation(CHAIN_NODES, seed ^ 0xFEED);
    for (i, &succ) in next.iter().enumerate() {
        memory.write_u64(chain_base + i as u64 * 64, chain_base + succ as u64 * 64);
    }

    let mut a = Asm::new();
    let fp_routine = a.label();
    let chase_routine = a.label();
    let branch_routine = a.label();
    let top = a.label();
    let done = a.label();

    // --- main loop --------------------------------------------------------
    a.li(reg::S7, iters as i64);
    a.li(reg::S0, SplitMix64::new(seed ^ 1).next_u64() as i64); // LCG state
    a.li(reg::S2, chain_base as i64); // chase cursor (persists across calls)
    a.bind(top).expect("label binds once");
    a.call(fp_routine);
    a.call(chase_routine);
    a.call(branch_routine);
    a.addi(reg::S7, reg::S7, -1);
    a.bnez(reg::S7, top);
    a.j(done);

    // --- fp routine: sum 32 array elements chosen by the LCG ---------------
    a.bind(fp_routine).expect("label binds once");
    a.li(reg::T1, 32);
    a.li(reg::T4, (ARRAY_ELEMS - 1) as i64);
    let fp_top = a.label();
    a.bind(fp_top).expect("label binds once");
    a.li(reg::T3, 6364136223846793005);
    a.mul(reg::S0, reg::S0, reg::T3);
    a.srli(reg::T0, reg::S0, 40);
    a.and(reg::T0, reg::T0, reg::T4);
    a.slli(reg::T0, reg::T0, 3);
    a.addi(reg::T0, reg::T0, array_base as i64);
    a.fld(1, reg::T0, 0);
    a.fadd(0, 0, 1);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, fp_top);
    a.ret();

    // --- chase routine: a fixed number of dependent steps ------------------
    a.bind(chase_routine).expect("label binds once");
    a.li(reg::T1, CHASE_STEPS_PER_CALL);
    let ch_top = a.label();
    a.bind(ch_top).expect("label binds once");
    a.ld(reg::S2, reg::S2, 0);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, ch_top);
    a.ret();

    // --- branchy routine: 8 data-dependent branches -------------------------
    a.bind(branch_routine).expect("label binds once");
    a.li(reg::T1, 8);
    let br_top = a.label();
    let br_skip = a.label();
    a.bind(br_top).expect("label binds once");
    a.li(reg::T3, 1442695040888963407);
    a.add(reg::S0, reg::S0, reg::T3);
    a.srli(reg::T0, reg::S0, 62);
    a.andi(reg::T0, reg::T0, 1);
    a.beqz(reg::T0, br_skip);
    a.addi(reg::S5, reg::S5, 1);
    a.bind(br_skip).expect("label binds once");
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, br_top);
    a.ret();

    a.bind(done).expect("label binds once");
    a.halt();

    (a.finish().expect("mixed kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn terminates_with_all_routines_active() {
        let (program, memory) = build(50, 21);
        let (cpu, _) = run_to_halt(&program, memory, 1_000_000).unwrap();
        // The FP accumulator grew (array values are positive).
        assert!(cpu.freg(0) > 0.0);
        // The chase cursor is inside the chain region.
        let chain_base = DATA_BASE + (ARRAY_ELEMS as u64 + 16) * 8;
        let at = cpu.reg(reg::S2);
        assert!(at >= chain_base && at < chain_base + CHAIN_NODES as u64 * 64);
        // Some branchy increments happened (~50% of 8 × 50).
        let s5 = cpu.reg(reg::S5);
        assert!((100..300).contains(&s5), "s5 = {s5}");
    }

    #[test]
    fn length_scales_linearly_with_iters() {
        let len = |iters| {
            let (program, memory) = build(iters, 3);
            let (cpu, _) = run_to_halt(&program, memory, 2_000_000).unwrap();
            cpu.retired()
        };
        let l10 = len(10);
        let l20 = len(20);
        let per_iter = (l20 - l10) / 10;
        assert!((420..560).contains(&per_iter), "per-iter {per_iter}");
    }
}

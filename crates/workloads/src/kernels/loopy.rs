//! `loopy` — a tight, fully predictable arithmetic loop, in the spirit of
//! `sixtrack`/`mesa` inner kernels: everything hits L1, every branch is
//! predicted, IPC is bounded only by issue width and the dependence on
//! the loop counter.

use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the loopy kernel: `iters` iterations of four independent
/// integer operations plus loop control.
///
/// Dynamic length ≈ `6 · iters` instructions.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn build(iters: u64) -> (Program, Memory) {
    assert!(iters > 0);
    let mut a = Asm::new();
    a.li(reg::T1, iters as i64);
    let top = a.label();
    a.bind(top).expect("label binds once");
    a.addi(reg::T2, reg::T2, 1);
    a.addi(reg::T3, reg::T3, 3);
    a.xor(reg::T4, reg::T4, reg::T2);
    a.add(reg::T5, reg::T5, reg::T3);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();

    (a.finish().expect("loopy kernel assembles"), Memory::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn arithmetic_is_correct() {
        let iters = 1000;
        let (program, memory) = build(iters);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        assert_eq!(cpu.reg(reg::T2), iters);
        assert_eq!(cpu.reg(reg::T3), 3 * iters);
        // t5 accumulates 3 + 6 + … + 3·iters.
        assert_eq!(cpu.reg(reg::T5), 3 * iters * (iters + 1) / 2);
    }

    #[test]
    fn dynamic_length_matches_model() {
        let (program, memory) = build(500);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        assert_eq!(cpu.retired(), 6 * 500 + 2);
    }
}

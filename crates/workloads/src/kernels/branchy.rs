//! `branchy` — data-dependent control flow, in the spirit of
//! `gcc`/`crafty`: pseudo-random conditional branches plus an indirect
//! jump table, stressing the direction predictor, BTB, and front end.

use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

const LCG_MUL: i64 = 6364136223846793005;
const LCG_ADD: i64 = 1442695040888963407;

/// Builds the branchy kernel: `iters` rounds of three pseudo-random
/// conditional branches and a four-way indirect jump.
///
/// Dynamic length ≈ `19 · iters` instructions (± the branch-dependent
/// increments).
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn build(iters: u64, seed: u64) -> (Program, Memory) {
    assert!(iters > 0);
    // Perturb the initial LCG state so different inputs diverge instantly.
    let start_state = SplitMix64::new(seed).next_u64();

    let mut a = Asm::new();
    a.li(reg::S0, start_state as i64);
    a.li(reg::S3, LCG_MUL);
    a.li(reg::S4, LCG_ADD);
    a.li(reg::T1, iters as i64);
    let top = a.label();
    let skip1 = a.label();
    let skip2 = a.label();
    let skip3 = a.label();
    let case0 = a.label();
    let merge = a.label();

    a.bind(top).expect("label binds once");
    a.mul(reg::S0, reg::S0, reg::S3);
    a.add(reg::S0, reg::S0, reg::S4);
    // Three data-dependent branches on high (well-mixed) bits.
    a.srli(reg::T0, reg::S0, 63);
    a.beqz(reg::T0, skip1);
    a.addi(reg::S5, reg::S5, 1);
    a.bind(skip1).expect("label binds once");
    a.srli(reg::T0, reg::S0, 62);
    a.andi(reg::T0, reg::T0, 1);
    a.beqz(reg::T0, skip2);
    a.addi(reg::S6, reg::S6, 1);
    a.bind(skip2).expect("label binds once");
    a.srli(reg::T0, reg::S0, 61);
    a.andi(reg::T0, reg::T0, 1);
    a.beqz(reg::T0, skip3);
    a.addi(reg::S7, reg::S7, 1);
    a.bind(skip3).expect("label binds once");
    // Four-way indirect jump on bits 59..61: each case is exactly two
    // instructions (payload + jump to merge) so targets are computable.
    a.srli(reg::T0, reg::S0, 59);
    a.andi(reg::T0, reg::T0, 3);
    a.slli(reg::T0, reg::T0, 1);
    a.la(reg::T2, case0);
    a.add(reg::T2, reg::T2, reg::T0);
    a.jr(reg::T2, 0);
    a.bind(case0).expect("label binds once");
    a.addi(reg::S1, reg::S1, 1); // case 0
    a.j(merge);
    a.addi(reg::S1, reg::S1, 2); // case 1
    a.j(merge);
    a.addi(reg::S1, reg::S1, 3); // case 2
    a.j(merge);
    a.addi(reg::S1, reg::S1, 5); // case 3
    a.j(merge);
    a.bind(merge).expect("label binds once");
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();

    (a.finish().expect("branchy kernel assembles"), Memory::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn branch_counters_are_roughly_balanced() {
        let iters = 8000;
        let (program, memory) = build(iters, 13);
        let (cpu, _) = run_to_halt(&program, memory, 400_000).unwrap();
        for r in [reg::S5, reg::S6, reg::S7] {
            let count = cpu.reg(r);
            assert!(
                (iters * 4 / 10..=iters * 6 / 10).contains(&count),
                "counter x{r} = {count} out of balance for {iters} iters"
            );
        }
    }

    #[test]
    fn jump_table_visits_all_cases() {
        let iters = 8000;
        let (program, memory) = build(iters, 17);
        let (cpu, _) = run_to_halt(&program, memory, 400_000).unwrap();
        // Sum of case payloads: average (1+2+3+5)/4 = 2.75 per iteration.
        let s1 = cpu.reg(reg::S1) as f64;
        let per_iter = s1 / iters as f64;
        assert!(
            (2.4..3.1).contains(&per_iter),
            "per-iter payload {per_iter}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let (program, memory) = build(500, seed);
            let (cpu, _) = run_to_halt(&program, memory, 50_000).unwrap();
            (cpu.reg(reg::S5), cpu.reg(reg::S1))
        };
        assert_ne!(run(1), run(2));
    }
}

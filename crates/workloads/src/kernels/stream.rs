//! `stream` — sequential floating-point triad, in the spirit of `swim`/
//! `equake`: `A[i] = B[i] * s + C[i]` over arrays of configurable size.
//!
//! With arrays larger than L1 the kernel is memory-bandwidth bound with a
//! very regular access pattern: low CPI variation, the "easy" end of the
//! Figure 2 spectrum.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the stream kernel: `reps` passes of the triad over `n` f64
/// elements per array.
///
/// Dynamic length ≈ `reps · (10·n + 6)` instructions.
///
/// # Panics
///
/// Panics if `n` or `reps` is zero (the kernel would not terminate
/// meaningfully) or the assembly fails (a bug, not an input condition).
pub fn build(n: usize, reps: u64, seed: u64) -> (Program, Memory) {
    assert!(n > 0 && reps > 0);
    let a_base = DATA_BASE;
    let b_base = a_base + (n as u64) * 8;
    let c_base = b_base + (n as u64) * 8;

    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..n as u64 {
        memory.write_f64(b_base + i * 8, rng.next_f64() * 4.0 - 2.0);
        memory.write_f64(c_base + i * 8, rng.next_f64() * 4.0 - 2.0);
    }

    let mut a = Asm::new();
    a.li(reg::S4, reps as i64);
    a.fli(3, 1.8); // scale factor s
    let outer = a.label();
    a.bind(outer).expect("label binds once");
    a.li(reg::S0, a_base as i64);
    a.li(reg::S1, b_base as i64);
    a.li(reg::S2, c_base as i64);
    a.li(reg::T1, n as i64);
    let inner = a.label();
    a.bind(inner).expect("label binds once");
    a.fld(0, reg::S1, 0);
    a.fld(1, reg::S2, 0);
    a.fmul(2, 0, 3);
    a.fadd(2, 2, 1);
    a.fsd(2, reg::S0, 0);
    a.addi(reg::S0, reg::S0, 8);
    a.addi(reg::S1, reg::S1, 8);
    a.addi(reg::S2, reg::S2, 8);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, inner);
    a.addi(reg::S4, reg::S4, -1);
    a.bnez(reg::S4, outer);
    a.halt();

    (a.finish().expect("stream kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn computes_the_triad() {
        let n = 64;
        let (program, memory) = build(n, 2, 42);
        let (_, memory) = run_to_halt(&program, memory, 100_000).unwrap();
        // Check A[i] == B[i] * 1.8 + C[i] for a few elements.
        let a_base = DATA_BASE;
        let b_base = a_base + (n as u64) * 8;
        let c_base = b_base + (n as u64) * 8;
        for i in [0u64, 1, 31, 63] {
            let b = memory.read_f64(b_base + i * 8);
            let c = memory.read_f64(c_base + i * 8);
            let a = memory.read_f64(a_base + i * 8);
            assert!((a - (b * 1.8 + c)).abs() < 1e-12, "element {i}");
        }
    }

    #[test]
    fn dynamic_length_matches_model() {
        let (program, memory) = build(100, 3, 1);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        let expected = 3 * (10 * 100 + 6) + 2 + 1; // prologue li/fli + halt
        assert_eq!(cpu.retired(), expected);
    }
}

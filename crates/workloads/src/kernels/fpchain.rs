//! `fpchain` — serialized long-latency floating-point dependences, in the
//! spirit of `ammp`/`art`: every iteration chains a divide and a square
//! root through a single register, bounding IPC by FP latency rather than
//! memory or fetch.

use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the FP-chain kernel: `iters` rounds of
/// `f0 ← √(1 + c / f0)` plus a tiny amount of integer bookkeeping.
///
/// The recurrence converges toward the "plastic number" fixed point and
/// never degenerates (f0 stays in roughly `[1, 3]`), so the latency chain
/// is identical every iteration.
///
/// Dynamic length ≈ `6 · iters` instructions.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn build(iters: u64) -> (Program, Memory) {
    assert!(iters > 0);
    let mut a = Asm::new();
    a.fli(0, 1.5); // chain value
    a.fli(1, 2.25); // constant c
    a.fli(2, 1.0); // constant 1
    a.li(reg::T1, iters as i64);
    let top = a.label();
    a.bind(top).expect("label binds once");
    a.fdiv(3, 1, 0); // f3 = c / f0
    a.fadd(3, 3, 2); // f3 = 1 + c / f0
    a.fsqrt(0, 3); // f0 = sqrt(...)
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();

    (a.finish().expect("fpchain kernel assembles"), Memory::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;
    use smarts_isa::Cpu;

    #[test]
    fn converges_to_the_fixed_point() {
        let (program, memory) = build(200);
        let mut cpu = Cpu::new();
        let mut mem = memory;
        while !cpu.halted() {
            cpu.step(&program, &mut mem).unwrap();
        }
        let x = cpu.freg(0);
        // Fixed point of x = sqrt(1 + 2.25/x): x³ = x² ... solves near 1.8.
        assert!((x - (1.0 + 2.25 / x).sqrt()).abs() < 1e-9, "x = {x}");
        assert!(x > 1.0 && x < 3.0);
    }

    #[test]
    fn dynamic_length_matches_model() {
        let (program, memory) = build(1000);
        let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
        assert_eq!(cpu.retired(), 5 * 1000 + 5);
    }
}

//! `mtx` — dense matrix multiply `C += A·B` with the classic i/j/k loop
//! nest, in the spirit of `mgrid`/`applu`: regular FP compute with
//! strided reuse that stresses the L1/L2 boundary as `n` grows.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the matrix kernel: `reps` full `n × n` multiplications.
///
/// Dynamic length ≈ `reps · 8·n³` instructions.
///
/// # Panics
///
/// Panics if `n` or `reps` is zero.
pub fn build(n: usize, reps: u64, seed: u64) -> (Program, Memory) {
    assert!(n > 0 && reps > 0);
    let words = (n * n) as u64;
    let a_base = DATA_BASE;
    let b_base = a_base + words * 8;
    let c_base = b_base + words * 8;
    let row_bytes = (n as i64) * 8;

    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed);
    for i in 0..words {
        memory.write_f64(a_base + i * 8, rng.next_f64() - 0.5);
        memory.write_f64(b_base + i * 8, rng.next_f64() - 0.5);
    }

    let mut a = Asm::new();
    // s7 = reps, s5 = n, s6 = row bytes
    a.li(reg::S7, reps as i64);
    a.li(reg::S5, n as i64);
    a.li(reg::S6, row_bytes);
    let rep_top = a.label();
    a.bind(rep_top).expect("label binds once");
    // s3 = A row pointer, t2 = C pointer, s0 = i countdown
    a.li(reg::S3, a_base as i64);
    a.li(reg::T2, c_base as i64);
    a.li(reg::S0, n as i64);
    let i_top = a.label();
    a.bind(i_top).expect("label binds once");
    // s1 = j countdown, t3 = B column pointer
    a.li(reg::S1, n as i64);
    a.li(reg::T3, b_base as i64);
    let j_top = a.label();
    a.bind(j_top).expect("label binds once");
    // f0 = accumulator, t0 = A element pointer, t1 = B element pointer,
    // s2 = k countdown
    a.fli(0, 0.0);
    a.mv(reg::T0, reg::S3);
    a.mv(reg::T1, reg::T3);
    a.li(reg::S2, n as i64);
    let k_top = a.label();
    a.bind(k_top).expect("label binds once");
    a.fld(1, reg::T0, 0);
    a.fld(2, reg::T1, 0);
    a.fmul(3, 1, 2);
    a.fadd(0, 0, 3);
    a.addi(reg::T0, reg::T0, 8);
    a.add(reg::T1, reg::T1, reg::S6);
    a.addi(reg::S2, reg::S2, -1);
    a.bnez(reg::S2, k_top);
    // C[i][j] += acc
    a.fld(4, reg::T2, 0);
    a.fadd(4, 4, 0);
    a.fsd(4, reg::T2, 0);
    a.addi(reg::T2, reg::T2, 8);
    a.addi(reg::T3, reg::T3, 8); // next B column
    a.addi(reg::S1, reg::S1, -1);
    a.bnez(reg::S1, j_top);
    a.add(reg::S3, reg::S3, reg::S6); // next A row
    a.addi(reg::S0, reg::S0, -1);
    a.bnez(reg::S0, i_top);
    a.addi(reg::S7, reg::S7, -1);
    a.bnez(reg::S7, rep_top);
    a.halt();

    (a.finish().expect("mtx kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn multiplies_small_matrices_correctly() {
        let n = 4;
        let (program, memory) = build(n, 1, 7);
        // Capture inputs before running.
        let words = (n * n) as u64;
        let a_base = DATA_BASE;
        let b_base = a_base + words * 8;
        let c_base = b_base + words * 8;
        let read_mat = |mem: &Memory, base: u64| -> Vec<f64> {
            (0..words).map(|i| mem.read_f64(base + i * 8)).collect()
        };
        let ma = read_mat(&memory, a_base);
        let mb = read_mat(&memory, b_base);
        let (_, memory) = run_to_halt(&program, memory, 100_000).unwrap();
        let mc = read_mat(&memory, c_base);
        for i in 0..n {
            for j in 0..n {
                let mut expect = 0.0;
                for k in 0..n {
                    expect += ma[i * n + k] * mb[k * n + j];
                }
                let got = mc[i * n + j];
                assert!(
                    (got - expect).abs() < 1e-9,
                    "C[{i}][{j}] = {got}, want {expect}"
                );
            }
        }
    }

    #[test]
    fn reps_accumulate_into_c() {
        let n = 3;
        let (p1, m1) = build(n, 1, 3);
        let (p2, m2) = build(n, 2, 3);
        let (_, m1) = run_to_halt(&p1, m1, 100_000).unwrap();
        let (_, m2) = run_to_halt(&p2, m2, 100_000).unwrap();
        let c_base = DATA_BASE + 2 * (n * n) as u64 * 8;
        for i in 0..(n * n) as u64 {
            let once = m1.read_f64(c_base + i * 8);
            let twice = m2.read_f64(c_base + i * 8);
            assert!((twice - 2.0 * once).abs() < 1e-9);
        }
    }
}

//! `rle` — run-length encoding over a byte buffer, in the spirit of
//! `gzip`: byte loads, data-dependent run detection, and bursty stores
//! whose density depends on the data's compressibility.
//!
//! Compressible inputs (long runs) make the inner comparison branch
//! strongly biased and stores rare; incompressible inputs flip both —
//! so one kernel covers two behavioural regimes via its `run_len` input
//! parameter, mirroring gzip's input sensitivity in the paper's suite.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

/// Builds the RLE kernel: encodes a buffer of `n` bytes, `reps` times.
/// Input data consists of runs of geometric-ish length around
/// `mean_run_len` (1 = incompressible noise).
///
/// Dynamic length ≈ `reps · 8·n` instructions.
///
/// # Panics
///
/// Panics if `n < 2`, or `reps`/`mean_run_len` is zero.
pub fn build(n: usize, reps: u64, mean_run_len: usize, seed: u64) -> (Program, Memory) {
    assert!(n >= 2 && reps > 0 && mean_run_len > 0);
    let src = DATA_BASE;
    let dst = DATA_BASE + n as u64 + 4096;

    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed);
    let mut i = 0usize;
    while i < n {
        let value = (rng.next_u64() & 0xFF) as u8;
        let run = 1 + (rng.next_below(2 * mean_run_len as u64 - 1)) as usize;
        for _ in 0..run.min(n - i) {
            memory.write_u8(src + i as u64, value);
            i += 1;
        }
    }

    let mut a = Asm::new();
    a.li(reg::S7, reps as i64);
    let rep_top = a.label();
    a.bind(rep_top).expect("label binds once");
    // s0 = src cursor, s1 = src end, s2 = dst cursor,
    // t0 = current run byte, t2 = run length.
    a.li(reg::S0, src as i64);
    a.li(reg::S1, (src + n as u64) as i64);
    a.li(reg::S2, dst as i64);
    a.lbu(reg::T0, reg::S0, 0);
    a.addi(reg::S0, reg::S0, 1);
    a.li(reg::T2, 1);
    let scan = a.label();
    let flush = a.label();
    let next = a.label();
    let done = a.label();
    a.bind(scan).expect("label binds once");
    a.bge(reg::S0, reg::S1, done);
    a.lbu(reg::T1, reg::S0, 0);
    a.addi(reg::S0, reg::S0, 1);
    a.bne(reg::T1, reg::T0, flush);
    a.addi(reg::T2, reg::T2, 1); // extend the run
    a.j(scan);
    a.bind(flush).expect("label binds once");
    // Emit (byte, count) and start a new run.
    a.sb(reg::T0, reg::S2, 0);
    a.sb(reg::T2, reg::S2, 1);
    a.addi(reg::S2, reg::S2, 2);
    a.mv(reg::T0, reg::T1);
    a.li(reg::T2, 1);
    a.j(scan);
    a.bind(next).expect("label binds once");
    a.bind(done).expect("label binds once");
    // Final flush.
    a.sb(reg::T0, reg::S2, 0);
    a.sb(reg::T2, reg::S2, 1);
    a.addi(reg::S7, reg::S7, -1);
    a.bnez(reg::S7, rep_top);
    a.halt();

    (a.finish().expect("rle kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    fn decode(memory: &Memory, dst: u64, src_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut at = dst;
        while out.len() < src_len {
            let byte = memory.read_u8(at);
            let count = memory.read_u8(at + 1);
            if count == 0 {
                break;
            }
            for _ in 0..count {
                out.push(byte);
            }
            at += 2;
        }
        out
    }

    #[test]
    fn encoding_round_trips_compressible_data() {
        let n = 200;
        let (program, memory) = build(n, 1, 8, 42);
        // Capture the source before running.
        let src: Vec<u8> = (0..n as u64)
            .map(|i| memory.read_u8(DATA_BASE + i))
            .collect();
        let (_, memory) = run_to_halt(&program, memory, 200_000).unwrap();
        let dst = DATA_BASE + n as u64 + 4096;
        let decoded = decode(&memory, dst, n);
        assert_eq!(decoded, src, "RLE encode must be lossless for short runs");
    }

    #[test]
    fn incompressible_data_emits_more_output() {
        let n = 400;
        let out_bytes = |mean_run: usize| {
            let (program, memory) = build(n, 1, mean_run, 7);
            let (_, memory) = run_to_halt(&program, memory, 400_000).unwrap();
            let dst = DATA_BASE + n as u64 + 4096;
            let mut count = 0u64;
            let mut at = dst;
            loop {
                let c = memory.read_u8(at + 1);
                if c == 0 {
                    break;
                }
                count += 2;
                at += 2;
            }
            count
        };
        let noisy = out_bytes(1);
        let runny = out_bytes(16);
        assert!(
            noisy > runny * 3,
            "noise ({noisy} B) should out-emit runs ({runny} B)"
        );
    }

    #[test]
    fn reps_scale_the_work() {
        let (p1, m1) = build(100, 1, 4, 3);
        let (p2, m2) = build(100, 3, 4, 3);
        let (c1, _) = run_to_halt(&p1, m1, 100_000).unwrap();
        let (c2, _) = run_to_halt(&p2, m2, 100_000).unwrap();
        let per_rep = c1.retired() - 1; // minus halt
        assert!(
            c2.retired() > 2 * per_rep,
            "{} vs {}",
            c2.retired(),
            c1.retired()
        );
    }
}

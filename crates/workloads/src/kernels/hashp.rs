//! `hashp` — randomized hash-table probing, in the spirit of
//! `vortex`/`gap`: hash computation, a dependent random-indexed load, and
//! a data-dependent branch per operation.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

const LCG_MUL: i64 = 6364136223846793005;
const LCG_ADD: i64 = 1442695040888963407;

/// Builds the hash-probe kernel: `ops` probes into a table of
/// `table_words` 64-bit entries.
///
/// Dynamic length ≈ `(12..13) · ops` instructions (the inner branch is
/// taken for roughly half the probes).
///
/// # Panics
///
/// Panics if `table_words` is not a power of two or `ops` is zero.
pub fn build(table_words: usize, ops: u64, seed: u64) -> (Program, Memory) {
    assert!(table_words.is_power_of_two() && table_words >= 2);
    assert!(ops > 0);
    let mut memory = Memory::new();
    let mut rng = SplitMix64::new(seed ^ 0xABCD);
    for i in 0..table_words as u64 {
        memory.write_u64(DATA_BASE + i * 8, rng.next_u64());
    }

    let mut a = Asm::new();
    a.li(reg::S0, seed as i64); // LCG state
    a.li(reg::S1, DATA_BASE as i64);
    a.li(reg::S2, (table_words - 1) as i64); // index mask
    a.li(reg::S3, LCG_MUL);
    a.li(reg::S4, LCG_ADD);
    a.li(reg::T1, ops as i64);
    let top = a.label();
    let skip = a.label();
    a.bind(top).expect("label binds once");
    a.mul(reg::S0, reg::S0, reg::S3);
    a.add(reg::S0, reg::S0, reg::S4);
    a.srli(reg::T0, reg::S0, 17);
    a.and(reg::T0, reg::T0, reg::S2);
    a.slli(reg::T0, reg::T0, 3);
    a.add(reg::T0, reg::T0, reg::S1);
    a.ld(reg::T2, reg::T0, 0);
    a.xor(reg::S5, reg::S5, reg::T2); // checksum accumulator
    a.andi(reg::T3, reg::T2, 1);
    a.beqz(reg::T3, skip);
    a.addi(reg::S6, reg::S6, 1); // odd-entry counter
    a.bind(skip).expect("label binds once");
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();

    (a.finish().expect("hashp kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    #[test]
    fn probes_hit_roughly_half_odd_entries() {
        let (program, memory) = build(1024, 4000, 11);
        let (cpu, _) = run_to_halt(&program, memory, 200_000).unwrap();
        let odd = cpu.reg(reg::S6);
        // Random 64-bit entries are odd with probability 1/2.
        assert!((1500..2500).contains(&odd), "odd = {odd}");
    }

    #[test]
    fn checksum_is_deterministic() {
        let run = |seed| {
            let (program, memory) = build(256, 1000, seed);
            let (cpu, _) = run_to_halt(&program, memory, 100_000).unwrap();
            cpu.reg(reg::S5)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_table_panics() {
        let _ = build(1000, 10, 1);
    }
}

//! `sortk` — repeated bubble-sort passes with periodic re-scrambling, in
//! the spirit of `bzip2`: loads, stores, compares, and data-dependent
//! swap branches whose predictability *drifts* as the array gets sorted.
//!
//! The scramble→sort cycle creates natural program phases at several time
//! scales — chaotic early passes (hard branches, many swaps), orderly
//! late passes (predictable, no stores) — which is exactly the structure
//! SMARTS's small-U sampling captures and single-chunk approaches miss.

use super::DATA_BASE;
use crate::rng::SplitMix64;
use smarts_isa::{reg, Asm, Memory, Program};

const LCG_MUL: i64 = 6364136223846793005;
const LCG_ADD: i64 = 1442695040888963407;

/// Builds the sort kernel: `reps` rounds of (scramble, then `passes`
/// bubble passes) over `n` signed 64-bit elements. With
/// `presorted == true` the scramble writes an ascending sequence instead,
/// modelling an "easy" input set.
///
/// Dynamic length ≈ `reps · (6·n + passes · 9·(n−1))` instructions.
///
/// # Panics
///
/// Panics if `n < 2`, or `passes`/`reps` is zero.
pub fn build(n: usize, passes: u64, reps: u64, seed: u64, presorted: bool) -> (Program, Memory) {
    assert!(n >= 2 && passes > 0 && reps > 0);
    let memory = Memory::new(); // array is written by the scramble phase

    let mut a = Asm::new();
    a.li(reg::S0, SplitMix64::new(seed).next_u64() as i64); // LCG state
    a.li(reg::S7, reps as i64);
    let rep_top = a.label();
    a.bind(rep_top).expect("label binds once");

    // --- scramble (or re-ascend) phase: write n elements -----------------
    a.li(reg::T0, DATA_BASE as i64);
    a.li(reg::T1, n as i64);
    let scr_top = a.label();
    a.bind(scr_top).expect("label binds once");
    if presorted {
        // value = n - countdown (ascending).
        a.li(reg::T3, n as i64);
        a.sub(reg::T2, reg::T3, reg::T1);
    } else {
        a.li(reg::T3, LCG_MUL);
        a.mul(reg::S0, reg::S0, reg::T3);
        a.li(reg::T3, LCG_ADD);
        a.add(reg::S0, reg::S0, reg::T3);
        a.srai(reg::T2, reg::S0, 24); // signed values
    }
    a.sd(reg::T2, reg::T0, 0);
    a.addi(reg::T0, reg::T0, 8);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, scr_top);

    // --- bubble passes ----------------------------------------------------
    a.li(reg::S1, passes as i64);
    let pass_top = a.label();
    a.bind(pass_top).expect("label binds once");
    a.li(reg::T0, DATA_BASE as i64);
    a.li(reg::T1, (n - 1) as i64);
    let cmp_top = a.label();
    let no_swap = a.label();
    a.bind(cmp_top).expect("label binds once");
    a.ld(reg::T2, reg::T0, 0);
    a.ld(reg::T3, reg::T0, 8);
    a.ble(reg::T2, reg::T3, no_swap);
    a.sd(reg::T3, reg::T0, 0);
    a.sd(reg::T2, reg::T0, 8);
    a.bind(no_swap).expect("label binds once");
    a.addi(reg::T0, reg::T0, 8);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, cmp_top);
    a.addi(reg::S1, reg::S1, -1);
    a.bnez(reg::S1, pass_top);

    a.addi(reg::S7, reg::S7, -1);
    a.bnez(reg::S7, rep_top);
    a.halt();

    (a.finish().expect("sortk kernel assembles"), memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_halt;

    fn read_array(memory: &Memory, n: usize) -> Vec<i64> {
        (0..n as u64)
            .map(|i| memory.read_u64(DATA_BASE + i * 8) as i64)
            .collect()
    }

    #[test]
    fn enough_passes_fully_sort() {
        let n = 32;
        let (program, memory) = build(n, n as u64, 1, 99, false);
        let (_, memory) = run_to_halt(&program, memory, 1_000_000).unwrap();
        let array = read_array(&memory, n);
        let mut sorted = array.clone();
        sorted.sort_unstable();
        assert_eq!(array, sorted);
        // Values are genuinely mixed-sign (scramble produced signed data).
        assert!(array.first().unwrap() < &0 && array.last().unwrap() > &0);
    }

    #[test]
    fn few_passes_leave_array_partially_sorted() {
        let n = 64;
        let (program, memory) = build(n, 2, 1, 7, false);
        let (_, memory) = run_to_halt(&program, memory, 1_000_000).unwrap();
        let array = read_array(&memory, n);
        let mut sorted = array.clone();
        sorted.sort_unstable();
        assert_ne!(array, sorted, "two bubble passes cannot sort 64 elements");
        // But each pass bubbles the maximum to the end.
        assert_eq!(array[n - 1], *sorted.last().unwrap());
        assert_eq!(array[n - 2], sorted[n - 2]);
    }

    #[test]
    fn presorted_input_is_ascending_and_swap_free() {
        let n = 32;
        let (program, memory) = build(n, 3, 1, 1, true);
        let (_, memory) = run_to_halt(&program, memory, 100_000).unwrap();
        let array = read_array(&memory, n);
        let expect: Vec<i64> = (0..n as i64).collect();
        assert_eq!(array, expect);
    }
}

//! Synthetic SPEC2K-like benchmark suite for the SMARTS reproduction.
//!
//! The original paper evaluates 41 SPEC CPU2000 benchmark/input
//! combinations whose binaries, inputs, and multi-billion-instruction
//! streams are not available here. This crate substitutes a suite of
//! procedurally generated kernels — real instruction sequences for the
//! [`smarts_isa`] substrate — chosen to span the same behavioural
//! regimes the paper's Figure 2 documents:
//!
//! | kernel    | inspired by      | regime                                   |
//! |-----------|------------------|------------------------------------------|
//! | `stream`  | swim/equake      | regular FP streaming, low variation       |
//! | `mtx`     | mgrid/applu      | loop-nest FP compute, L1/L2 reuse         |
//! | `chase`   | mcf              | dependent misses, memory-latency bound    |
//! | `hashp`   | vortex/gap       | random access + data-dependent branches   |
//! | `branchy` | gcc/crafty       | hard control flow, BTB/indirect pressure  |
//! | `sortk`   | bzip2            | phase drift: chaotic → sorted passes      |
//! | `fpchain` | ammp/art         | serialized FP divide/sqrt latency         |
//! | `phased`  | gcc-2 (§5.3)     | same code, alternating locality phases    |
//! | `loopy`   | sixtrack/mesa    | tight predictable loops, minimal CPI      |
//! | `mixed`   | parser/twolf     | call/return mix of all of the above       |
//!
//! Benchmarks are deterministic given their seed, terminate via `halt`,
//! and scale their dynamic length through [`Benchmark::scaled`] /
//! [`scaled_suite`] without changing data-set sizes (so cache behaviour
//! is preserved across scales).
//!
//! # Examples
//!
//! ```
//! use smarts_isa::Cpu;
//! use smarts_workloads::find;
//!
//! # fn main() -> Result<(), smarts_isa::IsaError> {
//! let bench = find("loopy-1").unwrap().scaled(0.01);
//! let loaded = bench.load();
//! let mut cpu = Cpu::new();
//! let mut mem = loaded.memory;
//! cpu.run(&loaded.program, &mut mem, u64::MAX)?;
//! assert!(cpu.halted());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frontend;
pub mod kernels;
mod rng;
mod suite;

pub use frontend::{risc_suite, Frontend, Loaded, LoadedBenchmark};
pub use rng::{cyclic_permutation, SplitMix64};
pub use suite::{extended_suite, find, scaled_suite, suite, Benchmark, Spec};

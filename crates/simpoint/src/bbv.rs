//! Basic-block-vector profiling.
//!
//! SimPoint characterizes each fixed-length interval of the dynamic
//! stream by a *basic block vector*: how many instructions the interval
//! spent in each static basic block. Intervals with similar vectors are
//! assumed to have similar performance.

use smarts_core::FunctionalEngine;
use smarts_uarch::TraceSource;
use smarts_workloads::LoadedBenchmark;

/// A profiled interval: its index in the stream and its (dense)
/// per-block instruction counts.
#[derive(Debug, Clone, PartialEq)]
pub struct BbVector {
    /// Interval index (interval `i` covers instructions
    /// `[i·interval, (i+1)·interval)`).
    pub index: u64,
    /// Instructions executed in each static basic block.
    pub counts: Vec<u64>,
}

impl BbVector {
    /// The vector normalized to relative frequencies (sums to 1).
    pub fn frequencies(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Result of a full-stream BBV profiling pass.
#[derive(Debug, Clone)]
pub struct BbvProfile {
    /// One vector per whole interval, in stream order. A trailing partial
    /// interval is excluded (matching the SimPoint tool).
    pub vectors: Vec<BbVector>,
    /// Interval length in instructions.
    pub interval: u64,
    /// Number of static basic blocks.
    pub blocks: usize,
    /// Total instructions profiled (including any partial tail).
    pub instructions: u64,
}

/// Profiles a benchmark's dynamic stream into per-interval basic block
/// vectors using a single functional pass.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn profile(loaded: LoadedBenchmark, interval: u64) -> BbvProfile {
    assert!(interval > 0, "interval must be nonzero");
    // Precompute pc → block id for O(1) per-instruction classification.
    let leaders = loaded.program.basic_block_leaders();
    let blocks = leaders.len();
    let program_len = loaded.program.len() as usize;
    let mut block_of = vec![0u32; program_len];
    {
        let mut current = 0usize;
        let mut next_leader = 1usize;
        for (pc, slot) in block_of.iter_mut().enumerate() {
            if next_leader < leaders.len() && pc as u64 == leaders[next_leader] {
                current = next_leader;
                next_leader += 1;
            }
            *slot = current as u32;
        }
    }

    let mut engine = FunctionalEngine::new(loaded);
    let mut vectors = Vec::new();
    let mut counts = vec![0u64; blocks];
    let mut in_interval = 0u64;
    let mut index = 0u64;
    let mut instructions = 0u64;
    while let Some(rec) = engine.next_record() {
        counts[block_of[rec.pc as usize] as usize] += 1;
        in_interval += 1;
        instructions += 1;
        if in_interval == interval {
            vectors.push(BbVector {
                index,
                counts: std::mem::replace(&mut counts, vec![0; blocks]),
            });
            in_interval = 0;
            index += 1;
        }
    }
    BbvProfile {
        vectors,
        interval,
        blocks,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_workloads::find;

    #[test]
    fn profile_partitions_the_stream() {
        let bench = find("branchy-1").unwrap().scaled(0.02);
        let loaded = bench.load();
        let profile = profile(loaded, 10_000);
        assert!(!profile.vectors.is_empty());
        for v in &profile.vectors {
            assert_eq!(v.counts.iter().sum::<u64>(), 10_000);
        }
        assert_eq!(profile.vectors.len() as u64, profile.instructions / 10_000);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let profile = profile(bench.load(), 5_000);
        let freq = profile.vectors[0].frequencies();
        let sum: f64 = freq.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_loop_produces_identical_vectors() {
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let profile = profile(bench.load(), 6_000); // multiple of loop period
        let first = &profile.vectors[1];
        for v in &profile.vectors[2..] {
            assert_eq!(v.counts, first.counts);
        }
    }

    #[test]
    fn phased_code_shares_vectors_across_phases() {
        // The `phased` kernel's key property: both locality phases execute
        // the same blocks, so interior BBVs look alike even though CPI
        // differs wildly — the SimPoint failure mode of Section 5.3.
        let bench = find("phased-1").unwrap().scaled(0.5);
        let loaded = bench.load();
        let profile = profile(loaded, 30_000);
        assert!(profile.vectors.len() >= 8);
        let mid = |v: &BbVector| v.frequencies();
        // Compare an early-phase interior vector with a late one.
        let a = mid(&profile.vectors[1]);
        let b = mid(&profile.vectors[profile.vectors.len() - 2]);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist < 0.05, "manhattan distance {dist} should be tiny");
    }
}

//! SimPoint baseline for the SMARTS reproduction (Section 5.3 of the
//! paper).
//!
//! SimPoint (Sherwood et al., ASPLOS 2002) reduces simulation time by
//! clustering fixed-length intervals of the dynamic instruction stream by
//! their *basic block vectors* and simulating one weighted representative
//! per cluster. This crate implements the published pipeline from
//! scratch:
//!
//! 1. [`profile`] — per-interval basic-block-vector profiling,
//! 2. random projection to a small dimensionality,
//! 3. [`kmeans`] with k-means++ seeding and [`bic`] model scoring,
//! 4. [`select`] — centroid-nearest representative per cluster, weighted
//!    by cluster size,
//! 5. [`estimate_cpi`] — detailed simulation of the representatives
//!    (cold-started, as the original tool assumes large intervals warm
//!    themselves).
//!
//! The Figure 8 comparison emerges naturally: SimPoint is competitive on
//! phase-stable workloads but can err arbitrarily when similar BBVs hide
//! different microarchitectural behaviour (the `phased` workload), and it
//! offers no confidence measure.
//!
//! # Examples
//!
//! ```
//! use smarts_simpoint::{select, SimPointConfig};
//! use smarts_workloads::find;
//!
//! let bench = find("loopy-1").unwrap().scaled(0.1);
//! let config = SimPointConfig { interval: 20_000, ..SimPointConfig::default() };
//! let selection = select(&bench, &config);
//! let total: f64 = selection.intervals.iter().map(|s| s.weight).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbv;
mod kmeans;
mod simpoint;

pub use bbv::{profile, BbVector, BbvProfile};
pub use kmeans::{bic, kmeans, KMeansResult};
pub use simpoint::{
    estimate_cpi, select, SelectedInterval, SimPointConfig, SimPointEstimate, SimPointSelection,
};

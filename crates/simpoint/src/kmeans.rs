//! K-means clustering with k-means++ seeding and BIC model scoring, as
//! used by the SimPoint offline analysis.

use smarts_workloads::SplitMix64;

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index of each input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Points per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's algorithm with k-means++ initialization.
///
/// Deterministic for a given `seed`. Empty clusters are re-seeded with
/// the point farthest from its centroid.
///
/// # Panics
///
/// Panics if `data` is empty, `k` is zero, or `k > data.len()`.
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    assert!(!data.is_empty(), "kmeans needs data");
    assert!(k >= 1 && k <= data.len(), "k must be in 1..=len");
    let mut rng = SplitMix64::new(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.next_below(data.len() as u64) as usize].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let choice = if total <= 0.0 {
            rng.next_below(data.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
                idx = i;
            }
            idx
        };
        centroids.push(data[choice].clone());
        for (i, point) in data.iter().enumerate() {
            let dist = sq_dist(point, centroids.last().expect("just pushed"));
            if dist < d2[i] {
                d2[i] = dist;
            }
        }
    }

    let dims = data[0].len();
    let mut assignments = vec![0usize; data.len()];
    let mut inertia = f64::INFINITY;
    for _ in 0..max_iters {
        // Assign.
        let mut new_inertia = 0.0;
        for (i, point) in data.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dist = sq_dist(point, centroid);
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            assignments[i] = best;
            new_inertia += best_d;
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, point) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &x) in sums[assignments[i]].iter_mut().zip(point) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fit point.
                let worst = (0..data.len())
                    .max_by(|&a, &b| {
                        let da = sq_dist(&data[a], &centroids[assignments[a]]);
                        let db = sq_dist(&data[b], &centroids[assignments[b]]);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("nonempty data");
                centroids[c] = data[worst].clone();
            } else {
                for (dst, &s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = s / counts[c] as f64;
                }
            }
        }
        if (inertia - new_inertia).abs() < 1e-12 {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    KMeansResult {
        assignments,
        centroids,
        inertia,
    }
}

/// Bayesian information criterion of a clustering (X-means formulation),
/// higher is better. Used by SimPoint to pick the number of clusters.
pub fn bic(data: &[Vec<f64>], result: &KMeansResult) -> f64 {
    let r = data.len() as f64;
    let d = data[0].len() as f64;
    let k = result.k() as f64;
    if data.len() <= result.k() {
        return f64::NEG_INFINITY;
    }
    // Per-dimension ML variance estimate, floored to keep logs finite for
    // degenerate (duplicate-point) populations.
    let sigma2 = (result.inertia / (d * (r - k))).max(1e-12);
    let sizes = result.cluster_sizes();
    let mut log_likelihood = 0.0;
    for &size in &sizes {
        if size == 0 {
            continue;
        }
        let rn = size as f64;
        log_likelihood += rn * rn.ln()
            - rn * r.ln()
            - rn * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
            - (rn - 1.0) * d / 2.0;
    }
    let params = k * (d + 1.0);
    log_likelihood - params / 2.0 * r.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Two well-separated 2-D blobs of 20 points each.
        let mut rng = SplitMix64::new(11);
        let mut data = Vec::new();
        for _ in 0..20 {
            data.push(vec![rng.next_f64() * 0.2, rng.next_f64() * 0.2]);
        }
        for _ in 0..20 {
            data.push(vec![
                10.0 + rng.next_f64() * 0.2,
                10.0 + rng.next_f64() * 0.2,
            ]);
        }
        data
    }

    #[test]
    fn k2_separates_two_blobs() {
        let data = blobs();
        let result = kmeans(&data, 2, 3, 100);
        let first = result.assignments[0];
        assert!(data
            .iter()
            .zip(&result.assignments)
            .take(20)
            .all(|(_, &a)| a == first));
        assert!(data
            .iter()
            .zip(&result.assignments)
            .skip(20)
            .all(|(_, &a)| a != first));
        assert!(result.inertia < 2.0, "inertia = {}", result.inertia);
    }

    #[test]
    fn k1_centroid_is_the_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 2.0]];
        let result = kmeans(&data, 1, 7, 50);
        assert!((result.centroids[0][0] - 2.0).abs() < 1e-9);
        assert!((result.centroids[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inertia_never_increases_with_k() {
        let data = blobs();
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            // Take the best of a few seeds to avoid unlucky initializations.
            let best = (0..5)
                .map(|s| kmeans(&data, k, s, 100).inertia)
                .fold(f64::INFINITY, f64::min);
            assert!(best <= last + 1e-9, "k={k}: {best} > {last}");
            last = best;
        }
    }

    #[test]
    fn bic_prefers_the_true_cluster_count() {
        let data = blobs();
        let bic1 = bic(&data, &kmeans(&data, 1, 3, 100));
        let bic2 = bic(&data, &kmeans(&data, 2, 3, 100));
        assert!(bic2 > bic1, "bic2 {bic2} should beat bic1 {bic1}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = kmeans(&data, 3, 5, 100);
        let b = kmeans(&data, 3, 5, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_do_not_break_bic() {
        let data = vec![vec![1.0, 1.0]; 10];
        let result = kmeans(&data, 2, 1, 10);
        let score = bic(&data, &result);
        assert!(score.is_finite());
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_panics() {
        let _ = kmeans(&[vec![1.0]], 2, 1, 10);
    }
}

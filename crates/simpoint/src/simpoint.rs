//! The SimPoint selection pipeline and CPI estimator (the Section 5.3
//! baseline).

use std::time::{Duration, Instant};

use crate::bbv::{profile, BbvProfile};
use crate::kmeans::{bic, kmeans};
use smarts_core::{FunctionalEngine, SmartsSim};
use smarts_uarch::{Pipeline, WarmState};
use smarts_workloads::{Benchmark, SplitMix64};

/// SimPoint analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPointConfig {
    /// Interval (sampling-unit) size in instructions. SimPoint uses very
    /// large units — the published tool used 10–100 M; scaled to our
    /// stream lengths the default is 100 k.
    pub interval: u64,
    /// Maximum number of clusters (the tool's default is 10).
    pub max_k: usize,
    /// Random-projection dimensionality (the tool projects BBVs to 15).
    pub projected_dims: usize,
    /// Pick the smallest k whose BIC reaches this fraction of the best
    /// score's range (the tool uses 0.9).
    pub bic_threshold: f64,
    /// Seed for projection and clustering.
    pub seed: u64,
    /// Fraction of each representative interval executed in detail but
    /// *not* measured before measurement begins. The published tool does
    /// no explicit warming because its 10–100 M-instruction intervals
    /// self-warm within their first few percent; at our scaled-down
    /// interval sizes this knob emulates that amortization. Set to 0.0
    /// for the strict cold-start behaviour.
    pub warmup_fraction: f64,
}

impl Default for SimPointConfig {
    fn default() -> Self {
        SimPointConfig {
            interval: 100_000,
            max_k: 10,
            projected_dims: 15,
            bic_threshold: 0.9,
            seed: 42,
            warmup_fraction: 0.2,
        }
    }
}

/// One selected representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedInterval {
    /// Interval index in the stream.
    pub index: u64,
    /// Weight (fraction of intervals in its cluster).
    pub weight: f64,
}

/// Result of the offline SimPoint analysis.
#[derive(Debug, Clone)]
pub struct SimPointSelection {
    /// Chosen representatives, sorted by stream position.
    pub intervals: Vec<SelectedInterval>,
    /// Number of clusters the BIC criterion chose.
    pub k: usize,
    /// Number of profiled whole intervals.
    pub population: usize,
    /// Interval size used.
    pub interval: u64,
}

/// A SimPoint CPI estimate with its cost accounting.
#[derive(Debug, Clone)]
pub struct SimPointEstimate {
    /// Weighted CPI estimate.
    pub cpi: f64,
    /// The selection it was computed from.
    pub selection: SimPointSelection,
    /// Instructions simulated in detail (`k · interval`).
    pub detailed_instructions: u64,
    /// Wall-clock for the profiling pass.
    pub wall_profile: Duration,
    /// Wall-clock for the measurement pass.
    pub wall_measure: Duration,
}

/// Projects normalized BBVs to `dims` dimensions with a seeded random
/// ±1 projection matrix.
fn project(profile: &BbvProfile, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    // matrix[block][dim] in {-1, +1}, generated row-by-row.
    let matrix: Vec<Vec<f64>> = (0..profile.blocks)
        .map(|_| {
            (0..dims)
                .map(|_| if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    profile
        .vectors
        .iter()
        .map(|v| {
            let freq = v.frequencies();
            let mut out = vec![0.0; dims];
            for (block, &f) in freq.iter().enumerate() {
                if f != 0.0 {
                    for (o, &m) in out.iter_mut().zip(&matrix[block]) {
                        *o += f * m;
                    }
                }
            }
            out
        })
        .collect()
}

/// Runs the offline SimPoint analysis: BBV profiling, random projection,
/// BIC-scored k-means, and centroid-nearest representative selection.
///
/// # Panics
///
/// Panics if the stream is shorter than one interval.
pub fn select(bench: &Benchmark, config: &SimPointConfig) -> SimPointSelection {
    let bbv = profile(bench.load(), config.interval);
    assert!(
        !bbv.vectors.is_empty(),
        "stream shorter than one SimPoint interval ({})",
        config.interval
    );
    let data = project(&bbv, config.projected_dims, config.seed);
    let max_k = config.max_k.min(data.len());

    // Score k = 1..=max_k, keep every clustering.
    let mut results = Vec::with_capacity(max_k);
    let mut scores = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let result = kmeans(&data, k, config.seed.wrapping_add(k as u64), 100);
        scores.push(bic(&data, &result));
        results.push(result);
    }
    let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    let best = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let worst = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let spread = (best - worst).max(1e-12);
    let chosen_k = scores
        .iter()
        .position(|&s| s.is_finite() && (s - worst) / spread >= config.bic_threshold)
        .map(|i| i + 1)
        .unwrap_or(max_k);
    let clustering = &results[chosen_k - 1];

    // Representative per cluster: the interval nearest its centroid.
    let sizes = clustering.cluster_sizes();
    let total = data.len() as f64;
    let mut intervals = Vec::new();
    for (c, &size) in sizes.iter().enumerate() {
        if size == 0 {
            continue;
        }
        let rep = (0..data.len())
            .filter(|&i| clustering.assignments[i] == c)
            .min_by(|&a, &b| {
                let da: f64 = data[a]
                    .iter()
                    .zip(&clustering.centroids[c])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                let db: f64 = data[b]
                    .iter()
                    .zip(&clustering.centroids[c])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("cluster is nonempty");
        intervals.push(SelectedInterval {
            index: bbv.vectors[rep].index,
            weight: size as f64 / total,
        });
    }
    intervals.sort_by_key(|s| s.index);

    SimPointSelection {
        intervals,
        k: chosen_k,
        population: data.len(),
        interval: config.interval,
    }
}

/// Runs the full SimPoint flow against a machine: offline selection, then
/// detailed simulation of each representative interval (fast-forwarding
/// functionally, with **no** warming — SimPoint's large intervals are its
/// warm-up), combined by cluster weights.
pub fn estimate_cpi(
    sim: &SmartsSim,
    bench: &Benchmark,
    config: &SimPointConfig,
) -> SimPointEstimate {
    let t0 = Instant::now();
    let selection = select(bench, config);
    let wall_profile = t0.elapsed();

    let t1 = Instant::now();
    let mut engine = FunctionalEngine::new(bench.load());
    let mut cpi = 0.0;
    let mut detailed = 0u64;
    let mut total_weight = 0.0;
    for sel in &selection.intervals {
        let start = sel.index * config.interval;
        engine.fast_forward(start);
        if engine.finished() {
            break;
        }
        // Cold state per representative: SimPoint performs no *functional*
        // warming; the interval's own prefix provides the warm-up (see
        // `SimPointConfig::warmup_fraction`).
        let mut warm = WarmState::new(sim.config());
        let mut pipeline = Pipeline::new(sim.config());
        let warmup = (config.interval as f64 * config.warmup_fraction) as u64;
        let w = pipeline.run(&mut warm, &mut engine, warmup, false);
        let m = pipeline.run(&mut warm, &mut engine, config.interval - warmup, true);
        if m.instructions == 0 {
            continue;
        }
        detailed += w.instructions + m.instructions;
        cpi += sel.weight * m.cpi();
        total_weight += sel.weight;
    }
    if total_weight > 0.0 {
        cpi /= total_weight;
    }
    SimPointEstimate {
        cpi,
        selection,
        detailed_instructions: detailed,
        wall_profile,
        wall_measure: t1.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn config(interval: u64, seed: u64) -> SimPointConfig {
        SimPointConfig {
            interval,
            max_k: 6,
            seed,
            ..SimPointConfig::default()
        }
    }

    #[test]
    fn selection_weights_sum_to_one() {
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let selection = select(&bench, &config(10_000, 1));
        let total: f64 = selection.intervals.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(selection.k >= 1 && selection.intervals.len() <= selection.k);
        // Indices are valid and sorted.
        let idx: Vec<u64> = selection.intervals.iter().map(|s| s.index).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| (i as usize) < selection.population));
    }

    #[test]
    fn uniform_benchmark_needs_one_cluster() {
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let selection = select(&bench, &config(20_000, 1));
        // One phase for the loop; BIC may add a second cluster for the
        // prologue interval, but never more.
        assert!(
            selection.k <= 2,
            "a steady loop is at most two phases, got {}",
            selection.k
        );
    }

    #[test]
    fn estimate_close_for_uniform_benchmark() {
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let estimate = estimate_cpi(&sim, &bench, &config(20_000, 1));
        let reference = sim.reference(&bench, 1000);
        let err = (estimate.cpi - reference.cpi).abs() / reference.cpi;
        assert!(err < 0.10, "SimPoint err {err} on a uniform benchmark");
    }

    #[test]
    fn estimate_is_deterministic() {
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("branchy-1").unwrap().scaled(0.03);
        let a = estimate_cpi(&sim, &bench, &config(10_000, 9));
        let b = estimate_cpi(&sim, &bench, &config(10_000, 9));
        assert_eq!(a.cpi, b.cpi);
    }
}

//! Ablation benchmarks of the SMARTS design choices DESIGN.md calls out:
//! sampling-unit size U, warming mode, and detailed-warming length W.
//!
//! These measure the *cost* side of each knob (wall-clock of a complete
//! sampling run); the accuracy side is reported by the `table4`/`table5`
//! binaries.

use smarts_bench::timing::bench;
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_uarch::MachineConfig;
use smarts_workloads::find;

fn bench_unit_size() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench_case = find("hashp-2").expect("suite benchmark").scaled(0.2);
    // Equal measured instructions (n·U = 20,000) at different granularity.
    for (u, n) in [(100u64, 200u64), (1000, 20), (10_000, 2)] {
        let params = SamplingParams::for_sample_size(
            bench_case.approx_len(),
            u,
            2000,
            Warming::Functional,
            n,
            0,
        )
        .expect("valid parameters");
        bench("unit_size_ablation", &format!("U={u}"), 0, || {
            sim.sample(&bench_case, &params).expect("sampling succeeds")
        });
    }
}

fn bench_warming_mode() {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench_case = find("hashp-2").expect("suite benchmark").scaled(0.2);
    let cases = [
        ("none_w0", Warming::None, 0u64),
        ("none_w16k", Warming::None, 16_000),
        ("functional_w2k", Warming::Functional, 2_000),
    ];
    for (label, warming, w) in cases {
        let params =
            SamplingParams::for_sample_size(bench_case.approx_len(), 1000, w, warming, 20, 0)
                .expect("valid parameters");
        bench("warming_ablation", label, 0, || {
            sim.sample(&bench_case, &params).expect("sampling succeeds")
        });
    }
}

fn main() {
    println!(
        "sampling_ablation ({} samples/case, median)",
        smarts_bench::timing::SAMPLES
    );
    bench_unit_size();
    bench_warming_mode();
}

//! Ablation benchmarks of the SMARTS design choices DESIGN.md calls out:
//! sampling-unit size U, warming mode, and detailed-warming length W.
//!
//! These measure the *cost* side of each knob (wall-clock of a complete
//! sampling run); the accuracy side is reported by the `table4`/`table5`
//! binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_uarch::MachineConfig;
use smarts_workloads::find;

fn bench_unit_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_size_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("hashp-2").expect("suite benchmark").scaled(0.2);
    // Equal measured instructions (n·U = 20,000) at different granularity.
    for (u, n) in [(100u64, 200u64), (1000, 20), (10_000, 2)] {
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            u,
            2000,
            Warming::Functional,
            n,
            0,
        )
        .expect("valid parameters");
        group.bench_with_input(BenchmarkId::from_parameter(u), &params, |b, params| {
            b.iter(|| sim.sample(&bench, params).expect("sampling succeeds"));
        });
    }
    group.finish();
}

fn bench_warming_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("warming_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("hashp-2").expect("suite benchmark").scaled(0.2);
    let cases = [
        ("none_w0", Warming::None, 0u64),
        ("none_w16k", Warming::None, 16_000),
        ("functional_w2k", Warming::Functional, 2_000),
    ];
    for (label, warming, w) in cases {
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            w,
            warming,
            20,
            0,
        )
        .expect("valid parameters");
        group.bench_with_input(BenchmarkId::from_parameter(label), &params, |b, params| {
            b.iter(|| sim.sample(&bench, params).expect("sampling succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unit_size, bench_warming_mode);
criterion_main!(benches);

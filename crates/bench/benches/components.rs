//! Microbenchmarks of the simulator's hot components: the functional
//! step, cache access, TLB access, and branch-predictor lookup/update.

use smarts_bench::timing::bench;
use smarts_isa::{reg, Asm, Cpu, Memory, OpClass};
use smarts_uarch::{BranchPredictor, Cache, MachineConfig, Tlb};

fn bench_cpu_step() {
    let mut a = Asm::new();
    a.li(reg::S0, 0x8000);
    let top = a.label();
    a.bind(top).expect("label binds once");
    a.addi(reg::T0, reg::T0, 1);
    a.ld(reg::T1, reg::S0, 0);
    a.add(reg::T2, reg::T0, reg::T1);
    a.sd(reg::T2, reg::S0, 8);
    a.j(top);
    let program = a.finish().expect("assembles");

    bench("cpu_step", "mixed_loop_10k", 10_000, || {
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        cpu.run(&program, &mut mem, 10_000).expect("runs")
    });
}

fn bench_cache() {
    let cfg = MachineConfig::eight_way();
    let mut cache = Cache::new(cfg.l1d);
    cache.access(0, false);
    bench("cache_access", "l1d_hit_streak", 10_000, || {
        let mut sum = 0u32;
        for _ in 0..10_000 {
            sum += cache.access(0, false).hit as u32;
        }
        sum
    });
    let mut cache = Cache::new(cfg.l1d);
    let mut addr = 0u64;
    bench("cache_access", "l1d_miss_stride", 10_000, move || {
        let mut sum = 0u32;
        for _ in 0..10_000 {
            addr = addr.wrapping_add(1 << 16);
            sum += cache.access(addr, false).hit as u32;
        }
        sum
    });
}

fn bench_tlb() {
    let cfg = MachineConfig::eight_way();
    let mut tlb = Tlb::new(cfg.dtlb);
    tlb.access(0);
    bench("tlb_access", "dtlb_hit_streak", 10_000, || {
        let mut sum = 0u32;
        for _ in 0..10_000 {
            sum += tlb.access(4096) as u32;
        }
        sum
    });
}

fn bench_bpred() {
    let cfg = MachineConfig::eight_way();
    let mut bp = BranchPredictor::new(cfg.bpred);
    bench("branch_predictor", "predict_update_loop", 10_000, || {
        for i in 0..10_000u64 {
            let pc = i % 64;
            let taken = i % 3 != 0;
            let _ = bp.predict(pc, OpClass::CondBranch, None);
            bp.update(pc, OpClass::CondBranch, taken, pc + 1);
        }
    });
}

fn main() {
    println!(
        "components ({} samples/case, median)",
        smarts_bench::timing::SAMPLES
    );
    bench_cpu_step();
    bench_cache();
    bench_tlb();
    bench_bpred();
}

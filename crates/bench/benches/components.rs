//! Microbenchmarks of the simulator's hot components: the functional
//! step, cache access, TLB access, and branch-predictor lookup/update.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smarts_isa::{reg, Asm, Cpu, Memory, OpClass};
use smarts_uarch::{BranchPredictor, Cache, MachineConfig, Tlb};

fn bench_cpu_step(c: &mut Criterion) {
    let mut a = Asm::new();
    a.li(reg::S0, 0x8000);
    let top = a.label();
    a.bind(top).expect("label binds once");
    a.addi(reg::T0, reg::T0, 1);
    a.ld(reg::T1, reg::S0, 0);
    a.add(reg::T2, reg::T0, reg::T1);
    a.sd(reg::T2, reg::S0, 8);
    a.j(top);
    let program = a.finish().expect("assembles");

    let mut group = c.benchmark_group("cpu_step");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("mixed_loop_10k", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new();
            let mut mem = Memory::new();
            cpu.run(&program, &mut mem, 10_000).expect("runs")
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = MachineConfig::eight_way();
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1d_hit_streak", |b| {
        let mut cache = Cache::new(cfg.l1d);
        cache.access(0, false);
        b.iter(|| {
            let mut sum = 0u32;
            for _ in 0..10_000 {
                sum += cache.access(0, false).hit as u32;
            }
            sum
        });
    });
    group.bench_function("l1d_miss_stride", |b| {
        let mut cache = Cache::new(cfg.l1d);
        let mut addr = 0u64;
        b.iter(|| {
            let mut sum = 0u32;
            for _ in 0..10_000 {
                addr = addr.wrapping_add(1 << 16);
                sum += cache.access(addr, false).hit as u32;
            }
            sum
        });
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let cfg = MachineConfig::eight_way();
    let mut group = c.benchmark_group("tlb_access");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("dtlb_hit_streak", |b| {
        let mut tlb = Tlb::new(cfg.dtlb);
        tlb.access(0);
        b.iter(|| {
            let mut sum = 0u32;
            for _ in 0..10_000 {
                sum += tlb.access(4096) as u32;
            }
            sum
        });
    });
    group.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let cfg = MachineConfig::eight_way();
    let mut group = c.benchmark_group("branch_predictor");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("predict_update_loop", |b| {
        let mut bp = BranchPredictor::new(cfg.bpred);
        b.iter(|| {
            for i in 0..10_000u64 {
                let pc = i % 64;
                let taken = i % 3 != 0;
                let _ = bp.predict(pc, OpClass::CondBranch, None);
                bp.update(pc, OpClass::CondBranch, taken, pc + 1);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_step, bench_cache, bench_tlb, bench_bpred);
criterion_main!(benches);

//! Benchmarks of the three simulator modes' throughput — the measured
//! S_F / S_FW / S_D ratios behind Section 3.4 and Table 6.
//!
//! Run with `cargo bench --bench simulator_rates`; throughput is reported
//! in Melem/s where an element is one simulated instruction (i.e. MIPS).

use smarts_bench::timing::bench;
use smarts_core::FunctionalEngine;
use smarts_uarch::{MachineConfig, Pipeline, WarmState};
use smarts_workloads::find;

const FUNCTIONAL_INSTRUCTIONS: u64 = 200_000;
const DETAILED_INSTRUCTIONS: u64 = 30_000;

fn main() {
    println!(
        "simulator_rates ({} samples/case, median)",
        smarts_bench::timing::SAMPLES
    );
    for name in ["loopy-1", "hashp-2", "chase-2"] {
        let bench_case = find(name).expect("suite benchmark").scaled(1.0);

        bench("functional", name, FUNCTIONAL_INSTRUCTIONS, || {
            let mut engine = FunctionalEngine::new(bench_case.load());
            engine.fast_forward(FUNCTIONAL_INSTRUCTIONS)
        });

        let cfg = MachineConfig::eight_way();
        bench("functional_warming", name, FUNCTIONAL_INSTRUCTIONS, || {
            let mut engine = FunctionalEngine::new(bench_case.load());
            let mut warm = WarmState::new(&cfg);
            engine.fast_forward_warming(FUNCTIONAL_INSTRUCTIONS, &mut warm)
        });

        bench("detailed_8way", name, DETAILED_INSTRUCTIONS, || {
            let mut engine = FunctionalEngine::new(bench_case.load());
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            pipeline.run(&mut warm, &mut engine, DETAILED_INSTRUCTIONS, true)
        });

        let cfg16 = MachineConfig::sixteen_way();
        bench("detailed_16way", name, DETAILED_INSTRUCTIONS, || {
            let mut engine = FunctionalEngine::new(bench_case.load());
            let mut warm = WarmState::new(&cfg16);
            let mut pipeline = Pipeline::new(&cfg16);
            pipeline.run(&mut warm, &mut engine, DETAILED_INSTRUCTIONS, true)
        });
    }
}

//! Criterion benchmarks of the three simulator modes' throughput — the
//! measured S_F / S_FW / S_D ratios behind Section 3.4 and Table 6.
//!
//! Run with `cargo bench --bench simulator_rates`; throughput is reported
//! in Melem/s where an element is one simulated instruction (i.e. MIPS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use smarts_core::FunctionalEngine;
use smarts_uarch::{MachineConfig, Pipeline, WarmState};
use smarts_workloads::find;

const FUNCTIONAL_INSTRUCTIONS: u64 = 200_000;
const DETAILED_INSTRUCTIONS: u64 = 30_000;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    for name in ["loopy-1", "hashp-2", "chase-2"] {
        let bench = find(name).expect("suite benchmark").scaled(1.0);

        group.throughput(Throughput::Elements(FUNCTIONAL_INSTRUCTIONS));
        group.bench_with_input(
            BenchmarkId::new("functional", name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut engine = FunctionalEngine::new(bench.load());
                    engine.fast_forward(FUNCTIONAL_INSTRUCTIONS)
                });
            },
        );

        let cfg = MachineConfig::eight_way();
        group.bench_with_input(
            BenchmarkId::new("functional_warming", name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut engine = FunctionalEngine::new(bench.load());
                    let mut warm = WarmState::new(&cfg);
                    engine.fast_forward_warming(FUNCTIONAL_INSTRUCTIONS, &mut warm)
                });
            },
        );

        group.throughput(Throughput::Elements(DETAILED_INSTRUCTIONS));
        group.bench_with_input(
            BenchmarkId::new("detailed_8way", name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut engine = FunctionalEngine::new(bench.load());
                    let mut warm = WarmState::new(&cfg);
                    let mut pipeline = Pipeline::new(&cfg);
                    pipeline.run(&mut warm, &mut engine, DETAILED_INSTRUCTIONS, true)
                });
            },
        );

        let cfg16 = MachineConfig::sixteen_way();
        group.bench_with_input(
            BenchmarkId::new("detailed_16way", name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let mut engine = FunctionalEngine::new(bench.load());
                    let mut warm = WarmState::new(&cfg16);
                    let mut pipeline = Pipeline::new(&cfg16);
                    pipeline.run(&mut warm, &mut engine, DETAILED_INSTRUCTIONS, true)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);

//! Figure 7: SMARTS energy-per-instruction results with the initial
//! sample size (8-way).
//!
//! Same presentation as Figure 6 but for EPI. The paper's claims to
//! check: EPI intervals are tighter than CPI intervals (less variability
//! in energy), and actual EPI errors stay within the interval except
//! where warming bias dominates.

use smarts_bench::{banner, pct, upct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim};
use smarts_stats::Confidence;
use smarts_uarch::MachineConfig;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 7",
        "SMARTS EPI (nJ/instruction) error and 99.7% confidence interval (8-way, n_init run)",
    );
    let cache = RefCache::new();
    let conf = Confidence::THREE_SIGMA;
    let n_init = if args.quick { 15 } else { 60 };
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());

    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "benchmark", "EPI (nJ)", "actual err", "interval", "V̂_EPI", "V̂_CPI"
    );
    let mut rows = Vec::new();
    for bench in args.suite() {
        let reference = cache.get(&sim, &bench, 1000);
        // Offset 1 skips the cold unit at instruction 0 (weight 1/n at our
        // scale vs the paper's 1/10,000; EXPERIMENTS.md caveat 3).
        let params = SamplingParams::paper_defaults(&cfg, bench.approx_len(), n_init)
            .expect("valid parameters")
            .with_offset(1)
            .expect("interval exceeds 1");
        let report = sim.sample(&bench, &params).expect("sampling succeeds");
        let epi = report.epi();
        rows.push((
            bench.clone(),
            epi.mean(),
            (epi.mean() - reference.epi) / reference.epi,
            epi.achieved_epsilon(conf).expect("valid confidence"),
            epi.coefficient_of_variation(),
            report.cpi().coefficient_of_variation(),
        ));
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite intervals"));
    let shown = rows.len().min(12);
    for (bench, epi, err, interval, v_epi, v_cpi) in &rows[..shown] {
        println!(
            "{:<12}{:>12.2}{:>12}{:>12}{:>14.3}{:>14.3}",
            bench.name(),
            epi,
            pct(*err),
            format!("±{}", upct(*interval)),
            v_epi,
            v_cpi
        );
    }
    if rows.len() > shown {
        let rest: f64 =
            rows[shown..].iter().map(|r| r.2.abs()).sum::<f64>() / (rows.len() - shown) as f64;
        println!("{:<12}{:>12}{:>12}", "avg. rest", "-", upct(rest));
    }
    let mean_abs: f64 = rows.iter().map(|r| r.2.abs()).sum::<f64>() / rows.len() as f64;
    let tighter = rows.iter().filter(|r| r.4 <= r.5).count();
    println!();
    println!("mean |actual EPI error| = {}", upct(mean_abs));
    println!(
        "EPI variation at or below CPI variation on {}/{} benchmarks",
        tighter,
        rows.len()
    );
    println!();
    println!("(paper: EPI intervals tighter than CPI's; average EPI error 0.59%)");
}

//! CI store-residency regression guard: the lazy-replay memory win and
//! decode rate must not regress.
//!
//! Reads the checked-in reference `results/bench_store_mem.json` (this
//! binary never writes it — the `store_mem` binary owns the file and CI
//! runs this guard *before* re-generating it), rebuilds the reference
//! store from its recorded scale and unit count, and fails when any of
//!
//! * the lazy-replay residency ratio (eager resident bytes over lazy
//!   peak bytes) falls below the hard [`RATIO_FLOOR`] — the ≥10×
//!   contract lazy replay was built for,
//! * the ratio drops more than [`TOLERANCE`] below its reference, or
//! * the rolling-cursor decode rate (measured MIPS) drops more than
//!   [`TOLERANCE`] below its reference on every attempt.
//!
//! `--quick` shrinks the rebuilt store (same scale-per-unit design,
//! fewer units): the ratio floor still binds because the lazy bound is
//! O(workers), not O(units).

use smarts_bench::timing::time;
use smarts_ckpt::{CkptWriter, IsaId, MappedStore, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{replay_store_mapped, Executor};
use smarts_uarch::MachineConfig;

/// Largest tolerated relative drop below the reference for decode MIPS
/// and for the residency ratio.
const TOLERANCE: f64 = 0.20;

/// Hard floor on eager-over-lazy resident bytes, regardless of the
/// reference: the acceptance contract of lazy store replay.
const RATIO_FLOOR: f64 = 10.0;

/// Total decode-rate measurement attempts. Between-invocation host
/// noise can depress one batch; a regression only counts when *every*
/// attempt lands below the tolerance.
const ATTEMPTS: u32 = 3;

/// Replay workers — must match the `store_mem` binary for the lazy
/// peak figure to be comparable.
const JOBS: usize = 2;

const UNIT_SIZE: u64 = 1000;
const DETAILED_WARMING: u64 = 2000;

struct Reference {
    benchmark: String,
    scale: f64,
    units: u64,
    residency_ratio: f64,
    decode_mips: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("store_mem_guard: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_store_mem.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let reference =
        parse_reference(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));

    smarts_bench::banner(
        "Store-residency guard",
        &format!(
            "fails if the lazy-replay residency ratio falls below {RATIO_FLOOR:.0}x (or \
             {:.0}% below results/bench_store_mem.json) or decode MIPS regresses {:.0}%",
            TOLERANCE * 100.0,
            TOLERANCE * 100.0
        ),
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    // Quick mode rebuilds a shorter store with the same per-unit design:
    // scale and units shrink together so the sampling interval (and the
    // per-unit delta shape) stay those of the reference.
    let (scale, units) = if args.quick {
        let shrink = (reference.units as f64 / 400.0).max(1.0);
        (
            reference.scale / shrink,
            (reference.units as f64 / shrink) as u64,
        )
    } else {
        (reference.scale, reference.units)
    };
    let bench = smarts_workloads::find(&reference.benchmark)
        .unwrap_or_else(|| fail(&format!("reference probe {} unknown", reference.benchmark)))
        .scaled(scale);
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        UNIT_SIZE,
        DETAILED_WARMING,
        Warming::Functional,
        units,
        0,
    )
    .unwrap_or_else(|e| fail(&format!("bad parameters: {e}")));
    let meta = StoreMeta {
        params,
        benchmark: reference.benchmark.clone(),
        scale,
        isa: IsaId::Builtin,
    };

    // Rebuild the store (untimed) and accumulate the eager footprint.
    let store_path =
        std::env::temp_dir().join(format!("smarts-storemem-guard-{}.ckpt", std::process::id()));
    let mut writer = CkptWriter::create(&store_path, &cfg, &meta)
        .unwrap_or_else(|e| fail(&format!("cannot create scratch store: {e}")));
    let mut eager_bytes = 0u64;
    sim.stream_checkpoints(bench.load(), &params, |checkpoint| {
        eager_bytes += checkpoint.approx_resident_bytes();
        writer.append(&checkpoint).is_ok()
    })
    .unwrap_or_else(|e| fail(&format!("warming failed: {e}")));
    writer
        .finish()
        .unwrap_or_else(|e| fail(&format!("cannot finish scratch store: {e}")));
    let store = MappedStore::open(&store_path, &cfg)
        .unwrap_or_else(|e| fail(&format!("cannot open scratch store: {e}")));
    let decoded_units = store.len() as u64;

    // Residency: one real lazy replay.
    let executor = Executor::new(JOBS).unwrap_or_else(|e| fail(&format!("executor: {e}")));
    let replayed = replay_store_mapped(&executor, &sim, &store)
        .unwrap_or_else(|e| fail(&format!("lazy replay failed: {e}")));
    if let Some(damage) = &replayed.damage {
        fail(&format!("fresh store reported damage: {damage}"));
    }
    let lazy_peak = replayed
        .report
        .pipeline
        .as_ref()
        .unwrap_or_else(|| fail("lazy replay reported no pipeline stats"))
        .peak_resident_bytes
        .max(1);
    let ratio = eager_bytes as f64 / lazy_peak as f64;
    // Eager residency grows O(units) while the lazy peak is O(workers),
    // so the achievable ratio scales with the rebuilt store's unit
    // count; rescale the reference before comparing (quick mode).
    let expected_ratio =
        reference.residency_ratio * (decoded_units as f64 / reference.units as f64);
    let ratio_ok = ratio >= RATIO_FLOOR && ratio >= expected_ratio * (1.0 - TOLERANCE);

    // Decode-rate regression gate, best-of-ATTEMPTS.
    let mut mips = 0.0f64;
    let mut mips_ok = false;
    for _ in 0..ATTEMPTS {
        let decode = time(|| {
            let mut cursor = store.cursor();
            for index in 0..store.len() {
                let flat = cursor.flat_at(index).expect("intact record");
                flat.rebuild(&cfg).expect("store geometry matches");
            }
        });
        let attempt = (decoded_units * UNIT_SIZE) as f64 / 1e6 / decode.as_secs_f64();
        mips = mips.max(attempt);
        if mips >= reference.decode_mips * (1.0 - TOLERANCE) {
            mips_ok = true;
            break;
        }
    }
    std::fs::remove_file(&store_path).ok();

    println!(
        "{:<12} {:>6} {:>11} {:>11} {:>12} {:>12}  verdict",
        "benchmark", "units", "ref ratio", "now ratio", "ref MIPS", "now MIPS"
    );
    println!(
        "{:<12} {:>6} {:>10.0}x {:>10.0}x {:>12.1} {:>12.1}  {}",
        reference.benchmark,
        decoded_units,
        expected_ratio,
        ratio,
        reference.decode_mips,
        mips,
        match (ratio_ok, mips_ok) {
            (true, true) => "ok",
            (false, _) => "RATIO REGRESSED",
            (_, false) => "DECODE REGRESSED",
        }
    );
    if !ratio_ok {
        eprintln!(
            "\nlazy-replay residency ratio {ratio:.0}x fell below the guard \
             (floor {RATIO_FLOOR:.0}x, unit-scaled reference {expected_ratio:.0}x)"
        );
        std::process::exit(1);
    }
    if !mips_ok {
        eprintln!(
            "\nlazy decode rate regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nresidency ratio and decode rate within the guard");
}

/// Extracts the single reference row. Hand-rolled (the workspace builds
/// offline, no serde): scans for the keys the `store_mem` binary writes.
fn parse_reference(text: &str) -> Result<Reference, String> {
    let mut benchmark = None;
    let mut scale = None;
    let mut units = None;
    let mut ratio = None;
    let mut mips = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            benchmark = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = key_value(line, "scale") {
            scale = Some(value.parse().map_err(|_| format!("bad scale `{value}`"))?);
        } else if let Some(value) = key_value(line, "units") {
            units = Some(value.parse().map_err(|_| format!("bad units `{value}`"))?);
        } else if let Some(value) = key_value(line, "residency_ratio") {
            ratio = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad residency_ratio `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "decode_mips") {
            mips = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad decode_mips `{value}`"))?,
            );
        }
    }
    let reference = Reference {
        benchmark: benchmark.ok_or("missing benchmark")?,
        scale: scale.ok_or("missing scale")?,
        units: units.ok_or("missing units")?,
        residency_ratio: ratio.ok_or("missing residency_ratio")?,
        decode_mips: mips.ok_or("missing decode_mips")?,
    };
    if !(reference.decode_mips.is_finite() && reference.decode_mips > 0.0) {
        return Err("non-positive decode_mips".into());
    }
    if !(reference.residency_ratio.is_finite() && reference.residency_ratio > 0.0) {
        return Err("non-positive residency_ratio".into());
    }
    Ok(reference)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

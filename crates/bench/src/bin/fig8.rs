//! Figure 8: comparison of SMARTS with SimPoint (8-way).
//!
//! Runs both estimators over the suite and reports per-benchmark CPI
//! error against the full-detail reference, plus mean runtimes. The
//! paper's claims to check:
//!
//! * SimPoint's mean error is higher (3.7% vs 0.6%) and its worst case
//!   far higher (−14.3% on gcc-2, the basic-block-vs-locality failure
//!   mode — our `phased-*` kernels);
//! * SimPoint can be somewhat faster per run (≈1.8×), but offers no
//!   confidence statement.

use smarts_bench::{banner, pct, upct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim};
use smarts_simpoint::{estimate_cpi, SimPointConfig};
use smarts_uarch::MachineConfig;
use std::time::Duration;

fn main() {
    let args = HarnessArgs::parse();
    banner("Figure 8", "CPI error: SimPoint vs SMARTS (8-way)");
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let cache = RefCache::new();
    let n = if args.quick { 15 } else { 60 };

    println!(
        "{:<12}{:>14}{:>14}{:>12}{:>14}",
        "benchmark", "SimPoint err", "SMARTS err", "SP k", "SMARTS ±CI"
    );
    let mut sp_errors = Vec::new();
    let mut sm_errors = Vec::new();
    let mut sp_wall = Duration::ZERO;
    let mut sm_wall = Duration::ZERO;
    let mut rows = Vec::new();
    for bench in args.suite() {
        let truth = cache.get(&sim, &bench, 1000).cpi;

        let sp_config = SimPointConfig {
            interval: (bench.approx_len() / 40).clamp(10_000, 200_000),
            ..SimPointConfig::default()
        };
        let sp = estimate_cpi(&sim, &bench, &sp_config);
        let sp_err = (sp.cpi - truth) / truth;
        sp_wall += sp.wall_profile + sp.wall_measure;

        // Offset 1 skips the cold unit at instruction 0 (EXPERIMENTS.md
        // caveat 3).
        let params = SamplingParams::paper_defaults(&cfg, bench.approx_len(), n)
            .expect("valid parameters")
            .with_offset(1)
            .expect("interval exceeds 1");
        let report = sim.sample(&bench, &params).expect("sampling succeeds");
        let sm_err = (report.cpi().mean() - truth) / truth;
        let interval = report
            .cpi()
            .achieved_epsilon(smarts_stats::Confidence::THREE_SIGMA)
            .expect("valid confidence");
        sm_wall += report.wall_total();

        sp_errors.push(sp_err.abs());
        sm_errors.push(sm_err.abs());
        rows.push((
            bench.name().to_string(),
            sp_err,
            sm_err,
            sp.selection.k,
            interval,
        ));
    }
    rows.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite errors"));
    for (name, sp_err, sm_err, k, interval) in &rows {
        println!(
            "{:<12}{:>14}{:>14}{:>12}{:>14}",
            name,
            pct(*sp_err),
            pct(*sm_err),
            k,
            format!("±{}", upct(*interval))
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    println!();
    println!(
        "mean |error|: SimPoint {} vs SMARTS {}",
        upct(mean(&sp_errors)),
        upct(mean(&sm_errors))
    );
    println!(
        "worst |error|: SimPoint {} vs SMARTS {}",
        upct(max(&sp_errors)),
        upct(max(&sm_errors))
    );
    println!(
        "mean runtime per benchmark: SimPoint {:.2}s vs SMARTS {:.2}s",
        sp_wall.as_secs_f64() / rows.len() as f64,
        sm_wall.as_secs_f64() / rows.len() as f64,
    );
    println!();
    println!("(paper: SimPoint mean 3.7% / worst −14.3%; SMARTS mean 0.6%; SimPoint ≈1.8× faster");
    println!(" per run but with no confidence measure — the phased-* rows show the failure mode)");
}

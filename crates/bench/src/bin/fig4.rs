//! Figure 4: modeled SMARTS simulation rate as a function of the detailed
//! warming length W.
//!
//! Reproduces the three curves of the figure from the Section 3.4 model —
//! detailed-warming-only at S_D = 1/60 (today) and 1/600 (future), and
//! functional warming at S_FW = 0.55 — then recomputes them with the
//! S_D/S_FW ratios *measured on this machine* by timing the three
//! simulator modes on a probe benchmark.

use smarts_bench::{banner, HarnessArgs};
use smarts_core::{SmartsSim, SpeedupModel};
use smarts_uarch::MachineConfig;
use smarts_workloads::find;

const N: f64 = 10_000.0;
const U: f64 = 1_000.0;
const STREAM: f64 = 10e9; // a gcc-1-like multi-billion-instruction stream
const W_POINTS: &[f64] = &[0.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7];

fn print_curves(model_today: SpeedupModel, model_future: SpeedupModel, w_fixed: f64) {
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "W", "S_D=1/60", "S_D=1/600", "S_FW (W=2000)"
    );
    for &w in W_POINTS {
        let today = model_today.detailed_warming_rate(N, U, w, STREAM);
        let future = model_future.detailed_warming_rate(N, U, w, STREAM);
        // Functional warming bounds W to w_fixed regardless of the sweep.
        let fw = model_today.functional_warming_rate(N, U, w_fixed, STREAM);
        println!("{:>10.0} {:>14.4} {:>14.4} {:>14.4}", w, today, future, fw);
    }
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 4",
        "Modeled SMARTS simulation rate vs detailed warming W (n=10,000, U=1000, 10G stream)",
    );

    println!("--- paper parameters (S_D = 1/60 and 1/600, S_FW = 0.55) ---");
    print_curves(SpeedupModel::paper(), SpeedupModel::future(), 2000.0);

    // Measure this machine's actual ratios on a probe benchmark.
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let probe = find("hashp-2")
        .expect("probe benchmark")
        .scaled(args.scale.min(0.5));
    let (t_func, n_func) = sim.time_functional(&probe);
    let (t_fw, _) = sim.time_functional_warming(&probe);
    let reference = sim.reference(&probe, 1000);
    let mips_f = n_func as f64 / t_func.as_secs_f64() / 1e6;
    let s_fw = t_func.as_secs_f64() / t_fw.as_secs_f64();
    let s_d = t_func.as_secs_f64() / reference.wall.as_secs_f64();
    println!();
    println!("--- measured on this host (probe: {}) ---", probe.name());
    println!(
        "S_F = {mips_f:.1} MIPS, S_FW = {s_fw:.3}, S_D = 1/{:.0}",
        1.0 / s_d
    );
    let measured = SpeedupModel { s_d, s_fw };
    print_curves(
        measured,
        SpeedupModel {
            s_d: s_d / 10.0,
            s_fw,
        },
        2000.0,
    );
    println!();
    println!("(shape check: rate collapses toward S_D as W grows — earlier and harder for the");
    println!(
        " slower detailed simulator — while the functional-warming curve stays flat near S_FW)"
    );
}

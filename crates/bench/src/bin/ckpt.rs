//! Checkpoint-store throughput: the persistence cost of warm-once,
//! replay-many.
//!
//! The store's value proposition is that one functional-warming pass is
//! amortized across every later experiment — which only holds if writing
//! the store is cheap next to warming and reading it back is cheap next
//! to detailed replay. For each probe benchmark this binary warms once
//! (untimed), then measures with the in-tree median-of-7 harness:
//!
//! * **write** — MiB/s appending every unit checkpoint (delta encoding
//!   plus CRC; the producer-side overhead of `--save-checkpoints`),
//! * **read** — MiB/s and units/s decoding the whole store back (the
//!   producer's critical path under `--from-checkpoints`),
//! * **compression** — resident checkpoint bytes
//!   ([`UnitCheckpoint::approx_resident_bytes`]) over file bytes: what
//!   delta + varint + RLE buy against the in-memory library footprint.
//!
//! Results are written to `results/bench_ckpt.json`, the baseline the
//! `ckpt_guard` binary compares against in CI. The guard re-derives the
//! same stores from each row's recorded scale and unit count.

use smarts_bench::timing::{self, time};
use smarts_ckpt::{CkptReader, CkptWriter, IsaId, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, UnitCheckpoint, Warming};
use smarts_uarch::MachineConfig;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Same probe set as the warming and detail benches: the Figure 4 probe
/// plus one benchmark per pressure class. Page-touching behaviour
/// (hashing, pointer chasing, streaming, branching) is what stresses the
/// delta encoder differently.
const PROBES: [&str; 4] = ["hashp-2", "loopy-1", "chase-2", "branchy-1"];

struct Row {
    name: String,
    scale: f64,
    units: u64,
    resident_bytes: u64,
    file_bytes: u64,
    write: Duration,
    read: Duration,
}

impl Row {
    fn compression(&self) -> f64 {
        self.resident_bytes as f64 / self.file_bytes as f64
    }

    fn write_mibps(&self) -> f64 {
        self.file_bytes as f64 / (1024.0 * 1024.0) / self.write.as_secs_f64()
    }

    fn read_mibps(&self) -> f64 {
        self.file_bytes as f64 / (1024.0 * 1024.0) / self.read.as_secs_f64()
    }

    fn read_units_per_s(&self) -> f64 {
        self.units as f64 / self.read.as_secs_f64()
    }
}

fn store_path() -> PathBuf {
    std::env::temp_dir().join(format!("smarts-bench-ckpt-{}.ckpt", std::process::id()))
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let (scale, n) = if args.quick { (0.02, 10) } else { (0.1, 50) };
    smarts_bench::banner(
        "Checkpoint-store throughput",
        "delta-encoded store write/read bandwidth and compression vs the resident library",
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let probes: Vec<String> = match &args.bench {
        Some(name) => vec![name.clone()],
        None if args.quick => vec![PROBES[0].to_string()],
        None => PROBES.iter().map(|s| s.to_string()).collect(),
    };

    println!(
        "{:<12} {:>6} {:>12} {:>11} {:>8} {:>11} {:>11} {:>11}",
        "benchmark", "units", "resident", "file", "ratio", "write MiB/s", "read MiB/s", "units/s"
    );
    let path = store_path();
    let mut rows = Vec::new();
    for name in &probes {
        let bench = smarts_workloads::find(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            .scaled(scale);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            n,
            0,
        )
        .expect("valid sampling parameters");

        // Warm once, outside the timed region: the store exists so this
        // pass is *not* repeated, and the bench measures only its cost.
        let mut checkpoints = Vec::new();
        sim.stream_checkpoints(bench.load(), &params, |checkpoint| {
            checkpoints.push(checkpoint);
            true
        })
        .expect("warming pass");
        let resident_bytes: u64 = checkpoints
            .iter()
            .map(UnitCheckpoint::approx_resident_bytes)
            .sum();
        let meta = StoreMeta {
            params,
            benchmark: name.clone(),
            scale,
            isa: IsaId::Builtin,
        };

        let mut file_bytes = 0u64;
        let write = time(|| {
            let mut writer = CkptWriter::create(&path, &cfg, &meta).expect("create store");
            for checkpoint in &checkpoints {
                writer.append(checkpoint).expect("append");
            }
            file_bytes = writer.finish().expect("finish").bytes;
        });
        let mut decoded = 0u64;
        let read = time(|| {
            let mut reader = CkptReader::open(&path, &cfg).expect("open store");
            while let Some(next) = reader.next_checkpoint() {
                next.expect("intact record");
            }
            decoded = reader.records_read();
        });
        assert_eq!(
            decoded,
            checkpoints.len() as u64,
            "{name}: the bench is only valid over a full decode"
        );

        let row = Row {
            name: name.clone(),
            scale,
            units: decoded,
            resident_bytes,
            file_bytes,
            write,
            read,
        };
        println!(
            "{:<12} {:>6} {:>12} {:>11} {:>7.1}x {:>11.1} {:>11.1} {:>11.0}",
            row.name,
            row.units,
            row.resident_bytes,
            row.file_bytes,
            row.compression(),
            row.write_mibps(),
            row.read_mibps(),
            row.read_units_per_s()
        );
        rows.push(row);
    }
    std::fs::remove_file(&path).ok();
    println!();
    for row in &rows {
        println!(
            "{}: write {} / read {}",
            row.name,
            timing::pretty(row.write),
            timing::pretty(row.read)
        );
    }

    write_json(&rows).expect("write results/bench_ckpt.json");
    println!("\nwrote results/bench_ckpt.json");
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde).
fn write_json(rows: &[Row]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_ckpt.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"ckpt\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(f, "  \"results\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"benchmark\": \"{}\",", row.name)?;
        writeln!(f, "      \"scale\": {},", row.scale)?;
        writeln!(f, "      \"units\": {},", row.units)?;
        writeln!(f, "      \"resident_bytes\": {},", row.resident_bytes)?;
        writeln!(f, "      \"file_bytes\": {},", row.file_bytes)?;
        writeln!(f, "      \"compression_ratio\": {:.3},", row.compression())?;
        writeln!(f, "      \"write_mibps\": {:.3},", row.write_mibps())?;
        writeln!(
            f,
            "      \"read_units_per_s\": {:.1},",
            row.read_units_per_s()
        )?;
        writeln!(f, "      \"read_mibps\": {:.3}", row.read_mibps())?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

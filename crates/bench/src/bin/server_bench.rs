//! Job-server latency: what warm-once, replay-many buys over the wire.
//!
//! The server's value proposition is amortisation — the first job
//! against a (workload, warm geometry) pays the functional-warming
//! pass, every later job replays the committed store, and a repeat of
//! the *exact* same configuration is answered from the results cache
//! without simulating at all. This binary measures the submit→result
//! latency of all three paths on the same spec, in process (ephemeral
//! server, loopback TCP), with the in-tree median-of-7 harness:
//!
//! * **cold** — fresh store directory and fresh server per sample: the
//!   job warms, saves the store, and replays.
//! * **store** — pre-warmed directory, fresh server per sample: the
//!   in-memory results cache is empty, so the job replays the
//!   persistent store (the steady state of a new configuration against
//!   a shared store).
//! * **cache** — one server, repeated identical submissions: answered
//!   from the results cache in O(lookup), no simulation.
//!
//! Results are written to `results/bench_server.json`. Latencies
//! include the full protocol round trips (submit, status polls,
//! result), so the cache row is an upper bound on pure lookup cost.

use smarts_bench::timing::{self, time};
use smarts_server::{Client, JobSpec, Server, ServerConfig};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The Figure 4 probe benchmark: large pages, hashing access pattern —
/// a representative (not best-case) store to warm and replay.
const PROBE: &str = "hashp-2";

struct Row {
    name: String,
    spec: JobSpec,
    cold: Duration,
    store: Duration,
    cache: Duration,
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smarts-bench-server-{tag}-{}", std::process::id()))
}

/// One submit→result round trip against a running server, asserting the
/// path actually exercised matches `expect`.
fn run_job(addr: &str, spec: &JobSpec, expect: &str) {
    let mut client = Client::connect(addr).expect("connect");
    run_job_on(&mut client, spec, expect);
}

/// Same, over an already-open connection (the cache path reuses one so
/// the accept latency of a fresh connection is not billed to a lookup).
fn run_job_on(client: &mut Client, spec: &JobSpec, expect: &str) {
    let id = client.submit(spec).expect("submit");
    let end = client.watch(&id, |_| {}).expect("watch");
    assert_eq!(
        end.get("state").and_then(smarts_server::json::Json::as_str),
        Some("done")
    );
    let (source, _raw) = client.result(&id).expect("result");
    assert_eq!(source, expect, "bench must measure the {expect} path");
}

/// Binds a fresh server over `dir`, runs `f` against it, shuts it down.
fn with_server<R>(dir: &Path, f: impl FnOnce(&str) -> R) -> R {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: dir.to_path_buf(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr().to_string();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve());
    let out = f(&addr);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("server thread").expect("clean drain");
    out
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let (scale, n) = if args.quick { (0.05, 10) } else { (1.0, 30) };
    smarts_bench::banner(
        "Job-server latency",
        "submit→result wall time: cold warm vs persistent-store replay vs results-cache hit",
    );

    let name = args.bench.clone().unwrap_or_else(|| PROBE.to_string());
    let spec = JobSpec {
        bench: name.clone(),
        scale,
        n,
        unit: 1000,
        jobs: 2,
        ..JobSpec::default()
    };

    // Cold: every sample starts from nothing — empty directory, empty
    // in-memory cache — so the warming pass is inside the timed region.
    let cold_dir = temp_store("cold");
    let cold = time(|| {
        let _ = std::fs::remove_dir_all(&cold_dir);
        with_server(&cold_dir, |addr| run_job(addr, &spec, "cold"));
    });
    let _ = std::fs::remove_dir_all(&cold_dir);

    // Store hit: the directory is warmed once outside the timed region;
    // each sample restarts the server so the results cache is empty and
    // the job must replay the persistent store.
    let store_dir = temp_store("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    with_server(&store_dir, |addr| run_job(addr, &spec, "cold"));
    let store = time(|| {
        with_server(&store_dir, |addr| run_job(addr, &spec, "store"));
    });

    // Cache hit: one long-lived server, the first submission (untimed,
    // a store hit) populates the results cache, repeats are lookups.
    let cache = with_server(&store_dir, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        run_job_on(&mut client, &spec, "store");
        time(|| run_job_on(&mut client, &spec, "cache"))
    });
    let _ = std::fs::remove_dir_all(&store_dir);

    let row = Row {
        name,
        spec,
        cold,
        store,
        cache,
    };
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "cold", "store", "cache", "store ×", "cache ×"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>8.1}x {:>8.1}x",
        row.name,
        timing::pretty(row.cold),
        timing::pretty(row.store),
        timing::pretty(row.cache),
        row.cold.as_secs_f64() / row.store.as_secs_f64(),
        row.cold.as_secs_f64() / row.cache.as_secs_f64(),
    );

    write_json(&row).expect("write results/bench_server.json");
    println!("\nwrote results/bench_server.json");
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde).
fn write_json(row: &Row) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_server.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"server\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(f, "  \"results\": [")?;
    writeln!(f, "    {{")?;
    writeln!(f, "      \"benchmark\": \"{}\",", row.name)?;
    writeln!(f, "      \"scale\": {},", row.spec.scale)?;
    writeln!(f, "      \"n\": {},", row.spec.n)?;
    writeln!(f, "      \"unit\": {},", row.spec.unit)?;
    writeln!(f, "      \"cold_ms\": {:.3},", row.cold.as_secs_f64() * 1e3)?;
    writeln!(
        f,
        "      \"store_hit_ms\": {:.3},",
        row.store.as_secs_f64() * 1e3
    )?;
    writeln!(
        f,
        "      \"cache_hit_ms\": {:.3},",
        row.cache.as_secs_f64() * 1e3
    )?;
    writeln!(
        f,
        "      \"store_speedup\": {:.2},",
        row.cold.as_secs_f64() / row.store.as_secs_f64()
    )?;
    writeln!(
        f,
        "      \"cache_speedup\": {:.2}",
        row.cold.as_secs_f64() / row.cache.as_secs_f64()
    )?;
    writeln!(f, "    }}")?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

//! Sharded-warming scaling: the warming-side wall clock at
//! `warm_jobs` ∈ {1, 2, 4}, measured through the public sampling path.
//!
//! SMARTS's pipeline wall is `max(T_warm, T_detail / jobs)`; once replay
//! is parallel, the serial warming pass is the bottleneck this repo's
//! sharded-warm mode attacks. For each shard count this binary runs the
//! full sharded-warm pipeline (median of [`timing::SAMPLES`] runs by
//! producer wall), and reports:
//!
//! * **producer** — the producer-side wall (parallel warm + stitch),
//!   the quantity sharding is supposed to divide,
//! * **warm / stitch** — the two phases separately, so re-warm overhead
//!   is visible rather than folded into the speedup,
//! * **re-warm** — units and instructions spent proving boundary
//!   convergence (the price of bit-identity),
//! * the implied warming MIPS and the speedup against the one-shard run.
//!
//! Results go to `results/bench_warm_shard.json`, the baseline
//! `warm_shard_guard` compares against. The file records the exact run
//! geometry (benchmark, scale, design) so the guard re-measures the same
//! work. On a single-core host the honest result is ≈ 1× with a small
//! stitch overhead; the ≥ 2× expectation only applies where
//! `available_parallelism() ≥ 4` (the guard enforces exactly that).
//!
//! `--quick` shrinks the stream for the CI smoke run.

use smarts_bench::timing;
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{Executor, ParallelMode, ParallelReport};
use smarts_uarch::MachineConfig;
use std::io::Write as _;
use std::time::Duration;

/// Shard counts probed; the first must be 1 (the speedup baseline).
const WARM_JOBS: [usize; 3] = [1, 2, 4];

/// The probe benchmark: the Figure 4 probe, the same warming-pressure
/// workload `results/bench_warming.json` leads with.
const BENCH: &str = "hashp-2";

struct Row {
    warm_jobs: usize,
    producer: Duration,
    warm: Duration,
    stitch: Duration,
    instructions: u64,
    rewarm_units: u64,
    rewarm_instructions: u64,
}

impl Row {
    fn warming_mips(&self) -> f64 {
        self.instructions as f64 / self.producer.as_secs_f64() / 1e6
    }
}

fn measure(
    sim: &SmartsSim,
    bench: &smarts_workloads::Benchmark,
    params: &SamplingParams,
    warm_jobs: usize,
) -> Row {
    let executor = Executor::new(1)
        .expect("executor")
        .with_mode(ParallelMode::ShardedWarm)
        .with_warm_jobs(warm_jobs);
    let run = || -> ParallelReport {
        executor
            .sample(sim, bench, params)
            .expect("sharded-warm run")
    };
    // Median by producer wall: `timing::time` medians the closure's total
    // wall, but the quantity under test is the producer side only (the
    // consumer's replay work is constant across shard counts).
    std::hint::black_box(run());
    let mut reports: Vec<ParallelReport> = (0..timing::SAMPLES).map(|_| run()).collect();
    reports.sort_by_key(|r| {
        r.pipeline
            .as_ref()
            .expect("sharded-warm is pipeline-shaped")
            .producer_wall
    });
    let median = reports.swap_remove(timing::SAMPLES / 2);
    let pipeline = median.pipeline.expect("pipeline stats");
    let shard = median.shard.expect("shard stats");
    Row {
        warm_jobs,
        producer: pipeline.producer_wall,
        warm: shard.warm_wall,
        stitch: shard.stitch_wall,
        instructions: shard.shard_instructions.iter().sum(),
        rewarm_units: shard.rewarm_units(),
        rewarm_instructions: shard.rewarm_instructions,
    }
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let scale = if args.quick { 0.05 } else { 0.3 };
    let n = 30u64;
    let unit = 1000u64;
    smarts_bench::banner(
        "Sharded-warming scaling",
        "producer wall vs warm_jobs for the bit-identical sharded warm (8-way machine)",
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = smarts_workloads::find(BENCH)
        .expect("suite benchmark")
        .scaled(scale);
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        unit,
        cfg.recommended_detailed_warming(),
        Warming::Functional,
        n,
        0,
    )
    .expect("valid design");

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "benchmark {BENCH} scale {scale} (n={n}, U={unit}, W={}), {cores} core(s)\n",
        params.detailed_warming
    );
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "warm_jobs", "producer", "warm", "stitch", "warm MIPS", "re-warmed", "speedup"
    );
    let mut rows = Vec::new();
    for &warm_jobs in &WARM_JOBS {
        let row = measure(&sim, &bench, &params, warm_jobs);
        let speedup = if rows.is_empty() {
            1.0
        } else {
            let serial: &Row = &rows[0];
            serial.producer.as_secs_f64() / row.producer.as_secs_f64()
        };
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>10.2} {:>10} {:>7.2}x",
            row.warm_jobs,
            timing::pretty(row.producer),
            timing::pretty(row.warm),
            timing::pretty(row.stitch),
            row.warming_mips(),
            row.rewarm_units,
            speedup
        );
        rows.push(row);
    }

    write_json(&rows, scale, n, unit).expect("write results/bench_warm_shard.json");
    println!("\nwrote results/bench_warm_shard.json");
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde). The run geometry is recorded so
/// `warm_shard_guard` re-measures the same work the baseline measured.
fn write_json(rows: &[Row], scale: f64, n: u64, unit: u64) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_warm_shard.json")?;
    let serial = rows[0].producer.as_secs_f64();
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"warm_shard\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(f, "  \"benchmark\": \"{BENCH}\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"n\": {n},")?;
    writeln!(f, "  \"unit\": {unit},")?;
    writeln!(f, "  \"results\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"warm_jobs\": {},", row.warm_jobs)?;
        writeln!(
            f,
            "      \"producer_wall_ms\": {:.3},",
            row.producer.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "      \"warm_wall_ms\": {:.3},",
            row.warm.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "      \"stitch_wall_ms\": {:.3},",
            row.stitch.as_secs_f64() * 1e3
        )?;
        writeln!(f, "      \"instructions\": {},", row.instructions)?;
        writeln!(f, "      \"rewarm_units\": {},", row.rewarm_units)?;
        writeln!(
            f,
            "      \"rewarm_instructions\": {},",
            row.rewarm_instructions
        )?;
        writeln!(f, "      \"warming_mips\": {:.3},", row.warming_mips())?;
        writeln!(
            f,
            "      \"speedup_vs_serial\": {:.3}",
            serial / row.producer.as_secs_f64()
        )?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

//! Table 6: wall-clock runtimes for detailed, functional, and SMARTS
//! simulation of each benchmark (8-way).
//!
//! The paper reports hours on a 2 GHz Pentium 4; our streams and host
//! differ, so the *ratios* are what must reproduce:
//!
//! * detailed ≫ functional (the paper's S_D ≈ 1/60);
//! * SMARTS lands within ~2× of functional-only simulation (SMARTSim ran
//!   at ≈50% of functional speed), yielding order-of-magnitude speedups
//!   over full detail that grow with stream length.

use smarts_bench::{banner, HarnessArgs};
use smarts_core::{SamplingParams, SmartsSim};
use smarts_uarch::MachineConfig;
use std::time::Duration;

fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Table 6",
        "Runtimes for SMARTS compared to detailed and functional simulation (8-way)",
    );
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let n = if args.quick { 15 } else { 60 };

    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "benchmark", "instrs", "detailed", "functional", "SMARTS", "speedup", "SMARTS MIPS"
    );
    let mut rows = Vec::new();
    for bench in args.suite() {
        let reference = sim.reference(&bench, 1000);
        let (func, instructions) = sim.time_functional(&bench);
        let params =
            SamplingParams::paper_defaults(&cfg, bench.approx_len(), n).expect("valid parameters");
        let report = sim.sample(&bench, &params).expect("sampling succeeds");
        let smarts = report.wall_total();
        rows.push((
            bench.name().to_string(),
            instructions,
            reference.wall,
            func,
            smarts,
        ));
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.2));
    let mut sums = (Duration::ZERO, Duration::ZERO, Duration::ZERO, 0u64);
    for (name, instrs, detailed, func, smarts) in &rows {
        println!(
            "{:<12}{:>9.1}M{:>12}{:>12}{:>12}{:>11.1}x{:>12.1}",
            name,
            *instrs as f64 / 1e6,
            secs(*detailed),
            secs(*func),
            secs(*smarts),
            detailed.as_secs_f64() / smarts.as_secs_f64(),
            *instrs as f64 / smarts.as_secs_f64() / 1e6,
        );
        sums.0 += *detailed;
        sums.1 += *func;
        sums.2 += *smarts;
        sums.3 += instrs;
    }
    println!();
    println!(
        "totals: detailed {} | functional {} | SMARTS {}",
        secs(sums.0),
        secs(sums.1),
        secs(sums.2)
    );
    println!(
        "suite-wide: SMARTS/functional slowdown {:.2}x, detailed/SMARTS speedup {:.1}x, effective {:.1} MIPS",
        sums.2.as_secs_f64() / sums.1.as_secs_f64(),
        sums.0.as_secs_f64() / sums.2.as_secs_f64(),
        sums.3 as f64 / sums.2.as_secs_f64() / 1e6,
    );
    println!();
    println!("(paper, at 2–547G-instruction scale: detailed avg 7.2 days, SMARTS avg 5.0 hours,");
    println!(" SMARTS ≈ 50% of functional speed. Our speedup grows with --scale: the detailed");
    println!(" column scales linearly with stream length, SMARTS's detailed work does not.)");
}

//! Functional-warming throughput: the S_FW hot path, measured directly.
//!
//! SMARTS's speedup model (Section 3.4) pins the achievable simulation
//! rate to the functional-warming rate S_FW, so this binary is the repo's
//! performance gate for the warming pipeline. For each probe benchmark it
//! reports, via the in-tree median-of-7 harness:
//!
//! * **functional** — plain fast-forward MIPS (architectural state only),
//! * **warming** — fast-forward-with-functional-warming MIPS (caches,
//!   TLBs, and branch predictor updated per instruction),
//! * **warming+pt** — the same with the batched L2 pre-touch pass
//!   enabled (off by default; measured in the same process so the two
//!   warming figures are directly comparable),
//! * the implied S_FW ratio (warming rate / functional rate) and the
//!   warming overhead in ns/instruction.
//!
//! Results are also written to `results/bench_warming.json` as the
//! machine-readable perf baseline future PRs compare against. `--quick`
//! is the CI smoke mode (fewer instructions, single probe benchmark).
//!
//! Benchmark loading is hoisted out of the timed region (engines start
//! from a cloned image), so the figures measure the execution hot path,
//! not assembly/image setup.

use smarts_bench::timing::{self, time};
use smarts_core::FunctionalEngine;
use smarts_isa::RiscIsa;
use smarts_uarch::{MachineConfig, WarmState};
use smarts_workloads::{Frontend, Loaded};
use std::io::Write as _;
use std::time::Duration;

/// The probe benchmarks: the Figure 4 probe (`hashp-2`) plus one
/// benchmark per warming-pressure class (I-side, D-side long-history,
/// branch predictor).
const PROBES: [&str; 4] = ["hashp-2", "loopy-1", "chase-2", "branchy-1"];

struct Row {
    name: String,
    isa: &'static str,
    instructions: u64,
    functional: Duration,
    warming: Duration,
    warming_pretouch: Duration,
}

impl Row {
    fn functional_mips(&self) -> f64 {
        self.instructions as f64 / self.functional.as_secs_f64() / 1e6
    }

    fn warming_mips(&self) -> f64 {
        self.instructions as f64 / self.warming.as_secs_f64() / 1e6
    }

    fn warming_pretouch_mips(&self) -> f64 {
        self.instructions as f64 / self.warming_pretouch.as_secs_f64() / 1e6
    }

    fn s_fw(&self) -> f64 {
        self.functional.as_secs_f64() / self.warming.as_secs_f64()
    }

    fn overhead_ns(&self) -> f64 {
        (self.warming.as_secs_f64() - self.functional.as_secs_f64()) * 1e9
            / self.instructions as f64
    }
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let instructions: u64 = if args.quick { 200_000 } else { 2_000_000 };
    smarts_bench::banner(
        "Warming throughput",
        "functional vs functional-warming fast-forward rate (8-way machine)",
    );

    let cfg = MachineConfig::eight_way();
    let probes: Vec<String> = match &args.bench {
        Some(name) => vec![name.clone()],
        None if args.quick => {
            // Quick mode keeps one probe per frontend: the Figure 4
            // probe, plus the first probe the risc encoding accepts (the
            // Figure 4 probe itself uses instructions outside the
            // compact set).
            let mut list = vec![PROBES[0].to_string()];
            if let Some(name) = PROBES
                .iter()
                .find(|name| RiscIsa::resolve(name, 1.0).is_ok())
            {
                if *name != PROBES[0] {
                    list.push(name.to_string());
                }
            }
            list
        }
        None => PROBES.iter().map(|s| s.to_string()).collect(),
    };

    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>12} {:>8} {:>12}",
        "benchmark", "isa", "func MIPS", "warm MIPS", "w+pt MIPS", "S_FW", "overhead/in"
    );
    let mut rows = Vec::new();
    for name in &probes {
        let loaded = smarts_isa::BuiltinIsa::resolve(name, 1.0)
            .unwrap_or_else(|e| panic!("unknown benchmark {name}: {e}"));
        rows.push(measure(name, "builtin", &loaded, instructions, &cfg));
        // The compact-RISC frontend decodes its fixed 32-bit binary form
        // on the same warming hot path, so its rate is a first-class
        // figure: one row per probe the encoding can represent.
        if let Ok(loaded) = RiscIsa::resolve(name, 1.0) {
            rows.push(measure(name, "risc", &loaded, instructions, &cfg));
        }
    }
    println!();
    for row in &rows {
        println!(
            "{} ({}): functional {} / warming {}",
            row.name,
            row.isa,
            timing::pretty(row.functional),
            timing::pretty(row.warming)
        );
    }

    write_json(&rows).expect("write results/bench_warming.json");
    println!("\nwrote results/bench_warming.json");
}

/// Times one probe's functional / warming / warming+pretouch passes
/// under frontend `F` and prints its table row.
fn measure<F: Frontend>(
    name: &str,
    isa: &'static str,
    loaded: &Loaded<F>,
    instructions: u64,
    cfg: &MachineConfig,
) -> Row {
    let functional = time(|| {
        let mut engine = FunctionalEngine::new(loaded.clone());
        engine.fast_forward(instructions)
    });
    let warming = time(|| {
        let mut engine = FunctionalEngine::new(loaded.clone());
        let mut warm = WarmState::new(cfg);
        engine.fast_forward_warming(instructions, &mut warm)
    });
    let warming_pretouch = time(|| {
        let mut engine = FunctionalEngine::new(loaded.clone());
        let mut warm = WarmState::new(cfg);
        warm.set_batch_pretouch(true);
        engine.fast_forward_warming(instructions, &mut warm)
    });

    let row = Row {
        name: name.to_string(),
        isa,
        instructions,
        functional,
        warming,
        warming_pretouch,
    };
    println!(
        "{:<12} {:<8} {:>12.2} {:>12.2} {:>12.2} {:>8.3} {:>9.1} ns",
        row.name,
        row.isa,
        row.functional_mips(),
        row.warming_mips(),
        row.warming_pretouch_mips(),
        row.s_fw(),
        row.overhead_ns()
    );
    row
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde).
fn write_json(rows: &[Row]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_warming.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"warming\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(f, "  \"results\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"benchmark\": \"{}\",", row.name)?;
        // Rows are keyed (benchmark, isa, warm_jobs): this bin measures
        // the single-producer pass only, so every row is warm_jobs = 1;
        // sharded rows live in results/bench_warm_shard.json with their
        // own guard. The fields keep the guard populations from silently
        // comparing across modes or frontends.
        writeln!(f, "      \"isa\": \"{}\",", row.isa)?;
        writeln!(f, "      \"warm_jobs\": 1,")?;
        writeln!(f, "      \"instructions\": {},", row.instructions)?;
        writeln!(
            f,
            "      \"functional_mips\": {:.3},",
            row.functional_mips()
        )?;
        writeln!(f, "      \"warming_mips\": {:.3},", row.warming_mips())?;
        writeln!(
            f,
            "      \"warming_pretouch_mips\": {:.3},",
            row.warming_pretouch_mips()
        )?;
        writeln!(f, "      \"s_fw\": {:.4},", row.s_fw())?;
        writeln!(
            f,
            "      \"warming_overhead_ns_per_inst\": {:.2}",
            row.overhead_ns()
        )?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

//! Figure 6: SMARTS CPI results across the suite with the initial sample
//! size, plus n_tuned reruns for the benchmarks whose confidence interval
//! misses the ±3% target.
//!
//! For each benchmark and machine: one sampling run at n_init, reporting
//! the *actual* CPI error against the full-detail reference and the
//! *predicted* 99.7% confidence interval from the measured V̂. Rows are
//! sorted by predicted interval, worst first, with the average of the
//! rest — the paper's presentation. Claims to check:
//!
//! * actual error is generally far inside the predicted interval;
//! * benchmarks whose interval exceeds ±3% are fixed by rerunning at
//!   n_tuned = (z·V̂/ε)².

use smarts_bench::{banner, pct, upct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim};
use smarts_stats::Confidence;

const EPSILON: f64 = 0.03;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 6",
        "SMARTS CPI error and 99.7% confidence interval across the suite (n_init run)",
    );
    let cache = RefCache::new();
    let conf = Confidence::THREE_SIGMA;
    let n_init = if args.quick { 15 } else { 60 };

    for cfg in args.config.configs() {
        let sim = SmartsSim::new(cfg.clone());
        println!(
            "--- {} (n_init = {n_init}, U = 1000, W = {}) ---",
            cfg.name,
            cfg.recommended_detailed_warming()
        );
        println!(
            "  {:<12}{:>10}{:>12}{:>12}{:>8}",
            "benchmark", "CPI", "actual err", "interval", "V̂"
        );
        let mut rows = Vec::new();
        for bench in args.suite() {
            let truth = cache.get(&sim, &bench, 1000).cpi;
            // Offset 1 skips the cold unit at instruction 0, which at our
            // stream scale carries weight 1/n instead of the paper's
            // 1/10,000 (see EXPERIMENTS.md caveat 3).
            let params = SamplingParams::paper_defaults(&cfg, bench.approx_len(), n_init)
                .expect("valid parameters")
                .with_offset(1)
                .expect("interval exceeds 1");
            let report = sim.sample(&bench, &params).expect("sampling succeeds");
            let est = report.cpi();
            let interval = est.achieved_epsilon(conf).expect("valid confidence");
            rows.push((
                bench.clone(),
                est.mean(),
                (est.mean() - truth) / truth,
                interval,
                est.coefficient_of_variation(),
            ));
        }
        rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite intervals"));
        let shown = rows.len().min(12);
        for (bench, cpi, err, interval, v) in &rows[..shown] {
            println!(
                "  {:<12}{:>10.3}{:>12}{:>12}{:>8.2}",
                bench.name(),
                cpi,
                pct(*err),
                format!("±{}", upct(*interval)),
                v
            );
        }
        if rows.len() > shown {
            let rest_err: f64 =
                rows[shown..].iter().map(|r| r.2.abs()).sum::<f64>() / (rows.len() - shown) as f64;
            let rest_int: f64 =
                rows[shown..].iter().map(|r| r.3).sum::<f64>() / (rows.len() - shown) as f64;
            println!(
                "  {:<12}{:>10}{:>12}{:>12}",
                "avg. rest",
                "-",
                upct(rest_err),
                format!("±{}", upct(rest_int))
            );
        }
        let mean_abs_err: f64 = rows.iter().map(|r| r.2.abs()).sum::<f64>() / rows.len() as f64;
        println!("  mean |actual error| = {}", upct(mean_abs_err));

        // Rerun the offenders with n_tuned (step 2 of Section 5.1).
        let offenders: Vec<_> = rows.iter().filter(|r| r.3 > EPSILON).collect();
        if offenders.is_empty() {
            println!(
                "  (all intervals within ±{}; no n_tuned rerun needed)",
                upct(EPSILON)
            );
        } else {
            println!(
                "  --- n_tuned reruns for intervals beyond ±{} ---",
                upct(EPSILON)
            );
            for (bench, _, _, _, _) in offenders {
                let truth = cache.get(&sim, bench, 1000).cpi;
                let params = SamplingParams::paper_defaults(&cfg, bench.approx_len(), n_init)
                    .expect("valid parameters");
                let outcome = sim
                    .sample_two_step(bench, &params, EPSILON, conf)
                    .expect("two-step succeeds");
                let best = outcome.best();
                let est = best.cpi();
                println!(
                    "  {:<12} n_tuned = {:>5}  err {}  interval ±{}",
                    bench.name(),
                    best.sample_size(),
                    pct((est.mean() - truth) / truth),
                    upct(est.achieved_epsilon(conf).expect("valid confidence")),
                );
            }
        }
        println!();
    }
    println!("(paper: n_init achieves ±3% for most benchmarks; actual error ≪ predicted interval;");
    println!(" high-V̂ outliers — our phased-*, the paper's ammp/vpr/gcc-2 — need the tuned rerun)");
}

//! Figure 5: the optimal sampling unit size U as a function of the
//! detailed-warming length W.
//!
//! Left chart: for one benchmark, the fraction of instructions simulated
//! in detail — `n(U)·(U+W)/N` with `n(U) = (z·V(U)/ε)²` for ±3% at 99.7%
//! confidence — for several values of W and a sweep of U.
//!
//! Right chart: the optimal U (minimizing that fraction) per benchmark
//! for W = 1000 and W = 100,000, the magnitudes relevant with and without
//! functional warming. The paper's conclusions to check: optimal U grows
//! with W, lies in 100..10,000 for realistic W, and U = 1000 is close
//! enough to optimal everywhere.

use smarts_bench::{banner, HarnessArgs, RefCache};
use smarts_core::SmartsSim;
use smarts_stats::{required_sample_size, variation_curve, Confidence};
use smarts_uarch::MachineConfig;
use smarts_workloads::Benchmark;

const BASE_UNIT: u64 = 10;
const U_FACTORS: &[usize] = &[1, 10, 100, 1_000, 10_000];
const EPSILON: f64 = 0.03;
/// Fractions are computed against a SPEC2K-scale nominal stream. V(U) is a
/// property of the workload, not the stream length, so measuring V on our
/// shorter streams and evaluating n(U)·(U+W)/N at the paper's N reproduces
/// the published trade-off; using our own N would clamp everything at 100%.
const NOMINAL_STREAM: f64 = 10e9;

/// Detail fraction n(U)·(U+W)/N for each U in the sweep.
fn detail_fractions(
    cache: &RefCache,
    sim: &SmartsSim,
    bench: &Benchmark,
    w: u64,
) -> Vec<(u64, f64)> {
    let reference = cache.get(sim, bench, BASE_UNIT);
    let stream = NOMINAL_STREAM;
    variation_curve(&reference.unit_cpis, BASE_UNIT, U_FACTORS)
        .into_iter()
        .map(|point| {
            let n = required_sample_size(
                point.coefficient_of_variation,
                EPSILON,
                Confidence::THREE_SIGMA,
            )
            .expect("valid target");
            let fraction = (n as f64 * (point.unit_size + w) as f64 / stream).min(1.0);
            (point.unit_size, fraction)
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 5",
        "Detail fraction n(U)·(U+W)/N vs U at SPEC2K-scale N = 10G, with V(U) measured here (±3% @ 99.7%)",
    );
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let cache = RefCache::new();
    let suite = args.suite();

    // Left chart: one benchmark (the paper uses gcc-1; we use hashp-1 or
    // the --bench selection), several W values.
    let focus = suite.first().expect("nonempty suite").clone();
    let focus = args
        .suite()
        .into_iter()
        .find(|b| b.name() == "hashp-1")
        .unwrap_or(focus);
    println!("--- detail fraction vs U for {} ---", focus.name());
    print!("{:>10}", "U");
    for w in [0u64, 1_000, 10_000, 100_000] {
        print!("{:>14}", format!("W={w}"));
    }
    println!();
    let sweeps: Vec<Vec<(u64, f64)>> = [0u64, 1_000, 10_000, 100_000]
        .iter()
        .map(|&w| detail_fractions(&cache, &sim, &focus, w))
        .collect();
    for i in 0..sweeps[0].len() {
        print!("{:>10}", sweeps[0][i].0);
        for sweep in &sweeps {
            print!("{:>13.4}%", sweep[i].1 * 100.0);
        }
        println!();
    }

    // Right chart: optimal U per benchmark for the two W magnitudes.
    println!();
    println!("--- optimal U per benchmark ---");
    println!(
        "{:<12}{:>14}{:>14}{:>18}",
        "benchmark", "U* (W=1000)", "U* (W=100k)", "U=1000 overhead"
    );
    for bench in &suite {
        let at = |w: u64| -> (u64, f64, f64) {
            let sweep = detail_fractions(&cache, &sim, bench, w);
            let (u_best, f_best) = sweep
                .iter()
                .copied()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"))
                .expect("nonempty sweep");
            let f_1000 = sweep
                .iter()
                .find(|(u, _)| *u == 1000)
                .map(|&(_, f)| f)
                .unwrap_or(f_best);
            (u_best, f_best, f_1000)
        };
        let (u1, best1, at1000_w1k) = at(1_000);
        let (u2, _, _) = at(100_000);
        // How much more of the stream does fixing U=1000 cost vs optimal?
        let overhead = if best1 > 0.0 { at1000_w1k / best1 } else { 1.0 };
        println!(
            "{:<12}{:>14}{:>14}{:>17.2}x",
            bench.name(),
            u1,
            u2,
            overhead
        );
    }
    println!();
    println!("(paper: optimal U in 100..10,000 for non-zero W, increasing with W; fixing U=1000");
    println!(" costs only a small constant factor of detail — i.e. minutes of run time)");
}

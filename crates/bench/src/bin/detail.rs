//! Detailed-simulation throughput: the S_D hot path, measured directly.
//!
//! SMARTS's speedup model (Section 3.4) is far less sensitive to the
//! detailed rate S_D than to S_FW — but only because detailed cycles are
//! confined to tiny sampling units. This binary measures what the
//! detailed engine actually delivers, via the in-tree median-of-7
//! harness. For each probe benchmark it reports:
//!
//! * **functional** — plain fast-forward MIPS (the S_F ≡ 1 reference),
//! * **scan** — detailed KIPS of the scan-per-cycle reference model
//!   ([`smarts_uarch::ScanPipeline`], kept in-tree as the bit-identity
//!   oracle),
//! * **event** — detailed KIPS of the event-driven production model
//!   ([`smarts_uarch::Pipeline`]: wakeup lists, a completion heap, and
//!   dead-cycle skipping), plus the fraction of cycles it never stepped,
//! * the event/scan speedup and the implied S_D (event rate /
//!   functional rate), which feeds
//!   `smarts_core::SpeedupModel::from_measured_rates`.
//!
//! Results are written to `results/bench_detail.json`, the baseline the
//! `detail_guard` binary compares against in CI; each row names its
//! machine, and `--config <8|16|both>` selects which Table 3 machines to
//! measure (the checked-in baseline carries both). Benchmark loading is
//! hoisted out of the timed region; both models replay identical
//! correct-path traces from cloned images.

use smarts_bench::timing::{self, time};
use smarts_core::{FunctionalEngine, SpeedupModel};
use smarts_isa::{Cpu, ExecRecord, Memory, Program};
use smarts_uarch::{Pipeline, ScanPipeline, UnitMeasurement, WarmState};
use std::io::Write as _;
use std::time::Duration;

/// Same probe set as the warming bench: the Figure 4 probe plus one
/// benchmark per pressure class (I-side, D-side long-history, branch
/// predictor) — memory stalls, tight loops, and redirects all hit
/// different parts of the detailed engine.
const PROBES: [&str; 4] = ["hashp-2", "loopy-1", "chase-2", "branchy-1"];

struct Row {
    name: String,
    machine: &'static str,
    instructions: u64,
    functional: Duration,
    scan: Duration,
    event: Duration,
    skipped_fraction: f64,
}

impl Row {
    fn functional_mips(&self) -> f64 {
        self.instructions as f64 / self.functional.as_secs_f64() / 1e6
    }

    fn scan_kips(&self) -> f64 {
        self.instructions as f64 / self.scan.as_secs_f64() / 1e3
    }

    fn event_kips(&self) -> f64 {
        self.instructions as f64 / self.event.as_secs_f64() / 1e3
    }

    fn speedup(&self) -> f64 {
        self.scan.as_secs_f64() / self.event.as_secs_f64()
    }

    fn s_d(&self) -> f64 {
        self.event_kips() / 1e3 / self.functional_mips()
    }
}

/// A fresh functional CPU over the loaded image, as a trace source for a
/// detailed model.
fn trace_source<'a>(
    program: &'a Program,
    memory: &'a Memory,
) -> impl FnMut() -> Option<ExecRecord> + 'a {
    let mut cpu = Cpu::new();
    let mut mem = memory.clone();
    move || {
        if cpu.halted() {
            return None;
        }
        cpu.step(program, &mut mem).ok()
    }
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let instructions: u64 = if args.quick { 60_000 } else { 400_000 };
    smarts_bench::banner(
        "Detailed throughput",
        "scan-per-cycle reference vs event-driven detailed model",
    );

    let machines = args.config.configs();
    let probes: Vec<String> = match &args.bench {
        Some(name) => vec![name.clone()],
        None if args.quick => vec![PROBES[0].to_string()],
        None => PROBES.iter().map(|s| s.to_string()).collect(),
    };

    println!(
        "{:<12} {:<8} {:>10} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "benchmark", "machine", "func MIPS", "scan KIPS", "event KIPS", "speedup", "skipped", "S_D"
    );
    let mut rows = Vec::new();
    for name in &probes {
        let bench = smarts_workloads::find(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
            .scaled(1.0);
        let loaded = bench.load();

        let functional = time(|| {
            let mut engine = FunctionalEngine::new(loaded.clone());
            engine.fast_forward(instructions)
        });
        for cfg in &machines {
            let mut scan_measure = UnitMeasurement::default();
            let scan = time(|| {
                let mut warm = WarmState::new(cfg);
                let mut pipeline = ScanPipeline::new(cfg);
                let mut source = trace_source(&loaded.program, &loaded.memory);
                scan_measure = pipeline.run(&mut warm, &mut source, instructions, true);
            });
            let mut event_measure = UnitMeasurement::default();
            let mut skipped_fraction = 0.0;
            let event = time(|| {
                let mut warm = WarmState::new(cfg);
                let mut pipeline = Pipeline::new(cfg);
                let mut source = trace_source(&loaded.program, &loaded.memory);
                event_measure = pipeline.run(&mut warm, &mut source, instructions, true);
                skipped_fraction = pipeline.skipped_cycles() as f64 / event_measure.cycles as f64;
            });
            assert_eq!(
                event_measure, scan_measure,
                "{name} on {}: models diverged — the benchmark is only valid over \
                 identical work",
                cfg.name
            );

            let row = Row {
                name: name.clone(),
                machine: cfg.name,
                instructions,
                functional,
                scan,
                event,
                skipped_fraction,
            };
            println!(
                "{:<12} {:<8} {:>10.2} {:>11.1} {:>11.1} {:>7.2}x {:>7.1}% {:>8.5}",
                row.name,
                row.machine,
                row.functional_mips(),
                row.scan_kips(),
                row.event_kips(),
                row.speedup(),
                row.skipped_fraction * 100.0,
                row.s_d()
            );
            rows.push(row);
        }
    }
    println!();
    for row in &rows {
        println!(
            "{} on {}: functional {} / scan {} / event {}",
            row.name,
            row.machine,
            timing::pretty(row.functional),
            timing::pretty(row.scan),
            timing::pretty(row.event)
        );
    }

    // The Section 3.4 projection at this host's measured operating point
    // (paper parameters: n = 10_000 units of U = 1000 instructions with
    // W = 2000 detailed-warming instructions, over a 10 G stream).
    if let Some(worst) = rows
        .iter()
        .min_by(|a, b| a.s_d().total_cmp(&b.s_d()))
        .filter(|r| r.functional_mips() > 0.0)
    {
        let model = SpeedupModel::from_measured_rates(
            worst.functional_mips(),
            worst.functional_mips(), // S_FW not measured here; S = 1 bound
            worst.event_kips() / 1e3,
        );
        let rate = model.detailed_warming_rate(10_000.0, 1000.0, 2000.0, 10e9);
        println!(
            "\nworst-case measured S_D = {:.5} ({}): detailed-warming rate {:.4} of S_F \
             at the paper's n=10k, U=1k, W=2k operating point",
            model.s_d, worst.name, rate
        );
    }

    write_json(&rows).expect("write results/bench_detail.json");
    println!("\nwrote results/bench_detail.json");
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde).
fn write_json(rows: &[Row]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_detail.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"detail\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"results\": [")?;
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"benchmark\": \"{}\",", row.name)?;
        writeln!(f, "      \"machine\": \"{}\",", row.machine)?;
        writeln!(f, "      \"instructions\": {},", row.instructions)?;
        writeln!(
            f,
            "      \"functional_mips\": {:.3},",
            row.functional_mips()
        )?;
        writeln!(f, "      \"scan_kips\": {:.3},", row.scan_kips())?;
        writeln!(f, "      \"detailed_kips\": {:.3},", row.event_kips())?;
        writeln!(f, "      \"event_over_scan\": {:.4},", row.speedup())?;
        writeln!(
            f,
            "      \"skipped_cycle_fraction\": {:.4},",
            row.skipped_fraction
        )?;
        writeln!(f, "      \"s_d\": {:.6}", row.s_d())?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

//! CI sharded-warming regression guard.
//!
//! Reads the checked-in reference `results/bench_warm_shard.json` (this
//! binary never writes it — the `warm_shard` binary owns the file and CI
//! runs this guard *before* re-generating it), re-runs the sharded-warm
//! pipeline with the reference's exact run geometry at each reference
//! shard count, and exits non-zero when:
//!
//! * any shard count's warming MIPS drops more than [`TOLERANCE`] below
//!   its reference (the hot-path regression gate), or
//! * the host has `available_parallelism() ≥ 4`, the reference includes
//!   warm_jobs 1 and 4, and the measured 4-shard speedup falls below
//!   [`MIN_SPEEDUP_AT_4`] — the paper-motivated T_warm / cores target.
//!   On smaller hosts (including the single-core baseline machine) real
//!   parallel speedup is physically unavailable, so only the MIPS
//!   regression gate applies there.
//!
//! `--quick` keeps only the first and last reference shard counts.

use smarts_bench::timing;
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{Executor, ParallelMode};
use smarts_uarch::MachineConfig;
use std::time::Duration;

/// Largest tolerated drop of measured warming MIPS below the reference
/// (noise stays well inside this; a real hot-path regression does not).
const TOLERANCE: f64 = 0.20;

/// Required producer-wall speedup of warm_jobs = 4 over warm_jobs = 1
/// when the host actually has four cores to shard across.
const MIN_SPEEDUP_AT_4: f64 = 2.0;

struct Reference {
    warm_jobs: usize,
    warming_mips: f64,
}

struct Geometry {
    benchmark: String,
    scale: f64,
    n: u64,
    unit: u64,
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_warm_shard.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let (geometry, mut references) =
        parse_reference(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    if references.is_empty() {
        fail(&format!("reference {path} lists no shard counts"));
    }
    if args.quick && references.len() > 2 {
        // Keep the speedup endpoints (1 and the largest shard count).
        let last = references.pop().expect("non-empty");
        references.truncate(1);
        references.push(last);
    }

    smarts_bench::banner(
        "Sharded-warming guard",
        &format!(
            "fails if warming MIPS drops more than {:.0}% below results/bench_warm_shard.json",
            TOLERANCE * 100.0
        ),
    );
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = smarts_workloads::find(&geometry.benchmark)
        .unwrap_or_else(|| {
            fail(&format!(
                "reference benchmark {} is not in the suite",
                geometry.benchmark
            ))
        })
        .scaled(geometry.scale);
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        geometry.unit,
        cfg.recommended_detailed_warming(),
        Warming::Functional,
        geometry.n,
        0,
    )
    .unwrap_or_else(|e| fail(&format!("reference geometry is no longer valid: {e}")));

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "benchmark {} scale {} (n={}, U={}), {cores} core(s)\n",
        geometry.benchmark, geometry.scale, geometry.n, geometry.unit
    );
    println!(
        "{:>9} {:>12} {:>12} {:>8}  verdict",
        "warm_jobs", "ref MIPS", "now MIPS", "ratio"
    );
    let mut regressed = false;
    let mut measured: Vec<(usize, Duration)> = Vec::new();
    for reference in &references {
        let executor = Executor::new(1)
            .unwrap_or_else(|e| fail(&e.to_string()))
            .with_mode(ParallelMode::ShardedWarm)
            .with_warm_jobs(reference.warm_jobs);
        let run = || {
            executor
                .sample(&sim, &bench, &params)
                .unwrap_or_else(|e| fail(&format!("sharded-warm run failed: {e}")))
        };
        std::hint::black_box(run());
        let mut walls: Vec<(Duration, u64)> = (0..timing::SAMPLES)
            .map(|_| {
                let report = run();
                let pipeline = report.pipeline.expect("sharded-warm is pipeline-shaped");
                let shard = report.shard.expect("shard stats");
                (
                    pipeline.producer_wall,
                    shard.shard_instructions.iter().sum(),
                )
            })
            .collect();
        walls.sort_by_key(|&(wall, _)| wall);
        let (wall, instructions) = walls[timing::SAMPLES / 2];
        let mips = instructions as f64 / wall.as_secs_f64() / 1e6;
        let ratio = mips / reference.warming_mips;
        let ok = ratio >= 1.0 - TOLERANCE;
        regressed |= !ok;
        measured.push((reference.warm_jobs, wall));
        println!(
            "{:>9} {:>12.2} {:>12.2} {:>8.3}  {}",
            reference.warm_jobs,
            reference.warming_mips,
            mips,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }

    let serial = measured.iter().find(|&&(j, _)| j == 1);
    let four = measured.iter().find(|&&(j, _)| j == 4);
    if let (Some(&(_, serial)), Some(&(_, four))) = (serial, four) {
        let speedup = serial.as_secs_f64() / four.as_secs_f64();
        if cores >= 4 {
            let ok = speedup >= MIN_SPEEDUP_AT_4;
            regressed |= !ok;
            println!(
                "\n4-shard speedup {speedup:.2}x on {cores} cores (need ≥ {MIN_SPEEDUP_AT_4}x): {}",
                if ok { "ok" } else { "REGRESSED" }
            );
        } else {
            println!(
                "\n4-shard speedup {speedup:.2}x on {cores} core(s): \
                 informational only (≥ {MIN_SPEEDUP_AT_4}x gate needs 4 cores)"
            );
        }
    }

    if regressed {
        eprintln!(
            "\nsharded warming regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nsharded warming within the guard");
}

fn fail(msg: &str) -> ! {
    eprintln!("warm_shard_guard: {msg}");
    std::process::exit(1)
}

/// Extracts the run geometry and `(warm_jobs, warming_mips)` rows from
/// the reference file. Hand-rolled (the workspace builds offline, no
/// serde): scans for the keys in order, which is exactly the shape the
/// `warm_shard` binary writes.
fn parse_reference(text: &str) -> Result<(Geometry, Vec<Reference>), String> {
    let mut geometry = Geometry {
        benchmark: String::new(),
        scale: 0.0,
        n: 0,
        unit: 0,
    };
    let mut references = Vec::new();
    let mut warm_jobs: Option<usize> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            geometry.benchmark = value.trim_matches('"').to_string();
        } else if let Some(value) = key_value(line, "scale") {
            geometry.scale = value.parse().map_err(|_| format!("bad scale `{value}`"))?;
        } else if let Some(value) = key_value(line, "n") {
            geometry.n = value.parse().map_err(|_| format!("bad n `{value}`"))?;
        } else if let Some(value) = key_value(line, "unit") {
            geometry.unit = value.parse().map_err(|_| format!("bad unit `{value}`"))?;
        } else if let Some(value) = key_value(line, "warm_jobs") {
            warm_jobs = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad warm_jobs `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "warming_mips") {
            let mips: f64 = value
                .parse()
                .map_err(|_| format!("bad warming_mips `{value}`"))?;
            if !(mips.is_finite() && mips > 0.0) {
                return Err("non-positive warming_mips".to_string());
            }
            references.push(Reference {
                warm_jobs: warm_jobs.take().ok_or("warming_mips before warm_jobs")?,
                warming_mips: mips,
            });
        }
    }
    if geometry.benchmark.is_empty() || geometry.scale <= 0.0 || geometry.n == 0 {
        return Err("missing run geometry (benchmark/scale/n)".to_string());
    }
    Ok((geometry, references))
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

//! Figure 2: coefficient of variation of CPI versus sampling unit size.
//!
//! For every benchmark, runs a full-detail reference simulation at a fine
//! base unit (U₀ = 10 instructions) and aggregates the per-unit CPI trace
//! to larger unit sizes, printing the V_CPI(U) series the paper plots on
//! log axes. The paper's claims to check:
//!
//! * curves fall steeply up to U ≈ 1000 and flatten beyond it;
//! * phase-heavy benchmarks (our `phased-*`, the paper's `ammp`/`vpr`)
//!   keep non-negligible V even at very large U.
//!
//! `--icc` additionally reports the intraclass correlation δ at a
//! sampling-relevant interval (Section 2's homogeneity check).

use smarts_bench::{banner, HarnessArgs, RefCache};
use smarts_core::SmartsSim;
use smarts_stats::{intraclass_correlation, variation_curve};

const BASE_UNIT: u64 = 10;
const FACTORS: &[usize] = &[1, 10, 100, 1_000, 10_000, 100_000];

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 2",
        "Coefficient of variation of CPI vs sampling unit size U (8-way)",
    );
    let sim = SmartsSim::new(
        args.config
            .configs()
            .into_iter()
            .next()
            .expect("at least one config"),
    );
    let cache = RefCache::new();

    print!("{:<12}", "benchmark");
    for &f in FACTORS {
        print!("{:>12}", format!("U={}", BASE_UNIT * f as u64));
    }
    if args.icc {
        print!("{:>12}", "delta");
    }
    println!();

    for bench in args.suite() {
        let reference = cache.get(&sim, &bench, BASE_UNIT);
        let curve = variation_curve(&reference.unit_cpis, BASE_UNIT, FACTORS);
        print!("{:<12}", bench.name());
        for &f in FACTORS {
            let u = BASE_UNIT * f as u64;
            match curve.iter().find(|p| p.unit_size == u) {
                Some(p) => print!("{:>12.4}", p.coefficient_of_variation),
                None => print!("{:>12}", "-"),
            }
        }
        if args.icc {
            // δ at the interval a U=1000, n≈N/100 design would use.
            let per_1000: Vec<f64> = reference
                .unit_cpis
                .chunks_exact(100)
                .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                .collect();
            let interval = (per_1000.len() / 30).max(2);
            print!("{:>12.2e}", intraclass_correlation(&per_1000, interval));
        }
        println!();
    }
    println!();
    println!("(expected shape: steep fall to U≈1000, flat beyond; phased-* stays high at large U)");
}

//! Store-replay residency: what zero-copy lazy replay buys in memory.
//!
//! The eager store reader (and the pre-delta in-memory library)
//! materializes every unit checkpoint at once, so replaying an n-unit
//! store costs O(n) resident checkpoint bytes. Lazy mmap replay keeps
//! the encoded records on the page cache and holds only one rolling
//! decode cursor per worker plus the in-flight rebuilt checkpoints —
//! O(workers), independent of n. This binary builds a large store
//! (10⁴ units by default, ~400 under `--quick`) and measures:
//!
//! * **eager residency** — Σ per-unit
//!   [`UnitCheckpoint::approx_resident_bytes`], what a full eager
//!   decode holds live,
//! * **lazy peak residency** — the executor's per-claim accounting
//!   (`PipelineStats::peak_resident_bytes`) during a real
//!   `replay_store` run, and the ratio between the two,
//! * **lazy-decode MIPS** — millions of *measured* instructions
//!   (units × U) whose checkpoints decode per second through a rolling
//!   [`StoreCursor`](smarts_ckpt::StoreCursor) walk, flat decode plus
//!   `rebuild` — the per-worker overhead lazy replay adds on its
//!   critical path.
//!
//! Results go to `results/bench_store_mem.json`, the baseline the
//! `store_mem_guard` binary enforces in CI (decode-rate regression and
//! the ≥10× residency-ratio floor).

use smarts_bench::timing::{self, time};
use smarts_ckpt::{CkptWriter, IsaId, MappedStore, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, UnitCheckpoint, Warming};
use smarts_exec::{replay_store_mapped, Executor};
use smarts_uarch::MachineConfig;
use std::io::Write as _;

/// One probe is enough: residency scales with unit *count*, not with
/// which kernel produced the units, and the decode path is the same
/// delta codec the `ckpt` bench already sweeps across the probe set.
const PROBE: &str = "hashp-2";

/// Replay workers for the lazy residency measurement. The lazy bound is
/// O(workers); two workers keeps the figure comparable across hosts.
const JOBS: usize = 2;

const UNIT_SIZE: u64 = 1000;
const DETAILED_WARMING: u64 = 2000;

fn fail(msg: &str) -> ! {
    eprintln!("store_mem: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let target_units: u64 = if args.quick { 400 } else { 10_000 };
    let probe = args.bench.clone().unwrap_or_else(|| PROBE.to_string());
    smarts_bench::banner(
        "Store-replay residency",
        "peak resident checkpoint bytes and decode rate of lazy mmap replay vs eager decode",
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let base = smarts_workloads::find(&probe)
        .unwrap_or_else(|| fail(&format!("unknown benchmark {probe}")));
    // Scale the stream so `for_sample_size` lands at its minimum
    // interval and the store holds ~target_units units.
    let min_interval = DETAILED_WARMING.div_ceil(UNIT_SIZE) + 2;
    let target_len = (target_units * min_interval * UNIT_SIZE) as f64 * 1.02;
    let scale = target_len / base.approx_len() as f64;
    let bench = base.scaled(scale);
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        UNIT_SIZE,
        DETAILED_WARMING,
        Warming::Functional,
        target_units,
        0,
    )
    .unwrap_or_else(|e| fail(&format!("bad parameters: {e}")));
    let meta = StoreMeta {
        params,
        benchmark: probe.clone(),
        scale,
        isa: IsaId::Builtin,
    };

    // Warm once (untimed) — write the store and account what an eager
    // full decode would keep resident, without materializing it.
    let path =
        std::env::temp_dir().join(format!("smarts-bench-storemem-{}.ckpt", std::process::id()));
    let mut writer = CkptWriter::create(&path, &cfg, &meta)
        .unwrap_or_else(|e| fail(&format!("cannot create store: {e}")));
    let mut eager_bytes = 0u64;
    sim.stream_checkpoints(bench.load(), &params, |checkpoint| {
        eager_bytes += UnitCheckpoint::approx_resident_bytes(&checkpoint);
        writer.append(&checkpoint).is_ok()
    })
    .unwrap_or_else(|e| fail(&format!("warming failed: {e}")));
    let file_bytes = writer
        .finish()
        .unwrap_or_else(|e| fail(&format!("cannot finish store: {e}")))
        .bytes;

    let store =
        MappedStore::open(&path, &cfg).unwrap_or_else(|e| fail(&format!("cannot open store: {e}")));
    let units = store.len() as u64;

    // Lazy-decode rate: a rolling cursor walk (flat decode + rebuild),
    // the per-record work one replay worker does before simulating.
    let decode = time(|| {
        let mut cursor = store.cursor();
        for index in 0..store.len() {
            let flat = cursor.flat_at(index).expect("intact record");
            flat.rebuild(&cfg).expect("store geometry matches");
        }
    });
    let decode_mips = (units * UNIT_SIZE) as f64 / 1e6 / decode.as_secs_f64();

    // Lazy peak residency: a real replay through the executor, with the
    // per-claim flat + rebuilt-checkpoint accounting.
    let executor = Executor::new(JOBS).unwrap_or_else(|e| fail(&format!("executor: {e}")));
    let replayed = replay_store_mapped(&executor, &sim, &store)
        .unwrap_or_else(|e| fail(&format!("lazy replay failed: {e}")));
    if let Some(damage) = &replayed.damage {
        fail(&format!("fresh store reported damage: {damage}"));
    }
    let stats = replayed
        .report
        .pipeline
        .as_ref()
        .unwrap_or_else(|| fail("lazy replay reported no pipeline stats"));
    let lazy_peak_bytes = stats.peak_resident_bytes;
    let lazy_peak_checkpoints = stats.peak_resident_checkpoints;
    let ratio = eager_bytes as f64 / lazy_peak_bytes.max(1) as f64;
    std::fs::remove_file(&path).ok();

    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "{:<12} {:>6} {:>12} {:>14} {:>13} {:>8} {:>12}",
        "benchmark", "units", "file MiB", "eager MiB", "lazy-peak MiB", "ratio", "decode MIPS"
    );
    println!(
        "{:<12} {:>6} {:>12.1} {:>14.1} {:>13.2} {:>7.0}x {:>12.1}",
        probe,
        units,
        mib(file_bytes),
        mib(eager_bytes),
        mib(lazy_peak_bytes),
        ratio,
        decode_mips
    );
    println!(
        "\nlazy replay held {lazy_peak_checkpoints} checkpoints at peak \
         ({JOBS} workers); decode median {}",
        timing::pretty(decode)
    );

    write_json(
        &probe,
        scale,
        units,
        file_bytes,
        eager_bytes,
        lazy_peak_bytes,
        lazy_peak_checkpoints,
        ratio,
        decode_mips,
    )
    .expect("write results/bench_store_mem.json");
    println!("wrote results/bench_store_mem.json");
}

/// Emits the machine-readable baseline (hand-rolled JSON: the workspace
/// builds offline, with no serde).
#[allow(clippy::too_many_arguments)]
fn write_json(
    benchmark: &str,
    scale: f64,
    units: u64,
    file_bytes: u64,
    eager_bytes: u64,
    lazy_peak_bytes: u64,
    lazy_peak_checkpoints: usize,
    ratio: f64,
    decode_mips: f64,
) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_store_mem.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"store_mem\",")?;
    writeln!(f, "  \"samples_per_case\": {},", timing::SAMPLES)?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(f, "  \"jobs\": {JOBS},")?;
    writeln!(f, "  \"results\": [")?;
    writeln!(f, "    {{")?;
    writeln!(f, "      \"benchmark\": \"{benchmark}\",")?;
    writeln!(f, "      \"scale\": {scale},")?;
    writeln!(f, "      \"units\": {units},")?;
    writeln!(f, "      \"file_bytes\": {file_bytes},")?;
    writeln!(f, "      \"eager_resident_bytes\": {eager_bytes},")?;
    writeln!(f, "      \"lazy_peak_bytes\": {lazy_peak_bytes},")?;
    writeln!(
        f,
        "      \"lazy_peak_checkpoints\": {lazy_peak_checkpoints},"
    )?;
    writeln!(f, "      \"residency_ratio\": {ratio:.1},")?;
    writeln!(f, "      \"decode_mips\": {decode_mips:.3}")?;
    writeln!(f, "    }}")?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

//! Table 4: detailed warming requirements *without* functional warming.
//!
//! For each benchmark, sweeps the detailed-warming length W upward until
//! the measurement bias (average signed CPI error over several evenly
//! spaced systematic phases, Section 4.3) falls below ±1.5%, then prints
//! the benchmarks grouped by required W. The paper's claims to check:
//!
//! * required W varies wildly and unpredictably across benchmarks;
//! * some benchmarks remain badly biased even at the largest W.
//!
//! Our streams are ~10³× shorter than SPEC2K's, so the W grid is scaled
//! down accordingly (stale-state recovery distance depends on
//! microarchitectural state size, but the sweep budget must fit between
//! sampling units).

use smarts_bench::{banner, pct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_stats::bias;
use smarts_uarch::MachineConfig;

const W_GRID: &[u64] = &[0, 1_000, 4_000, 16_000, 64_000];
const BIAS_TARGET: f64 = 0.015;
const PHASES: u64 = 3;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Table 4",
        "Required detailed warming W for <1.5% bias, without functional warming (8-way)",
    );
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let cache = RefCache::new();

    println!(
        "{:<12}{:>10}{:>12}   bias trajectory over the W grid",
        "benchmark", "W needed", "bias at W"
    );
    let mut groups: Vec<(String, Option<u64>)> = Vec::new();
    for bench in args.suite() {
        let truth = cache.get(&sim, &bench, 1000).cpi;
        let population = bench.approx_len() / 1000;
        let n = (population / 20).clamp(if args.quick { 10 } else { 30 }, 300);
        let mut needed = None;
        let mut final_bias = f64::NAN;
        let mut trajectory = String::new();
        for &w in W_GRID {
            let base =
                SamplingParams::for_sample_size(bench.approx_len(), 1000, w, Warming::None, n, 0)
                    .expect("valid parameters");
            // Skip the cold unit at instruction 0 (initialization
            // transient, negligible at the paper's N but not at ours).
            let phase_offsets: Vec<u64> = (0..PHASES)
                .map(|i| (1 + i * base.interval / PHASES).min(base.interval - 1))
                .collect();
            let estimates: Vec<f64> = phase_offsets
                .iter()
                .filter_map(|&j| {
                    let params = base.with_offset(j).ok()?;
                    sim.sample(&bench, &params).ok().map(|r| r.cpi().mean())
                })
                .collect();
            let b = bias(&estimates, truth) / truth;
            trajectory.push_str(&format!(" {}", pct(b)));
            final_bias = b;
            if b.abs() < BIAS_TARGET {
                needed = Some(w);
                break;
            }
        }
        match needed {
            Some(w) => println!(
                "{:<12}{:>10}{:>12}  {}",
                bench.name(),
                w,
                pct(final_bias),
                trajectory
            ),
            None => println!(
                "{:<12}{:>10}{:>12}  {}",
                bench.name(),
                format!(">{}", W_GRID.last().expect("nonempty grid")),
                pct(final_bias),
                trajectory
            ),
        }
        groups.push((bench.name().to_string(), needed));
    }

    println!();
    println!("--- grouped by required W (Table 4 format) ---");
    for &w in W_GRID {
        let members: Vec<&str> = groups
            .iter()
            .filter(|(_, needed)| *needed == Some(w))
            .map(|(name, _)| name.as_str())
            .collect();
        if !members.is_empty() {
            println!("W <= {:<8} {}", w, members.join(", "));
        }
    }
    let unbounded: Vec<&str> = groups
        .iter()
        .filter(|(_, needed)| needed.is_none())
        .map(|(name, _)| name.as_str())
        .collect();
    if !unbounded.is_empty() {
        println!(
            "W >  {:<8} {}",
            W_GRID.last().expect("nonempty grid"),
            unbounded.join(", ")
        );
    }
    println!();
    println!("(paper: the spread across rows is the point — without functional warming, W is");
    println!(" workload-dependent and cannot be chosen a priori)");
}

//! Table 5: residual CPI bias with functional warming and minimal
//! detailed warming (W = 2000 on the 8-way machine, W = 4000 on the
//! 16-way).
//!
//! Bias is approximated as the average signed error over evenly spaced
//! systematic phases (the paper uses 5), against the full-detail
//! reference. The paper's claims to check: all benchmarks within ±2%,
//! only a handful above ±1%.

use smarts_bench::{banner, pct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_stats::bias;

const PHASES: u64 = 5;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Table 5",
        "CPI bias with functional warming and minimal detailed warming",
    );
    let cache = RefCache::new();

    for cfg in args.config.configs() {
        let sim = SmartsSim::new(cfg.clone());
        let w = cfg.recommended_detailed_warming();
        println!("--- {} (W = {w}) ---", cfg.name);
        let mut rows: Vec<(String, f64)> = Vec::new();
        for bench in args.suite() {
            let truth = cache.get(&sim, &bench, 1000).cpi;
            // Sample a fixed fraction of the population per phase so the
            // statistical noise of the bias estimate shrinks with stream
            // length; skip the cold unit at instruction 0, whose
            // initialization transient would dominate at our small N
            // (it has weight 1/n here versus 1/10,000 in the paper).
            let population = bench.approx_len() / 1000;
            let n = (population / 20).clamp(if args.quick { 10 } else { 40 }, 400);
            let base = SamplingParams::for_sample_size(
                bench.approx_len(),
                1000,
                w,
                Warming::Functional,
                n,
                0,
            )
            .expect("valid parameters");
            let estimates: Vec<f64> = (0..PHASES)
                .map(|i| (1 + i * base.interval / PHASES).min(base.interval - 1))
                .filter_map(|j| {
                    let params = base.with_offset(j).ok()?;
                    sim.sample(&bench, &params).ok().map(|r| r.cpi().mean())
                })
                .collect();
            rows.push((bench.name().to_string(), bias(&estimates, truth) / truth));
        }
        rows.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite bias"));

        let shown = rows.len().min(10);
        for (name, b) in &rows[..shown] {
            println!("  {name:<12} {}", pct(*b));
        }
        if rows.len() > shown {
            let rest: f64 = rows[shown..].iter().map(|(_, b)| b.abs()).sum::<f64>()
                / (rows.len() - shown) as f64;
            println!("  {:<12} {}", "avg. rest", pct(rest));
        }
        let worst = rows.first().map(|(_, b)| b.abs()).unwrap_or(0.0);
        let over_1pct = rows.iter().filter(|(_, b)| b.abs() > 0.01).count();
        println!(
            "  summary: worst |bias| = {}, {} benchmark(s) above |1%|",
            pct(worst),
            over_1pct
        );

        // Section 4.4's analytic escape hatch: any benchmark still biased
        // at the empirical W must fall below the worst-case bound
        // store_buffer × mem_latency × max IPC. Our store-heavy kernels
        // exercise exactly the store-buffer-overflow mechanism that bound
        // is derived from.
        let offenders: Vec<&(String, f64)> = rows.iter().filter(|(_, b)| b.abs() > 0.015).collect();
        if !offenders.is_empty() {
            let w_bound = cfg.detailed_warming_bound();
            println!("  --- rerun at the analytic bound W = {w_bound} ---");
            for (name, old_bias) in offenders {
                let Some(bench) = args.suite().into_iter().find(|b| b.name() == name) else {
                    continue;
                };
                let truth = cache.get(&sim, &bench, 1000).cpi;
                let population = bench.approx_len() / 1000;
                let n = (population / 20).clamp(10, 400);
                let base = SamplingParams::for_sample_size(
                    bench.approx_len(),
                    1000,
                    w_bound,
                    Warming::Functional,
                    n,
                    0,
                )
                .expect("valid parameters");
                let estimates: Vec<f64> = (0..PHASES)
                    .map(|i| (1 + i * base.interval / PHASES).min(base.interval - 1))
                    .filter_map(|j| {
                        let params = base.with_offset(j).ok()?;
                        sim.sample(&bench, &params).ok().map(|r| r.cpi().mean())
                    })
                    .collect();
                let new_bias = bias(&estimates, truth) / truth;
                println!("  {name:<12} {} -> {}", pct(*old_bias), pct(new_bias));
            }
        }
        println!();
    }
    println!("(paper: all biases under ±2.0%, ≤6 benchmarks per configuration above ±1.0%)");
}

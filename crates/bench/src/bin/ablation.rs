//! Design-choice ablations called out in DESIGN.md §5, beyond the
//! paper's own figures:
//!
//! 1. **Systematic vs random sampling** — Section 2 argues they are
//!    equivalent when the intraclass correlation is negligible; we verify
//!    end-to-end by drawing seeded random unit sets over the reference
//!    population and comparing estimator spread against the k systematic
//!    phases.
//! 2. **Functional warming ablation** — accuracy at fixed cost for
//!    (no warming, detailed-only warming, functional warming), the
//!    Section 4 narrative in one table.
//! 3. **Checkpoint replay fidelity** — the TurboSMARTS-style library
//!    versus direct sampling (extension).

use smarts_bench::{banner, upct, HarnessArgs, RefCache};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_stats::{systematic_sample_means, RandomDesign};
use smarts_uarch::MachineConfig;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Ablations",
        "systematic vs random; warming modes; checkpoint replay (8-way)",
    );
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let cache = RefCache::new();
    let suite = args.suite();

    // --- 1: systematic vs random over the reference population ---------
    println!(
        "--- systematic vs random sampling (estimator spread over trials, n per trial = N/20) ---"
    );
    println!(
        "{:<12}{:>16}{:>16}{:>12}",
        "benchmark", "systematic RMSE", "random RMSE", "ratio"
    );
    for bench in suite.iter().take(6) {
        let reference = cache.get(&sim, bench, 1000);
        let pop = &reference.unit_cpis;
        if pop.len() < 60 {
            continue;
        }
        let truth: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let k = 20usize;
        let n = pop.len() / k;

        let sys_means = systematic_sample_means(pop, k);
        let sys_rmse = (sys_means
            .iter()
            .map(|m| (m - truth) * (m - truth))
            .sum::<f64>()
            / sys_means.len() as f64)
            .sqrt();

        let mut rnd_sq = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let design =
                RandomDesign::draw(1000, pop.len() as u64, n as u64, seed).expect("valid design");
            let mean: f64 = design.unit_indices().map(|i| pop[i as usize]).sum::<f64>()
                / design.sample_size() as f64;
            rnd_sq += (mean - truth) * (mean - truth);
        }
        let rnd_rmse = (rnd_sq / trials as f64).sqrt();
        println!(
            "{:<12}{:>16.5}{:>16.5}{:>12.2}",
            bench.name(),
            sys_rmse,
            rnd_rmse,
            sys_rmse / rnd_rmse.max(1e-12)
        );
    }
    println!("(expected: ratio ≈ 1 — systematic sampling behaves like random when δ ≈ 0)");
    println!();

    // --- 2: warming-mode accuracy at fixed measured instructions -------
    println!("--- warming ablation (|CPI error| at n = N/20, j = 1) ---");
    println!(
        "{:<12}{:>12}{:>16}{:>18}",
        "benchmark", "no warming", "detailed W=16k", "functional W=2k"
    );
    for bench in suite.iter().take(6) {
        let truth = cache.get(&sim, bench, 1000).cpi;
        let n = (bench.approx_len() / 1000 / 20).max(10);
        let mut errors = Vec::new();
        for (warming, w) in [
            (Warming::None, 0u64),
            (Warming::None, 16_000),
            (Warming::Functional, 2_000),
        ] {
            let params =
                SamplingParams::for_sample_size(bench.approx_len(), 1000, w, warming, n, 1)
                    .expect("valid parameters");
            let report = sim.sample(bench, &params).expect("sampling succeeds");
            errors.push((report.cpi().mean() - truth).abs() / truth);
        }
        println!(
            "{:<12}{:>12}{:>16}{:>18}",
            bench.name(),
            upct(errors[0]),
            upct(errors[1]),
            upct(errors[2])
        );
    }
    println!("(expected: functional warming matches or beats 8x as much detailed warming)");
    println!();

    // --- 3: checkpoint replay fidelity ---------------------------------
    println!("--- checkpoint replay vs direct sampling ---");
    println!(
        "{:<12}{:>14}{:>14}{:>16}{:>14}",
        "benchmark", "direct CPI", "replay CPI", "divergence", "replay speed"
    );
    for bench in suite.iter().take(4) {
        let n = (bench.approx_len() / 1000 / 30).max(10);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            n,
            1,
        )
        .expect("valid parameters");
        let direct = sim.sample(bench, &params).expect("sampling succeeds");
        let library = sim.build_library(bench, &params).expect("library builds");
        let replay = sim.sample_library(&library).expect("replay succeeds");
        let divergence = (direct.cpi().mean() - replay.cpi().mean()).abs() / direct.cpi().mean();
        println!(
            "{:<12}{:>14.4}{:>14.4}{:>16}{:>13.1}x",
            bench.name(),
            direct.cpi().mean(),
            replay.cpi().mean(),
            upct(divergence),
            direct.wall_total().as_secs_f64() / replay.wall_total().as_secs_f64(),
        );
    }
    println!("(expected: sub-percent divergence; replay speedup grows with stream length)");
    println!();

    // --- 4: wrong-path fetch modelling (the Section 4.5 corroboration) --
    println!("--- wrong-path fetch modelling: full-detail CPI with the knob off vs on ---");
    println!(
        "{:<12}{:>14}{:>14}{:>12}",
        "benchmark", "CPI (off)", "CPI (on)", "delta"
    );
    let mut wp_cfg = MachineConfig::eight_way();
    wp_cfg.model_wrong_path = true;
    wp_cfg.name = "8-way+wp";
    let wp_sim = SmartsSim::new(wp_cfg);
    for bench in suite.iter().take(6) {
        let off = cache.get(&sim, bench, 1000).cpi;
        let on = cache.get(&wp_sim, bench, 1000).cpi;
        println!(
            "{:<12}{:>14.4}{:>14.4}{:>12}",
            bench.name(),
            off,
            on,
            upct((on - off).abs() / off)
        );
    }
    println!("(expected: small deltas — the paper cites Cain et al. that wrong-path effects");
    println!(" on CPI are minimal, and corroborates it in Section 4.5)");
}

//! CI sampler-efficiency regression guard: the detailed-instruction
//! cost of reaching ±3% @ 99.7% under the stratified/adaptive samplers
//! must not regress against the checked-in baseline.
//!
//! Reads the checked-in reference `results/bench_ci_eff.json` (this
//! binary never writes it — the `ci_eff` binary owns the file and CI
//! runs this guard *before* re-generating it), re-runs the same
//! deterministic measurement at the reference scale, and fails when
//!
//! * the checked-in reference itself no longer states the headline
//!   criterion (≥ half the suite saving ≥ 30% honestly) — a bad
//!   baseline must not be quietly accepted,
//! * any re-measured workload whose reference had an honest win now
//!   needs more than `1 + TOLERANCE` times the reference's cheapest
//!   honest detailed-instruction cost (or lost its honest win
//!   entirely), or
//! * (full mode only) the recomputed suite no longer meets the
//!   headline criterion, or the mean best saving drops more than
//!   [`TOLERANCE`] relative below the reference.
//!
//! The measurement is seeded and simulator-deterministic, so an
//! untouched tree reproduces the reference exactly; the tolerance
//! exists to let deliberate sampler tuning land without ping-ponging
//! the baseline. `--quick` re-measures only the first
//! [`QUICK_WORKLOADS`] suite workloads (at the reference scale — the
//! pool geometry must match for the comparison to mean anything).

use smarts_bench::ci_eff::{measure, Row, EPSILON, SAVINGS_BAR, SEED, UNIT_SIZE};
use smarts_bench::upct;
use smarts_core::SmartsSim;
use smarts_stats::Confidence;
use smarts_uarch::MachineConfig;

/// Largest tolerated relative cost increase (and relative mean-saving
/// drop) against the checked-in reference.
const TOLERANCE: f64 = 0.20;

/// Workloads re-measured under `--quick` (suite order).
const QUICK_WORKLOADS: usize = 4;

/// One parsed reference workload entry.
struct RefRow {
    benchmark: String,
    pool: u64,
    per_unit: u64,
    stratified_n: u64,
    stratified_honest: bool,
    adaptive_n: u64,
    adaptive_honest: bool,
    best_savings: f64,
}

impl RefRow {
    /// Cheapest honest detailed-instruction cost in the reference, or
    /// `None` when neither strategy honestly met the target there.
    fn honest_cost(&self) -> Option<u64> {
        [
            (self.stratified_honest, self.stratified_n),
            (self.adaptive_honest, self.adaptive_n),
        ]
        .into_iter()
        .filter(|(honest, _)| *honest)
        .map(|(_, n)| n * self.per_unit)
        .min()
    }
}

struct Reference {
    scale: f64,
    seed: u64,
    rows: Vec<RefRow>,
    workloads_total: u64,
    workloads_saving30: u64,
    best_savings_mean: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("ci_eff_guard: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_ci_eff.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let reference =
        parse_reference(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    if reference.seed != SEED {
        fail(&format!(
            "reference seed {} does not match the build's seed {SEED}; regenerate {path}",
            reference.seed
        ));
    }
    // The reference must itself state the acceptance criterion; a
    // regenerated baseline that lost it should never be checked in.
    if reference.workloads_saving30 * 2 < reference.workloads_total {
        fail(&format!(
            "checked-in reference only has {}/{} workloads saving ≥{}% — the baseline \
             itself fails the headline criterion",
            reference.workloads_saving30,
            reference.workloads_total,
            SAVINGS_BAR * 100.0
        ));
    }

    smarts_bench::banner(
        "Sampler CI-efficiency guard",
        &format!(
            "fails if any workload's honest cost to reach ±{}% @ 99.7% rises more than \
             {:.0}% over results/bench_ci_eff.json, or the suite criterion is lost",
            EPSILON * 100.0,
            TOLERANCE * 100.0
        ),
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let conf = Confidence::THREE_SIGMA;
    // Always re-measure at the *reference* scale: quick mode trims the
    // workload list, never the pool geometry, because honest costs are
    // only comparable on identical pools.
    let suite: Vec<_> = smarts_workloads::suite()
        .into_iter()
        .map(|b| b.scaled(reference.scale))
        .take(if args.quick {
            QUICK_WORKLOADS
        } else {
            usize::MAX
        })
        .collect();

    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>10} {:>10}  verdict",
        "benchmark", "pool", "ref cost", "now cost", "ref best", "now best"
    );
    let mut failures = Vec::new();
    let mut rows = Vec::new();
    for bench in &suite {
        let row = measure(&sim, &cfg, bench, conf);
        let reference_row = reference
            .rows
            .iter()
            .find(|r| r.benchmark == row.benchmark)
            .unwrap_or_else(|| fail(&format!("reference has no entry for {}", row.benchmark)));
        if reference_row.pool != row.pool {
            fail(&format!(
                "{}: pool {} does not match the reference pool {} — stale reference \
                 (workload or scale changed); regenerate {path}",
                row.benchmark, row.pool, reference_row.pool
            ));
        }
        let verdict = judge(&row, reference_row);
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>10} {:>10}  {}",
            row.benchmark,
            row.pool,
            cost_str(reference_row.honest_cost()),
            cost_str(row.honest_cost()),
            upct(reference_row.best_savings),
            upct(row.best_savings()),
            if verdict.is_none() { "ok" } else { "REGRESSED" }
        );
        if let Some(why) = verdict {
            failures.push(format!("{}: {why}", row.benchmark));
        }
        rows.push(row);
    }

    // Suite-wide gates only make sense over the full suite.
    if !args.quick {
        let total = rows.len();
        let qualifying = rows.iter().filter(|r| r.qualifies()).count();
        if qualifying * 2 < total {
            failures.push(format!(
                "suite criterion lost: only {qualifying}/{total} workloads save ≥{}% \
                 honestly (reference had {}/{})",
                SAVINGS_BAR * 100.0,
                reference.workloads_saving30,
                reference.workloads_total
            ));
        }
        let mean_best = rows.iter().map(Row::best_savings).sum::<f64>() / total.max(1) as f64;
        let floor = reference.best_savings_mean * (1.0 - TOLERANCE);
        if mean_best < floor {
            failures.push(format!(
                "mean best saving {} fell more than {:.0}% below the reference {}",
                upct(mean_best),
                TOLERANCE * 100.0,
                upct(reference.best_savings_mean)
            ));
        }
        println!(
            "\nsuite: {qualifying}/{total} workloads saving ≥{}%, mean best saving {} \
             (reference {}/{}, {})",
            SAVINGS_BAR * 100.0,
            upct(mean_best),
            reference.workloads_saving30,
            reference.workloads_total,
            upct(reference.best_savings_mean)
        );
    }

    if failures.is_empty() {
        println!("\nsampler CI efficiency within the guard");
    } else {
        eprintln!();
        for failure in &failures {
            eprintln!("ci_eff_guard: {failure}");
        }
        std::process::exit(1);
    }
}

/// Per-workload verdict: `None` when within the guard, else why not.
fn judge(now: &Row, reference: &RefRow) -> Option<String> {
    let Some(ref_cost) = reference.honest_cost() else {
        // The reference had no honest win here; nothing to regress
        // from (improvements are welcome and land via regeneration).
        return None;
    };
    let Some(now_cost) = now.honest_cost() else {
        return Some(format!(
            "lost its honest win (reference reached the target in {ref_cost} detailed \
             instructions)"
        ));
    };
    let ceiling = (ref_cost as f64 * (1.0 + TOLERANCE)).ceil() as u64;
    if now_cost > ceiling {
        return Some(format!(
            "honest cost rose {now_cost} > {ceiling} (reference {ref_cost} + {:.0}%)",
            TOLERANCE * 100.0
        ));
    }
    None
}

fn cost_str(cost: Option<u64>) -> String {
    match cost {
        Some(c) => c.to_string(),
        None => "-".to_string(),
    }
}

/// Extracts the reference. Hand-rolled (the workspace builds offline,
/// no serde): the `ci_eff` binary writes one key per line exactly so
/// this scanner can re-read it. A `"benchmark"` key opens a new
/// workload entry; scalar keys before the first entry or after the
/// workload array are file-level.
fn parse_reference(text: &str) -> Result<Reference, String> {
    let mut scale = None;
    let mut seed = None;
    let mut unit_size = None;
    let mut total = None;
    let mut saving30 = None;
    let mut mean = None;
    let mut rows: Vec<RefRow> = Vec::new();

    fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
        value.parse().map_err(|_| format!("bad {key} `{value}`"))
    }

    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            rows.push(RefRow {
                benchmark: value.trim_matches('"').to_string(),
                pool: 0,
                per_unit: 0,
                stratified_n: 0,
                stratified_honest: false,
                adaptive_n: 0,
                adaptive_honest: false,
                best_savings: 0.0,
            });
            continue;
        }
        if let Some(row) = rows.last_mut() {
            if let Some(value) = key_value(line, "pool") {
                row.pool = parse("pool", value)?;
            } else if let Some(value) = key_value(line, "detailed_per_unit") {
                row.per_unit = parse("detailed_per_unit", value)?;
            } else if let Some(value) = key_value(line, "stratified_n") {
                row.stratified_n = parse("stratified_n", value)?;
            } else if let Some(value) = key_value(line, "adaptive_n") {
                row.adaptive_n = parse("adaptive_n", value)?;
            } else if let Some(value) = key_value(line, "best_savings") {
                row.best_savings = parse("best_savings", value)?;
            } else {
                // Honesty is target_met ∧ error ≤ ε, recomputed from the
                // recorded per-strategy fields.
                for tag in ["stratified", "adaptive"] {
                    let met = key_value(line, &format!("{tag}_target_met"))
                        .map(|v| parse(&format!("{tag}_target_met"), v))
                        .transpose()?;
                    let err: Option<f64> = key_value(line, &format!("{tag}_error"))
                        .map(|v| parse(&format!("{tag}_error"), v))
                        .transpose()?;
                    let honest = match tag {
                        "stratified" => &mut row.stratified_honest,
                        _ => &mut row.adaptive_honest,
                    };
                    if let Some(met) = met {
                        *honest = met;
                    }
                    if let Some(err) = err {
                        *honest = *honest && err <= EPSILON;
                    }
                }
            }
        }
        // File-level scalars (never shadowed: workload entries have no
        // key named scale/seed/unit_size/workloads_*/best_savings_mean).
        if let Some(value) = key_value(line, "scale") {
            scale = Some(parse("scale", value)?);
        } else if let Some(value) = key_value(line, "seed") {
            seed = Some(parse("seed", value)?);
        } else if let Some(value) = key_value(line, "unit_size") {
            unit_size = Some(parse("unit_size", value)?);
        } else if let Some(value) = key_value(line, "workloads_total") {
            total = Some(parse("workloads_total", value)?);
        } else if let Some(value) = key_value(line, "workloads_saving30") {
            saving30 = Some(parse("workloads_saving30", value)?);
        } else if let Some(value) = key_value(line, "best_savings_mean") {
            mean = Some(parse("best_savings_mean", value)?);
        }
    }

    if unit_size != Some(UNIT_SIZE) {
        return Err(format!(
            "reference unit_size {unit_size:?} does not match the build's {UNIT_SIZE}"
        ));
    }
    let reference = Reference {
        scale: scale.ok_or("missing scale")?,
        seed: seed.ok_or("missing seed")?,
        rows,
        workloads_total: total.ok_or("missing workloads_total")?,
        workloads_saving30: saving30.ok_or("missing workloads_saving30")?,
        best_savings_mean: mean.ok_or("missing best_savings_mean")?,
    };
    if reference.rows.is_empty() {
        return Err("no workload entries".into());
    }
    if reference.rows.len() as u64 != reference.workloads_total {
        return Err(format!(
            "workloads_total {} does not match the {} entries present",
            reference.workloads_total,
            reference.rows.len()
        ));
    }
    if !(reference.scale > 0.0 && reference.scale.is_finite()) {
        return Err("non-positive scale".into());
    }
    Ok(reference)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

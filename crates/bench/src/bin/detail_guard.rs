//! CI detailed-rate regression guard.
//!
//! Reads the checked-in reference `results/bench_detail.json` (this
//! binary never writes it — the `detail` binary owns the file and CI
//! runs this guard *before* re-generating it), re-measures the
//! detailed-mode KIPS of each reference probe on the event-driven
//! [`Pipeline`] with the same median-of-7 harness, and exits non-zero
//! when any probe's detailed rate has dropped more than [`TOLERANCE`]
//! below its reference — the S_D regression gate for the detailed
//! engine.
//!
//! `--quick` checks only the first reference probe; `--bench <name>`
//! restricts to one probe.

use smarts_bench::timing::time;
use smarts_isa::{Cpu, ExecRecord, Memory, Program};
use smarts_uarch::{MachineConfig, Pipeline, WarmState};

/// Largest tolerated drop of measured detailed KIPS below the reference
/// (machine-to-machine and load-induced noise stays well inside this;
/// a real hot-path regression does not).
const TOLERANCE: f64 = 0.20;

/// Total measurement attempts per probe. Between-invocation host noise
/// (frequency scaling, co-tenant load) can depress a whole median-of-7
/// batch; a probe only counts as regressed when *every* attempt lands
/// below the tolerance, which a real hot-path regression still does.
const ATTEMPTS: u32 = 3;

struct Reference {
    benchmark: String,
    machine: String,
    instructions: u64,
    detailed_kips: f64,
}

/// A fresh functional CPU over the loaded image, as a trace source.
fn trace_source<'a>(
    program: &'a Program,
    memory: &'a Memory,
) -> impl FnMut() -> Option<ExecRecord> + 'a {
    let mut cpu = Cpu::new();
    let mut mem = memory.clone();
    move || {
        if cpu.halted() {
            return None;
        }
        cpu.step(program, &mut mem).ok()
    }
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_detail.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let mut references = parse_references(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse reference {path}: {e}")));
    if references.is_empty() {
        fail(&format!("reference {path} lists no probes"));
    }
    if args.quick {
        references.truncate(1);
    }
    if let Some(name) = &args.bench {
        references.retain(|r| &r.benchmark == name);
        if references.is_empty() {
            fail(&format!("reference {path} has no probe named {name}"));
        }
    }

    smarts_bench::banner(
        "Detailed-rate guard",
        &format!(
            "fails if detailed KIPS drops more than {:.0}% below results/bench_detail.json",
            TOLERANCE * 100.0
        ),
    );
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "machine", "ref KIPS", "now KIPS", "ratio"
    );
    let mut regressed = false;
    for reference in &references {
        let cfg = match reference.machine.as_str() {
            "8-way" => MachineConfig::eight_way(),
            "16-way" => MachineConfig::sixteen_way(),
            other => fail(&format!("reference row names unknown machine `{other}`")),
        };
        let bench = smarts_workloads::find(&reference.benchmark)
            .unwrap_or_else(|| {
                fail(&format!(
                    "reference probe {} is not in the suite",
                    reference.benchmark
                ))
            })
            .scaled(1.0);
        let loaded = bench.load();
        let instructions = reference.instructions;
        let mut kips = 0.0f64;
        let mut ratio = 0.0f64;
        let mut ok = false;
        for _ in 0..ATTEMPTS {
            let detailed = time(|| {
                let mut warm = WarmState::new(&cfg);
                let mut pipeline = Pipeline::new(&cfg);
                let mut source = trace_source(&loaded.program, &loaded.memory);
                pipeline.run(&mut warm, &mut source, instructions, true)
            });
            let attempt_kips = instructions as f64 / detailed.as_secs_f64() / 1e3;
            if attempt_kips > kips {
                kips = attempt_kips;
                ratio = kips / reference.detailed_kips;
            }
            if ratio >= 1.0 - TOLERANCE {
                ok = true;
                break;
            }
        }
        regressed |= !ok;
        println!(
            "{:<12} {:<8} {:>12.1} {:>12.1} {:>8.3}  {}",
            reference.benchmark,
            reference.machine,
            reference.detailed_kips,
            kips,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    if regressed {
        eprintln!(
            "\ndetailed rate regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\ndetailed rate within the guard");
}

fn fail(msg: &str) -> ! {
    eprintln!("detail_guard: {msg}");
    std::process::exit(1)
}

/// Extracts `(benchmark, instructions, detailed_kips)` triples from the
/// reference file. Hand-rolled (the workspace builds offline, no serde):
/// scans for the three keys in order within each result object, which is
/// exactly the shape the `detail` binary writes.
fn parse_references(text: &str) -> Result<Vec<Reference>, String> {
    let mut references = Vec::new();
    let mut benchmark: Option<String> = None;
    let mut machine: Option<String> = None;
    let mut instructions: Option<u64> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            benchmark = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = key_value(line, "machine") {
            machine = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = key_value(line, "instructions") {
            instructions = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad instructions value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "detailed_kips") {
            let kips: f64 = value
                .parse()
                .map_err(|_| format!("bad detailed_kips value `{value}`"))?;
            let benchmark = benchmark
                .take()
                .ok_or("detailed_kips before its benchmark name")?;
            // Rows predating per-machine baselines carried an implicit
            // 8-way machine.
            let machine = machine.take().unwrap_or_else(|| "8-way".to_string());
            let instructions = instructions
                .take()
                .ok_or("detailed_kips before its instruction count")?;
            if !(kips.is_finite() && kips > 0.0) {
                return Err(format!("non-positive detailed_kips for {benchmark}"));
            }
            references.push(Reference {
                benchmark,
                machine,
                instructions,
                detailed_kips: kips,
            });
        }
    }
    Ok(references)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

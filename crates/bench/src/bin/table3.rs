//! Table 3: machine configurations.
//!
//! Prints the two Table 3 machines as configured in `smarts-uarch`,
//! together with the derived quantities the paper quotes in the text
//! (the Section 4.4 warming bound and the recommended W).

use smarts_bench::banner;
use smarts_uarch::MachineConfig;

fn row(label: &str, eight: String, sixteen: String) {
    println!("{label:<26} {eight:<30} {sixteen:<30}");
}

fn main() {
    banner("Table 3", "Machine configurations");
    let e = MachineConfig::eight_way();
    let s = MachineConfig::sixteen_way();

    row("Parameter", "8-way (baseline)".into(), "16-way".into());
    row(
        "RUU/LSQ",
        format!("{}/{}", e.ruu_size, e.lsq_size),
        format!("{}/{}", s.ruu_size, s.lsq_size),
    );
    row(
        "L1 I/D",
        format!(
            "{}KB {}-way, {} ports",
            e.l1d.size_bytes >> 10,
            e.l1d.assoc,
            e.l1d_ports
        ),
        format!(
            "{}KB {}-way, {} ports",
            s.l1d.size_bytes >> 10,
            s.l1d.assoc,
            s.l1d_ports
        ),
    );
    row("MSHRs", e.mshrs.to_string(), s.mshrs.to_string());
    row(
        "L2",
        format!("{}M {}-way", e.l2.size_bytes >> 20, e.l2.assoc),
        format!("{}M {}-way", s.l2.size_bytes >> 20, s.l2.assoc),
    );
    row(
        "Store buffer",
        format!("{}-entry", e.store_buffer),
        format!("{}-entry", s.store_buffer),
    );
    row(
        "ITLB/DTLB",
        format!(
            "{}-way {}/{} entries",
            e.itlb.assoc, e.itlb.entries, e.dtlb.entries
        ),
        format!(
            "{}-way {}/{} entries",
            s.itlb.assoc, s.itlb.entries, s.dtlb.entries
        ),
    );
    row(
        "TLB miss",
        format!("{} cycles", e.itlb.miss_penalty),
        format!("{} cycles", s.itlb.miss_penalty),
    );
    row(
        "L1/L2/mem latency",
        format!(
            "{}/{}/{} cycles",
            e.l1d.latency, e.l2.latency, e.mem_latency
        ),
        format!(
            "{}/{}/{} cycles",
            s.l1d.latency, s.l2.latency, s.mem_latency
        ),
    );
    row(
        "Functional units",
        format!(
            "{} I-ALU, {} I-MUL/DIV, {} FP-ALU, {} FP-MUL/DIV",
            e.int_alu_units, e.int_muldiv_units, e.fp_alu_units, e.fp_muldiv_units
        ),
        format!(
            "{} I-ALU, {} I-MUL/DIV, {} FP-ALU, {} FP-MUL/DIV",
            s.int_alu_units, s.int_muldiv_units, s.fp_alu_units, s.fp_muldiv_units
        ),
    );
    row(
        "Branch predictor",
        format!(
            "Combined {}K tables, {}-cycle mispred, {} pred/cycle",
            e.bpred.bimodal_entries >> 10,
            e.bpred.mispred_penalty,
            e.bpred.predictions_per_cycle
        ),
        format!(
            "Combined {}K tables, {}-cycle mispred, {} preds/cycle",
            s.bpred.bimodal_entries >> 10,
            s.bpred.mispred_penalty,
            s.bpred.predictions_per_cycle
        ),
    );
    println!();
    row(
        "W bound (Sec 4.4)",
        format!("{} instructions", e.detailed_warming_bound()),
        format!("{} instructions", s.detailed_warming_bound()),
    );
    row(
        "recommended W",
        format!("{} instructions", e.recommended_detailed_warming()),
        format!("{} instructions", s.recommended_detailed_warming()),
    );
}

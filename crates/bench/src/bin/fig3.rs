//! Figure 3: minimum instructions that must be measured per benchmark to
//! reach the standard confidence targets.
//!
//! Using the measured V_CPI at U = 10 (as the paper does), computes
//! `n·U = U·(z·V/ε)²` for the four targets the figure shows and reports
//! it as a fraction of the benchmark's length. The paper's claim: even
//! ±1% at 99.7% confidence needs at most ~0.1% of the stream.

use smarts_bench::{banner, upct, HarnessArgs, RefCache};
use smarts_core::SmartsSim;
use smarts_stats::{required_sample_size, Confidence, RunningStats};

const UNIT: u64 = 10;

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Figure 3",
        "Minimum measured instructions (n·U at U=10) for common confidence targets (8-way)",
    );
    let sim = SmartsSim::new(
        args.config
            .configs()
            .into_iter()
            .next()
            .expect("at least one config"),
    );
    let cache = RefCache::new();

    let targets = [
        ("±1% @99.7%", 0.01, Confidence::THREE_SIGMA),
        ("±3% @99.7%", 0.03, Confidence::THREE_SIGMA),
        ("±1% @95%", 0.01, Confidence::NINETY_FIVE),
        ("±3% @95%", 0.03, Confidence::NINETY_FIVE),
    ];

    print!("{:<12}{:>8}{:>10}", "benchmark", "V(U=10)", "length");
    for (label, _, _) in &targets {
        print!("{:>14}", label);
    }
    println!("{:>12}", "%len @3/99.7");

    for bench in args.suite() {
        let reference = cache.get(&sim, &bench, UNIT);
        let stats: RunningStats = reference.unit_cpis.iter().copied().collect();
        let v = stats.coefficient_of_variation();
        print!(
            "{:<12}{:>8.3}{:>9.1}M",
            bench.name(),
            v,
            reference.instructions as f64 / 1e6
        );
        let mut headline_fraction = 0.0;
        for (i, (_, eps, conf)) in targets.iter().enumerate() {
            let n = required_sample_size(v, *eps, *conf).expect("valid target");
            let measured = n * UNIT;
            print!("{:>14}", measured);
            if i == 1 {
                headline_fraction = measured as f64 / reference.instructions as f64;
            }
        }
        println!("{:>12}", upct(headline_fraction.min(1.0)));
    }
    println!();
    println!("(paper: worst case ≤0.1% of the stream for ±1%@99.7%; ours scales with stream length — the");
    println!(" absolute n·U is length-independent, so the fraction shrinks as streams grow toward SPEC2K size)");
}

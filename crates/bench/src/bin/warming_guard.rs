//! CI warming-rate regression guard.
//!
//! Reads the checked-in reference `results/bench_warming.json` (this
//! binary never writes it — the `warming` binary owns the file and CI
//! runs this guard *before* re-generating it), re-measures the
//! functional-warming MIPS of each reference probe with the same
//! median-of-7 harness, and exits non-zero when any probe's warming rate
//! has dropped more than [`TOLERANCE`] below its reference — the S_FW
//! regression gate for the warming hot path.
//!
//! `--quick` checks only the first reference probe; `--bench <name>`
//! restricts to one probe.

use smarts_bench::timing::time;
use smarts_core::FunctionalEngine;
use smarts_uarch::{MachineConfig, WarmState};

/// Largest tolerated drop of measured warming MIPS below the reference
/// (machine-to-machine and load-induced noise stays well inside this;
/// a real hot-path regression does not).
const TOLERANCE: f64 = 0.20;

struct Reference {
    benchmark: String,
    warm_jobs: u64,
    instructions: u64,
    warming_mips: f64,
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_warming.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let mut references = parse_references(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse reference {path}: {e}")));
    if references.is_empty() {
        fail(&format!("reference {path} lists no probes"));
    }
    // This guard re-measures the single-producer pass; sharded rows
    // (warm_jobs > 1) are guarded by `warm_shard_guard` against their own
    // baseline, never compared against serial references here.
    references.retain(|r| r.warm_jobs == 1);
    if references.is_empty() {
        fail(&format!("reference {path} lists no warm_jobs=1 probes"));
    }
    if args.quick {
        references.truncate(1);
    }
    if let Some(name) = &args.bench {
        references.retain(|r| &r.benchmark == name);
        if references.is_empty() {
            fail(&format!("reference {path} has no probe named {name}"));
        }
    }

    smarts_bench::banner(
        "Warming-rate guard",
        &format!(
            "fails if warming MIPS drops more than {:.0}% below results/bench_warming.json",
            TOLERANCE * 100.0
        ),
    );
    let cfg = MachineConfig::eight_way();
    println!(
        "{:<12} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "ref MIPS", "now MIPS", "ratio"
    );
    let mut regressed = false;
    for reference in &references {
        let bench = smarts_workloads::find(&reference.benchmark)
            .unwrap_or_else(|| {
                fail(&format!(
                    "reference probe {} is not in the suite",
                    reference.benchmark
                ))
            })
            .scaled(1.0);
        let loaded = bench.load();
        let instructions = reference.instructions;
        let warming = time(|| {
            let mut engine = FunctionalEngine::new(loaded.clone());
            let mut warm = WarmState::new(&cfg);
            engine.fast_forward_warming(instructions, &mut warm)
        });
        let mips = instructions as f64 / warming.as_secs_f64() / 1e6;
        let ratio = mips / reference.warming_mips;
        let ok = ratio >= 1.0 - TOLERANCE;
        regressed |= !ok;
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>8.3}  {}",
            reference.benchmark,
            reference.warming_mips,
            mips,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    if regressed {
        eprintln!(
            "\nwarming rate regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nwarming rate within the guard");
}

fn fail(msg: &str) -> ! {
    eprintln!("warming_guard: {msg}");
    std::process::exit(1)
}

/// Extracts `(benchmark, warm_jobs, instructions, warming_mips)` rows
/// from the reference file. Hand-rolled (the workspace builds offline,
/// no serde): scans for the keys in order within each result object,
/// which is exactly the shape the `warming` binary writes. `warm_jobs`
/// defaults to 1 for rows written before the field existed.
fn parse_references(text: &str) -> Result<Vec<Reference>, String> {
    let mut references = Vec::new();
    let mut benchmark: Option<String> = None;
    let mut warm_jobs: Option<u64> = None;
    let mut instructions: Option<u64> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            benchmark = Some(value.trim_matches('"').to_string());
            warm_jobs = None;
        } else if let Some(value) = key_value(line, "warm_jobs") {
            warm_jobs = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad warm_jobs value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "instructions") {
            instructions = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad instructions value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "warming_mips") {
            let mips: f64 = value
                .parse()
                .map_err(|_| format!("bad warming_mips value `{value}`"))?;
            let benchmark = benchmark
                .take()
                .ok_or("warming_mips before its benchmark name")?;
            let instructions = instructions
                .take()
                .ok_or("warming_mips before its instruction count")?;
            if !(mips.is_finite() && mips > 0.0) {
                return Err(format!("non-positive warming_mips for {benchmark}"));
            }
            references.push(Reference {
                benchmark,
                warm_jobs: warm_jobs.take().unwrap_or(1),
                instructions,
                warming_mips: mips,
            });
        }
    }
    Ok(references)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

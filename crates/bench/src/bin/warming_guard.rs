//! CI warming-rate regression guard.
//!
//! Reads the checked-in reference `results/bench_warming.json` (this
//! binary never writes it — the `warming` binary owns the file and CI
//! runs this guard *before* re-generating it), re-measures the
//! functional-warming MIPS of each reference probe with the same
//! median-of-7 harness, and exits non-zero when any probe's warming rate
//! has dropped more than [`TOLERANCE`] below its reference — the S_FW
//! regression gate for the warming hot path.
//!
//! `--quick` checks the first reference probe of each frontend;
//! `--bench <name>` restricts to one probe.

use smarts_bench::timing::time;
use smarts_core::FunctionalEngine;
use smarts_isa::{BuiltinIsa, RiscIsa};
use smarts_uarch::{MachineConfig, WarmState};
use smarts_workloads::{Frontend, Loaded};

/// Largest tolerated drop of measured warming MIPS below the reference
/// (machine-to-machine and load-induced noise stays well inside this;
/// a real hot-path regression does not).
const TOLERANCE: f64 = 0.20;

struct Reference {
    benchmark: String,
    isa: String,
    warm_jobs: u64,
    instructions: u64,
    warming_mips: f64,
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_warming.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let mut references = parse_references(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse reference {path}: {e}")));
    if references.is_empty() {
        fail(&format!("reference {path} lists no probes"));
    }
    // This guard re-measures the single-producer pass; sharded rows
    // (warm_jobs > 1) are guarded by `warm_shard_guard` against their own
    // baseline, never compared against serial references here.
    references.retain(|r| r.warm_jobs == 1);
    if references.is_empty() {
        fail(&format!("reference {path} lists no warm_jobs=1 probes"));
    }
    if args.quick {
        // Quick mode still guards every frontend: keep the first probe
        // of each distinct isa rather than the first row outright.
        let mut seen: Vec<String> = Vec::new();
        references.retain(|r| {
            if seen.contains(&r.isa) {
                false
            } else {
                seen.push(r.isa.clone());
                true
            }
        });
    }
    if let Some(name) = &args.bench {
        references.retain(|r| &r.benchmark == name);
        if references.is_empty() {
            fail(&format!("reference {path} has no probe named {name}"));
        }
    }

    smarts_bench::banner(
        "Warming-rate guard",
        &format!(
            "fails if warming MIPS drops more than {:.0}% below results/bench_warming.json",
            TOLERANCE * 100.0
        ),
    );
    let cfg = MachineConfig::eight_way();
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "isa", "ref MIPS", "now MIPS", "ratio"
    );
    let mut regressed = false;
    for reference in &references {
        let mips = match reference.isa.as_str() {
            "builtin" => remeasure::<BuiltinIsa>(reference, &cfg),
            "risc" => remeasure::<RiscIsa>(reference, &cfg),
            other => fail(&format!(
                "reference probe {} names unknown frontend `{other}`",
                reference.benchmark
            )),
        };
        let ratio = mips / reference.warming_mips;
        let ok = ratio >= 1.0 - TOLERANCE;
        regressed |= !ok;
        println!(
            "{:<12} {:<8} {:>12.2} {:>12.2} {:>8.3}  {}",
            reference.benchmark,
            reference.isa,
            reference.warming_mips,
            mips,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    if regressed {
        eprintln!(
            "\nwarming rate regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nwarming rate within the guard");
}

fn fail(msg: &str) -> ! {
    eprintln!("warming_guard: {msg}");
    std::process::exit(1)
}

/// Re-measures one reference probe's warming MIPS under frontend `F`.
fn remeasure<F: Frontend>(reference: &Reference, cfg: &MachineConfig) -> f64 {
    let loaded: Loaded<F> = F::resolve(&reference.benchmark, 1.0).unwrap_or_else(|e| {
        fail(&format!(
            "reference probe {} does not resolve under `{}`: {e}",
            reference.benchmark, reference.isa
        ))
    });
    let instructions = reference.instructions;
    let warming = time(|| {
        let mut engine = FunctionalEngine::new(loaded.clone());
        let mut warm = WarmState::new(cfg);
        engine.fast_forward_warming(instructions, &mut warm)
    });
    instructions as f64 / warming.as_secs_f64() / 1e6
}

/// Extracts `(benchmark, isa, warm_jobs, instructions, warming_mips)`
/// rows from the reference file. Hand-rolled (the workspace builds
/// offline, no serde): scans for the keys in order within each result
/// object, which is exactly the shape the `warming` binary writes.
/// `isa` and `warm_jobs` default to builtin / 1 for rows written before
/// the fields existed.
fn parse_references(text: &str) -> Result<Vec<Reference>, String> {
    let mut references = Vec::new();
    let mut benchmark: Option<String> = None;
    let mut isa: Option<String> = None;
    let mut warm_jobs: Option<u64> = None;
    let mut instructions: Option<u64> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            benchmark = Some(value.trim_matches('"').to_string());
            isa = None;
            warm_jobs = None;
        } else if let Some(value) = key_value(line, "isa") {
            isa = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = key_value(line, "warm_jobs") {
            warm_jobs = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad warm_jobs value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "instructions") {
            instructions = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad instructions value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "warming_mips") {
            let mips: f64 = value
                .parse()
                .map_err(|_| format!("bad warming_mips value `{value}`"))?;
            let benchmark = benchmark
                .take()
                .ok_or("warming_mips before its benchmark name")?;
            let instructions = instructions
                .take()
                .ok_or("warming_mips before its instruction count")?;
            if !(mips.is_finite() && mips > 0.0) {
                return Err(format!("non-positive warming_mips for {benchmark}"));
            }
            references.push(Reference {
                benchmark,
                // Rows written before the frontend existed are builtin.
                isa: isa.take().unwrap_or_else(|| "builtin".to_string()),
                warm_jobs: warm_jobs.take().unwrap_or(1),
                instructions,
                warming_mips: mips,
            });
        }
    }
    Ok(references)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

//! CI checkpoint-store regression guard: read rate and bit-identity.
//!
//! Reads the checked-in reference `results/bench_ckpt.json` (this binary
//! never writes it — the `ckpt` binary owns the file and CI runs this
//! guard *before* re-generating it), rebuilds each reference store from
//! its recorded scale and unit count, and fails when either
//!
//! * the store's decode rate (MiB/s) drops more than [`TOLERANCE`] below
//!   its reference, or
//! * replaying the store through the parallel executor is not
//!   bit-identical to sequential in-memory library replay — the
//!   correctness contract `--from-checkpoints` rests on.
//!
//! `--quick` checks only the first reference probe; `--bench <name>`
//! restricts to one probe.

use smarts_bench::timing::time;
use smarts_ckpt::{CkptReader, CkptWriter, IsaId, StoreMeta};
use smarts_core::{SampleReport, SamplingParams, SmartsSim, Warming};
use smarts_exec::{replay_store, Executor};
use smarts_uarch::MachineConfig;

/// Largest tolerated drop of measured decode MiB/s below the reference
/// (machine-to-machine and load-induced noise stays well inside this; a
/// real codec or I/O hot-path regression does not).
const TOLERANCE: f64 = 0.20;

/// Total measurement attempts per probe. Between-invocation host noise
/// can depress a whole median-of-7 batch; a probe only counts as
/// regressed when *every* attempt lands below the tolerance.
const ATTEMPTS: u32 = 3;

struct Reference {
    benchmark: String,
    scale: f64,
    units: u64,
    read_mibps: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("ckpt_guard: {msg}");
    std::process::exit(1)
}

fn assert_bit_identical(replayed: &SampleReport, sequential: &SampleReport, what: &str) {
    let same = replayed.sample_size() == sequential.sample_size()
        && replayed.cpi().mean().to_bits() == sequential.cpi().mean().to_bits()
        && replayed.epi().mean().to_bits() == sequential.epi().mean().to_bits()
        && replayed
            .units
            .iter()
            .zip(&sequential.units)
            .all(|(p, s)| p.cycles == s.cycles && p.cpi.to_bits() == s.cpi.to_bits());
    if !same {
        fail(&format!(
            "{what}: store replay is not bit-identical to library replay \
             (store CPI {} vs library CPI {})",
            replayed.cpi().mean(),
            sequential.cpi().mean()
        ));
    }
}

fn main() {
    let args = smarts_bench::HarnessArgs::parse();
    let path = "results/bench_ckpt.json";
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read reference {path}: {e}")));
    let mut references = parse_references(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse reference {path}: {e}")));
    if references.is_empty() {
        fail(&format!("reference {path} lists no probes"));
    }
    if args.quick {
        references.truncate(1);
    }
    if let Some(name) = &args.bench {
        references.retain(|r| &r.benchmark == name);
        if references.is_empty() {
            fail(&format!("reference {path} has no probe named {name}"));
        }
    }

    smarts_bench::banner(
        "Checkpoint-store guard",
        &format!(
            "fails if store decode MiB/s drops more than {:.0}% below \
             results/bench_ckpt.json, or if store replay diverges from library replay",
            TOLERANCE * 100.0
        ),
    );
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let store = std::env::temp_dir().join(format!("smarts-ckpt-guard-{}.ckpt", std::process::id()));
    println!(
        "{:<12} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "ref MiB/s", "now MiB/s", "ratio"
    );
    let mut regressed = false;
    for reference in &references {
        let bench = smarts_workloads::find(&reference.benchmark)
            .unwrap_or_else(|| {
                fail(&format!(
                    "reference probe {} is not in the suite",
                    reference.benchmark
                ))
            })
            .scaled(reference.scale);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            reference.units,
            0,
        )
        .unwrap_or_else(|e| fail(&format!("{}: bad parameters: {e}", reference.benchmark)));

        // Rebuild the reference store (untimed: the guard measures
        // decode, not warming).
        let meta = StoreMeta {
            params,
            benchmark: reference.benchmark.clone(),
            scale: reference.scale,
            isa: IsaId::Builtin,
        };
        let mut writer = CkptWriter::create(&store, &cfg, &meta)
            .unwrap_or_else(|e| fail(&format!("cannot create scratch store: {e}")));
        sim.stream_checkpoints(bench.load(), &params, |checkpoint| {
            writer.append(&checkpoint).is_ok()
        })
        .unwrap_or_else(|e| fail(&format!("{}: warming failed: {e}", reference.benchmark)));
        let summary = writer
            .finish()
            .unwrap_or_else(|e| fail(&format!("cannot finish scratch store: {e}")));
        let mib = summary.bytes as f64 / (1024.0 * 1024.0);

        // Bit-identity: executor replay from disk vs sequential
        // in-memory library replay.
        let library = sim
            .build_library(&bench, &params)
            .unwrap_or_else(|e| fail(&format!("{}: library build: {e}", reference.benchmark)));
        let sequential = sim
            .sample_library(&library)
            .unwrap_or_else(|e| fail(&format!("{}: library replay: {e}", reference.benchmark)));
        let executor = Executor::new(2).unwrap_or_else(|e| fail(&format!("executor: {e}")));
        let replayed = replay_store(&executor, &sim, &store)
            .unwrap_or_else(|e| fail(&format!("{}: store replay: {e}", reference.benchmark)));
        if let Some(damage) = &replayed.damage {
            fail(&format!(
                "{}: fresh store reported damage: {damage}",
                reference.benchmark
            ));
        }
        assert_bit_identical(&replayed.report.report, &sequential, &reference.benchmark);

        // Decode-rate regression gate.
        let mut mibps = 0.0f64;
        let mut ratio = 0.0f64;
        let mut ok = false;
        for _ in 0..ATTEMPTS {
            let read = time(|| {
                let mut reader = CkptReader::open(&store, &cfg).expect("open scratch store");
                while let Some(next) = reader.next_checkpoint() {
                    next.expect("intact record");
                }
            });
            let attempt = mib / read.as_secs_f64();
            if attempt > mibps {
                mibps = attempt;
                ratio = mibps / reference.read_mibps;
            }
            if ratio >= 1.0 - TOLERANCE {
                ok = true;
                break;
            }
        }
        regressed |= !ok;
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.3}  {}",
            reference.benchmark,
            reference.read_mibps,
            mibps,
            ratio,
            if ok { "ok" } else { "REGRESSED" }
        );
    }
    std::fs::remove_file(&store).ok();
    if regressed {
        eprintln!(
            "\nstore decode rate regressed beyond the {:.0}% guard",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("\nstore decode rate within the guard, replay bit-identical");
}

/// Extracts `(benchmark, scale, units, read_mibps)` from the reference
/// file. Hand-rolled (the workspace builds offline, no serde): scans for
/// the keys in order within each result object, which is exactly the
/// shape the `ckpt` binary writes.
fn parse_references(text: &str) -> Result<Vec<Reference>, String> {
    let mut references = Vec::new();
    let mut benchmark: Option<String> = None;
    let mut scale: Option<f64> = None;
    let mut units: Option<u64> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(value) = key_value(line, "benchmark") {
            benchmark = Some(value.trim_matches('"').to_string());
        } else if let Some(value) = key_value(line, "scale") {
            scale = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad scale value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "units") {
            units = Some(
                value
                    .parse()
                    .map_err(|_| format!("bad units value `{value}`"))?,
            );
        } else if let Some(value) = key_value(line, "read_mibps") {
            let mibps: f64 = value
                .parse()
                .map_err(|_| format!("bad read_mibps value `{value}`"))?;
            let benchmark = benchmark
                .take()
                .ok_or("read_mibps before its benchmark name")?;
            let scale = scale.take().ok_or("read_mibps before its scale")?;
            let units = units.take().ok_or("read_mibps before its unit count")?;
            if !(mibps.is_finite() && mibps > 0.0) {
                return Err(format!("non-positive read_mibps for {benchmark}"));
            }
            references.push(Reference {
                benchmark,
                scale,
                units,
                read_mibps: mibps,
            });
        }
    }
    Ok(references)
}

/// `"key": value,` → `value` (quotes kept, trailing comma stripped).
fn key_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(&format!("\"{key}\":"))?;
    Some(rest.trim().trim_end_matches(','))
}

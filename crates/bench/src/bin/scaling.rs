//! Worker-count scaling of the parallel execution subsystem.
//!
//! For 1, 2, 4, and `nproc` workers this reports, per mode:
//!
//! * **checkpoint** — wall-clock split into the sequential library-build
//!   pass and the parallel replay phase, with the replay-phase speedup
//!   over one worker (the build pass is the Amdahl term; replay itself
//!   is embarrassingly parallel and bit-identical to sequential).
//! * **sharded** — end-to-end wall-clock against the sequential driver
//!   (no sequential pass at all) plus the residual cold-start bias of
//!   the merged estimate, which checkpoint mode avoids by construction.

use smarts_bench::{banner, pct, HarnessArgs};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{residual_bias, Executor, ParallelDriver, ParallelMode};
use smarts_uarch::MachineConfig;
use std::time::{Duration, Instant};

fn fmt(d: Duration) -> String {
    format!("{:.2?}", d)
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Scaling",
        "parallel sampling wall-clock vs worker count (8-way machine)",
    );
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut job_counts = vec![1usize, 2, 4];
    if !job_counts.contains(&nproc) {
        job_counts.push(nproc);
    }

    let benches = if args.bench.is_some() {
        args.suite()
    } else {
        let scale = if args.quick {
            args.scale.min(0.1)
        } else {
            args.scale
        };
        ["hashp-2", "branchy-1"]
            .iter()
            .map(|n| {
                smarts_workloads::find(n)
                    .expect("suite benchmark")
                    .scaled(scale)
            })
            .collect()
    };

    for bench in &benches {
        // Enough detailed work (n·(W+U)) that replay, not the build pass,
        // carries the run; the same design is used at every worker count.
        let n = if args.quick { 20 } else { 60 };
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            n,
            0,
        )
        .expect("valid sampling parameters");

        let seq_start = Instant::now();
        let sequential = sim.sample(bench, &params).expect("sequential run");
        let seq_wall = seq_start.elapsed();
        // The bit-identity baseline: a sequential replay of the same
        // library (a direct run's warm state differs per the checkpoint
        // module docs, so it is compared only for sharded-mode bias).
        let library = sim.build_library(bench, &params).expect("library");
        let replay_start = Instant::now();
        let seq_replay = sim.sample_library(&library).expect("sequential replay");
        let seq_replay_wall = replay_start.elapsed();
        println!(
            "--- {} (n = {}, sequential driver: {}, sequential replay: {}) ---",
            bench.name(),
            sequential.sample_size(),
            fmt(seq_wall),
            fmt(seq_replay_wall)
        );
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "jobs",
            "ckpt-total",
            "build",
            "replay",
            "replay-x",
            "shard-total",
            "shard-x",
            "cpi-bias",
            "max-unit"
        );

        let mut replay_base: Option<Duration> = None;
        for &jobs in &job_counts {
            let executor = Executor::new(jobs).expect("executor");
            let start = Instant::now();
            let ckpt = sim
                .sample_parallel(bench, &params, &executor)
                .expect("checkpoint run");
            let ckpt_total = start.elapsed();
            assert_eq!(
                ckpt.report.cpi().mean().to_bits(),
                seq_replay.cpi().mean().to_bits(),
                "checkpoint merge must be bit-identical to sequential replay"
            );
            let replay = ckpt.parallel_wall;
            let base = *replay_base.get_or_insert(replay);
            let replay_x = base.as_secs_f64() / replay.as_secs_f64().max(1e-9);

            let sharded_exec = Executor::new(jobs)
                .expect("executor")
                .with_mode(ParallelMode::Sharded)
                .with_shard_warmup(200_000);
            let start = Instant::now();
            let sharded = sim
                .sample_parallel(bench, &params, &sharded_exec)
                .expect("sharded run");
            let shard_total = start.elapsed();
            let shard_x = seq_wall.as_secs_f64() / shard_total.as_secs_f64().max(1e-9);
            let bias = residual_bias(&sharded.report, &sequential);

            println!(
                "{:>5} {:>12} {:>12} {:>12} {:>9.2}x {:>12} {:>11.2}x {:>10} {:>10}",
                jobs,
                fmt(ckpt_total),
                fmt(ckpt.build_wall),
                fmt(replay),
                replay_x,
                fmt(shard_total),
                shard_x,
                pct(bias.cpi_bias),
                pct(bias.max_unit_cpi_error),
            );
        }
        println!();
    }
    println!("(checkpoint replay is bit-identical to sequential at every worker count;");
    println!(" sharded trades the sequential build pass for the residual bias shown.)");
}

//! Worker-count scaling of the parallel execution subsystem.
//!
//! For 1, 2, 4, and `nproc` workers this reports, per mode:
//!
//! * **checkpoint** — wall-clock split into the sequential library-build
//!   pass and the parallel replay phase, with the replay-phase speedup
//!   over one worker (the build pass is the Amdahl term; replay itself
//!   is embarrassingly parallel and bit-identical to sequential).
//! * **sharded** — end-to-end wall-clock against the sequential driver
//!   (no sequential pass at all) plus the residual cold-start bias of
//!   the merged estimate, which checkpoint mode avoids by construction.
//! * **pipeline** — streamed checkpoints: the warming producer overlaps
//!   the replay consumers, so there is no sequential build pass and at
//!   most `depth + jobs + 1` checkpoints are ever resident, versus the
//!   whole library in checkpoint mode. Also bit-identical.
//!
//! Results (wall-clock splits plus the residency figures) are written to
//! `results/bench_scaling.json`.

use smarts_bench::{banner, pct, HarnessArgs};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{residual_bias, Executor, ParallelDriver, ParallelMode};
use smarts_uarch::MachineConfig;
use std::io::Write as _;
use std::time::{Duration, Instant};

fn fmt(d: Duration) -> String {
    format!("{:.2?}", d)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

struct JobsRow {
    jobs: usize,
    ckpt_total: Duration,
    build: Duration,
    replay: Duration,
    shard_total: Duration,
    pipe_total: Duration,
    pipe_producer: Duration,
    pipe_peak_checkpoints: usize,
    pipe_peak_bytes: u64,
}

struct BenchResult {
    name: String,
    sample_size: u64,
    seq_wall: Duration,
    library_bytes: u64,
    rows: Vec<JobsRow>,
}

fn main() {
    let args = HarnessArgs::parse();
    banner(
        "Scaling",
        "parallel sampling wall-clock vs worker count (8-way machine)",
    );
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let nproc = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut job_counts = vec![1usize, 2, 4];
    if !job_counts.contains(&nproc) {
        job_counts.push(nproc);
    }

    let benches = if args.bench.is_some() {
        args.suite()
    } else {
        let scale = if args.quick {
            args.scale.min(0.1)
        } else {
            args.scale
        };
        ["hashp-2", "branchy-1"]
            .iter()
            .map(|n| {
                smarts_workloads::find(n)
                    .expect("suite benchmark")
                    .scaled(scale)
            })
            .collect()
    };

    let mut bench_results = Vec::new();
    for bench in &benches {
        // Enough detailed work (n·(W+U)) that replay, not the build pass,
        // carries the run; the same design is used at every worker count.
        let n = if args.quick { 20 } else { 60 };
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            n,
            0,
        )
        .expect("valid sampling parameters");

        let seq_start = Instant::now();
        let sequential = sim.sample(bench, &params).expect("sequential run");
        let seq_wall = seq_start.elapsed();
        // The bit-identity baseline: a sequential replay of the same
        // library (a direct run's warm state differs per the checkpoint
        // module docs, so it is compared only for sharded-mode bias).
        let library = sim.build_library(bench, &params).expect("library");
        let library_bytes = library.approx_resident_bytes();
        let replay_start = Instant::now();
        let seq_replay = sim.sample_library(&library).expect("sequential replay");
        let seq_replay_wall = replay_start.elapsed();
        println!(
            "--- {} (n = {}, sequential driver: {}, sequential replay: {}) ---",
            bench.name(),
            sequential.sample_size(),
            fmt(seq_wall),
            fmt(seq_replay_wall)
        );
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10} {:>10}",
            "jobs",
            "ckpt-total",
            "build",
            "replay",
            "replay-x",
            "shard-total",
            "shard-x",
            "cpi-bias",
            "max-unit"
        );

        let mut rows: Vec<JobsRow> = Vec::new();
        let mut replay_base: Option<Duration> = None;
        for &jobs in &job_counts {
            let executor = Executor::new(jobs).expect("executor");
            let start = Instant::now();
            let ckpt = sim
                .sample_parallel(bench, &params, &executor)
                .expect("checkpoint run");
            let ckpt_total = start.elapsed();
            assert_eq!(
                ckpt.report.cpi().mean().to_bits(),
                seq_replay.cpi().mean().to_bits(),
                "checkpoint merge must be bit-identical to sequential replay"
            );
            let replay = ckpt.parallel_wall;
            let base = *replay_base.get_or_insert(replay);
            let replay_x = base.as_secs_f64() / replay.as_secs_f64().max(1e-9);

            let sharded_exec = Executor::new(jobs)
                .expect("executor")
                .with_mode(ParallelMode::Sharded)
                .with_shard_warmup(200_000);
            let start = Instant::now();
            let sharded = sim
                .sample_parallel(bench, &params, &sharded_exec)
                .expect("sharded run");
            let shard_total = start.elapsed();
            let shard_x = seq_wall.as_secs_f64() / shard_total.as_secs_f64().max(1e-9);
            let bias = residual_bias(&sharded.report, &sequential);

            let pipeline_exec = Executor::new(jobs)
                .expect("executor")
                .with_mode(ParallelMode::Pipeline);
            let start = Instant::now();
            let pipe = sim
                .sample_parallel(bench, &params, &pipeline_exec)
                .expect("pipeline run");
            let pipe_total = start.elapsed();
            assert_eq!(
                pipe.report.cpi().mean().to_bits(),
                seq_replay.cpi().mean().to_bits(),
                "pipeline merge must be bit-identical to sequential replay"
            );
            let stats = pipe.pipeline.expect("pipeline stats");

            println!(
                "{:>5} {:>12} {:>12} {:>12} {:>9.2}x {:>12} {:>11.2}x {:>10} {:>10}",
                jobs,
                fmt(ckpt_total),
                fmt(ckpt.build_wall),
                fmt(replay),
                replay_x,
                fmt(shard_total),
                shard_x,
                pct(bias.cpi_bias),
                pct(bias.max_unit_cpi_error),
            );
            rows.push(JobsRow {
                jobs,
                ckpt_total,
                build: ckpt.build_wall,
                replay,
                shard_total,
                pipe_total,
                pipe_producer: stats.producer_wall,
                pipe_peak_checkpoints: stats.peak_resident_checkpoints,
                pipe_peak_bytes: stats.peak_resident_bytes,
            });
        }

        println!(
            "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10}   (pipeline, depth {}; library {:.1} MiB)",
            "jobs",
            "pipe-total",
            "producer",
            "vs-ckpt",
            "peak-ckpt",
            "peak-MiB",
            smarts_exec::DEFAULT_PIPELINE_DEPTH,
            mib(library_bytes),
        );
        for row in &rows {
            println!(
                "{:>5} {:>12} {:>12} {:>9.2}x {:>10} {:>10.1}",
                row.jobs,
                fmt(row.pipe_total),
                fmt(row.pipe_producer),
                row.ckpt_total.as_secs_f64() / row.pipe_total.as_secs_f64().max(1e-9),
                row.pipe_peak_checkpoints,
                mib(row.pipe_peak_bytes),
            );
        }
        println!();
        bench_results.push(BenchResult {
            name: bench.name().to_string(),
            sample_size: sequential.sample_size(),
            seq_wall,
            library_bytes,
            rows,
        });
    }
    println!("(checkpoint and pipeline modes are bit-identical to sequential at every");
    println!(" worker count; sharded trades the sequential build pass for the residual");
    println!(" bias shown; pipeline keeps at most depth + jobs + 1 checkpoints resident.)");

    write_json(&bench_results).expect("write results/bench_scaling.json");
    println!("\nwrote results/bench_scaling.json");
}

/// Emits the machine-readable scaling results (hand-rolled JSON: the
/// workspace builds offline, with no serde).
fn write_json(benches: &[BenchResult]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let mut f = std::fs::File::create("results/bench_scaling.json")?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"scaling\",")?;
    writeln!(f, "  \"samples_per_case\": 1,")?;
    writeln!(f, "  \"machine\": \"8-way\",")?;
    writeln!(
        f,
        "  \"pipeline_depth\": {},",
        smarts_exec::DEFAULT_PIPELINE_DEPTH
    )?;
    writeln!(f, "  \"results\": [")?;
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"benchmark\": \"{}\",", b.name)?;
        writeln!(f, "      \"sample_size\": {},", b.sample_size)?;
        writeln!(
            f,
            "      \"sequential_wall_s\": {:.4},",
            b.seq_wall.as_secs_f64()
        )?;
        writeln!(f, "      \"library_resident_bytes\": {},", b.library_bytes)?;
        writeln!(f, "      \"jobs\": [")?;
        for (j, row) in b.rows.iter().enumerate() {
            let comma = if j + 1 < b.rows.len() { "," } else { "" };
            writeln!(f, "        {{")?;
            writeln!(f, "          \"jobs\": {},", row.jobs)?;
            writeln!(
                f,
                "          \"checkpoint_total_s\": {:.4},",
                row.ckpt_total.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"checkpoint_build_s\": {:.4},",
                row.build.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"checkpoint_replay_s\": {:.4},",
                row.replay.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"sharded_total_s\": {:.4},",
                row.shard_total.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"pipeline_total_s\": {:.4},",
                row.pipe_total.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"pipeline_producer_s\": {:.4},",
                row.pipe_producer.as_secs_f64()
            )?;
            writeln!(
                f,
                "          \"pipeline_peak_resident_checkpoints\": {},",
                row.pipe_peak_checkpoints
            )?;
            writeln!(
                f,
                "          \"pipeline_peak_resident_bytes\": {}",
                row.pipe_peak_bytes
            )?;
            writeln!(f, "        }}{comma}")?;
        }
        writeln!(f, "      ]")?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

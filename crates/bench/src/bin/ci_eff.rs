//! CI-efficiency comparison of the unit-selection strategies
//! (the Fig. 5/6 methodology applied to sampler design): detailed
//! instructions needed to reach the paper's ±3% @ 99.7% CPI target
//! under systematic, two-phase stratified, and online adaptive unit
//! selection.
//!
//! The measurement procedure lives in [`smarts_bench::ci_eff`] (shared
//! with the `ci_eff_guard` regression gate). Everything is seeded and
//! simulator-deterministic, so `results/bench_ci_eff.json` is
//! reproducible bit-for-bit and the guard can gate regressions tightly.
//!
//! The emitted JSON feeds EXPERIMENTS.md's CI-efficiency table.

use smarts_bench::ci_eff::{measure, render_json, Row, EPSILON, SAVINGS_BAR};
use smarts_bench::upct;
use smarts_core::SmartsSim;
use smarts_stats::Confidence;
use smarts_uarch::MachineConfig;

fn main() {
    let mut args = smarts_bench::HarnessArgs::parse();
    // The full-grid ground truth is the expensive part; half scale keeps
    // pools in the 600–2200 unit range the samplers were designed for.
    if args.scale == 1.0 {
        args.scale = 0.5;
    }
    if args.quick {
        args.scale = 0.1;
    }
    let conf = Confidence::THREE_SIGMA;
    smarts_bench::banner(
        "CI efficiency: systematic vs stratified vs adaptive unit selection",
        &format!(
            "target ±{}% @ {} CPI; matched systematic = the paper's two-step \
             procedure (30-unit pilot + n(V̂) tuned rerun), capped at the pool",
            EPSILON * 100.0,
            conf
        ),
    );

    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}  best",
        "benchmark", "pool", "V(U)", "n sys", "n strat", "err", "n adapt", "err"
    );
    for bench in args.suite() {
        let row = measure(&sim, &cfg, &bench, conf);
        println!(
            "{:<12} {:>6} {:>6.3} {:>7} {:>7}{} {:>9} {:>7}{} {:>9}  {}",
            row.benchmark,
            row.pool,
            row.cv,
            row.n_systematic,
            row.stratified.n,
            if row.stratified.target_met { " " } else { "!" },
            upct(row.stratified.error),
            row.adaptive.n,
            if row.adaptive.target_met { " " } else { "!" },
            upct(row.adaptive.error),
            upct(row.best_savings()),
        );
        rows.push(row);
    }

    let total = rows.len();
    let qualifying = rows.iter().filter(|r| r.qualifies()).count();
    let mean_best = if rows.is_empty() {
        0.0
    } else {
        rows.iter().map(Row::best_savings).sum::<f64>() / total as f64
    };
    println!(
        "\n{qualifying}/{total} workloads reach the ±3% target with ≥{}% fewer detailed \
         instructions than matched systematic (mean best saving {})",
        SAVINGS_BAR * 100.0,
        upct(mean_best)
    );

    let json = render_json(&rows, args.scale, qualifying, mean_best);
    let path = "results/bench_ci_eff.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

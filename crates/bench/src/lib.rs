//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! SMARTS paper (see DESIGN.md §4 for the full index). They share a tiny
//! command-line convention:
//!
//! * `--scale <f>` — multiply every benchmark's dynamic length
//!   (default 1.0; figures in EXPERIMENTS.md were produced at the
//!   default).
//! * `--config <8|16|both>` — which Table 3 machine(s) to run.
//! * `--bench <name>` — restrict to one benchmark.
//! * `--quick` — a fast smoke-test preset (small scale, fewer units).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci_eff;

use smarts_core::{ReferenceRun, SmartsSim};
use smarts_uarch::MachineConfig;
use smarts_workloads::Benchmark;
use std::collections::HashMap;
use std::sync::Mutex;

/// Which machine configuration(s) a binary should evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigChoice {
    /// The 8-way baseline only.
    Eight,
    /// The 16-way aggressive machine only.
    Sixteen,
    /// Both Table 3 machines.
    Both,
}

impl ConfigChoice {
    /// The machine configurations selected.
    pub fn configs(&self) -> Vec<MachineConfig> {
        match self {
            ConfigChoice::Eight => vec![MachineConfig::eight_way()],
            ConfigChoice::Sixteen => vec![MachineConfig::sixteen_way()],
            ConfigChoice::Both => {
                vec![MachineConfig::eight_way(), MachineConfig::sixteen_way()]
            }
        }
    }
}

/// Parsed harness arguments (see the crate docs for the flags).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Benchmark length multiplier.
    pub scale: f64,
    /// Machine selection.
    pub config: ConfigChoice,
    /// Restrict to one benchmark by name.
    pub bench: Option<String>,
    /// Fast smoke-test preset.
    pub quick: bool,
    /// Extra flag used by `fig2 --icc`.
    pub icc: bool,
    /// Use the extended (28-combination) suite instead of the default 18.
    pub extended: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1.0,
            config: ConfigChoice::Eight,
            bench: None,
            quick: false,
            icc: false,
            extended: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    args.scale = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a positive number"));
                }
                "--config" => match iter.next().as_deref() {
                    Some("8") => args.config = ConfigChoice::Eight,
                    Some("16") => args.config = ConfigChoice::Sixteen,
                    Some("both") => args.config = ConfigChoice::Both,
                    _ => usage("--config takes 8, 16, or both"),
                },
                "--bench" => {
                    args.bench = Some(iter.next().unwrap_or_else(|| usage("--bench needs a name")));
                }
                "--quick" => {
                    args.quick = true;
                    args.scale = args.scale.min(0.1);
                }
                "--icc" => args.icc = true,
                "--extended" => args.extended = true,
                "--help" | "-h" => usage("usage"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if args.scale <= 0.0 {
            usage("--scale must be positive");
        }
        args
    }

    /// The benchmark suite at the requested scale and filter.
    pub fn suite(&self) -> Vec<Benchmark> {
        let base = if self.extended {
            smarts_workloads::extended_suite()
        } else {
            smarts_workloads::suite()
        };
        base.into_iter()
            .map(|b| b.scaled(self.scale))
            .filter(|b| self.bench.as_deref().is_none_or(|name| b.name() == name))
            .collect()
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\n\nflags: [--scale <f>] [--config 8|16|both] [--bench <name>] [--quick] [--icc] [--extended]"
    );
    std::process::exit(2)
}

/// A process-local cache of full-detail reference runs, so binaries that
/// need the same ground truth for several analyses pay for it once.
#[derive(Debug, Default)]
pub struct RefCache {
    runs: Mutex<HashMap<(String, &'static str, u64), ReferenceRun>>,
}

impl RefCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RefCache::default()
    }

    /// The reference run for (benchmark, machine, unit size), computed on
    /// first use.
    pub fn get(&self, sim: &SmartsSim, bench: &Benchmark, unit_size: u64) -> ReferenceRun {
        let key = (bench.name().to_string(), sim.config().name, unit_size);
        if let Some(hit) = self.runs.lock().expect("cache lock").get(&key) {
            return hit.clone();
        }
        let run = sim.reference(bench, unit_size);
        self.runs
            .lock()
            .expect("cache lock")
            .insert(key, run.clone());
        run
    }
}

/// A minimal timing harness for the `harness = false` bench targets.
///
/// The workspace builds offline, so the bench targets cannot pull in
/// criterion; this module covers what they actually need — warmup, a few
/// timed samples, median selection, and optional throughput — with
/// `std::time::Instant`.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Number of timed samples per case (after one warmup run).
    pub const SAMPLES: usize = 7;

    /// Times `f` (one warmup + [`SAMPLES`] timed runs) and returns the
    /// median duration of a single run.
    pub fn time<R>(mut f: impl FnMut() -> R) -> Duration {
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        samples[SAMPLES / 2]
    }

    /// Times `f` and prints `group/name: <median>` with throughput in
    /// Melem/s when `elements > 0` (an element is typically one simulated
    /// instruction, making the figure MIPS).
    pub fn bench<R>(group: &str, name: &str, elements: u64, f: impl FnMut() -> R) -> Duration {
        let median = time(f);
        let label = format!("{group}/{name}");
        if elements > 0 {
            let rate = elements as f64 / median.as_secs_f64() / 1e6;
            println!("{label:<44} {:>12} {rate:>10.2} Melem/s", pretty(median));
        } else {
            println!("{label:<44} {:>12}", pretty(median));
        }
        median
    }

    /// Formats a duration at a human scale (`1.23 ms`, `45.6 µs`).
    pub fn pretty(d: Duration) -> String {
        let ns = d.as_nanos() as f64;
        if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
}

/// Formats a signed percentage with the paper's style (`-1.6%`).
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Formats an unsigned percentage.
pub fn upct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Prints a figure/table banner.
pub fn banner(title: &str, detail: &str) {
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_choice_expands() {
        assert_eq!(ConfigChoice::Eight.configs().len(), 1);
        assert_eq!(ConfigChoice::Both.configs().len(), 2);
        assert_eq!(ConfigChoice::Both.configs()[1].name, "16-way");
    }

    #[test]
    fn suite_filter_applies() {
        let args = HarnessArgs {
            bench: Some("loopy-1".to_string()),
            scale: 0.5,
            ..HarnessArgs::default()
        };
        let suite = args.suite();
        assert_eq!(suite.len(), 1);
        assert_eq!(suite[0].name(), "loopy-1");
    }

    #[test]
    fn ref_cache_returns_identical_runs() {
        let cache = RefCache::new();
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = smarts_workloads::find("loopy-1").unwrap().scaled(0.01);
        let a = cache.get(&sim, &bench, 1000);
        let b = cache.get(&sim, &bench, 1000);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(-0.016), "-1.60%");
        assert_eq!(upct(0.5), "50.00%");
    }
}

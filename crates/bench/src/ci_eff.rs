//! Shared measurement core for the `ci_eff` benchmark and its CI guard.
//!
//! Both binaries need the same deterministic procedure — full-grid
//! ground truth, the paper's two-step matched-systematic baseline, and
//! offline drives of the stratified and adaptive samplers — so it lives
//! here and the binaries stay thin. Everything is seeded and
//! simulator-deterministic: re-running [`measure`] on the same workload
//! at the same scale reproduces the checked-in
//! `results/bench_ci_eff.json` numbers bit-for-bit.

use smarts_core::{SamplingParams, SmartsSim, UnitReplay, Warming};
use smarts_stats::{
    drive_sampler, required_sample_size, AdaptiveSampler, Confidence, RunningStats,
    StratifiedConfig, StratifiedSampler,
};
use smarts_uarch::MachineConfig;

/// Sampling-unit size (instructions), the paper's U = 1000.
pub const UNIT_SIZE: u64 = 1000;

/// Relative CPI error target (±3%).
pub const EPSILON: f64 = 0.03;

/// Seed for every sampler drive; fixed so the JSON is reproducible.
pub const SEED: u64 = 12;

/// Minimum relative saving in detailed instructions (vs the matched
/// systematic baseline) for a workload to count toward the headline
/// criterion.
pub const SAVINGS_BAR: f64 = 0.30;

/// One workload's measurement: ground truth, baselines, and the two
/// sampled-strategy outcomes.
pub struct Row {
    /// Workload name.
    pub benchmark: String,
    /// Number of complete sampling units in the full grid.
    pub pool: u64,
    /// True coefficient of variation of per-unit CPI.
    pub cv: f64,
    /// Full-grid (census) mean CPI — the ground truth.
    pub truth: f64,
    /// Detailed instructions per measured unit (`W + U`).
    pub per_unit: u64,
    /// Oracle-tuned systematic `n` (sized from the true variation).
    pub n_oracle: u64,
    /// Matched systematic cost: the paper's two-step procedure
    /// (30-unit pilot + tuned rerun), in units.
    pub n_systematic: u64,
    /// Two-phase stratified sampler outcome.
    pub stratified: Outcome,
    /// Online adaptive sampler outcome.
    pub adaptive: Outcome,
}

/// What one sampler strategy achieved on one workload.
pub struct Outcome {
    /// Detailed units the strategy measured.
    pub n: u64,
    /// Whether the strategy's own interval claims the target was met.
    pub target_met: bool,
    /// True relative error of its estimate vs the full-grid truth.
    pub error: f64,
    /// Relative saving in detailed units vs the matched systematic
    /// baseline (negative when the strategy cost more).
    pub savings: f64,
}

impl Outcome {
    /// An honest win both claims the target *and* lands within ±ε of
    /// the ground truth. A confident interval around a wrong answer
    /// counts for nothing.
    pub fn honest(&self) -> bool {
        self.target_met && self.error <= EPSILON
    }
}

impl Row {
    /// Best saving over the strategies that honestly reached the
    /// target (see [`Outcome::honest`]); 0 when neither did.
    pub fn best_savings(&self) -> f64 {
        [&self.stratified, &self.adaptive]
            .into_iter()
            .filter(|o| o.honest())
            .map(|o| o.savings)
            .fold(0.0, f64::max)
    }

    /// Whether this workload counts toward the headline criterion.
    pub fn qualifies(&self) -> bool {
        self.best_savings() >= SAVINGS_BAR
    }

    /// Cheapest honest detailed-instruction cost across the sampled
    /// strategies, or `None` when neither honestly met the target.
    pub fn honest_cost(&self) -> Option<u64> {
        [&self.stratified, &self.adaptive]
            .into_iter()
            .filter(|o| o.honest())
            .map(|o| o.n * self.per_unit)
            .min()
    }
}

/// Full-grid measurement and offline sampler drive for one workload.
///
/// The full unit grid is measured once (interval 1 — every unit gets a
/// detailed `W + U` episode), yielding both the ground-truth CPI and
/// the per-unit values the samplers are then driven against offline via
/// [`drive_sampler`]. The matched systematic cost is the paper's own
/// two-step procedure — a 30-unit systematic pilot estimates `V̂`, then
/// a tuned rerun measures `n = (z·V̂/ε)²` fresh units — with each `n`
/// capped at the pool (a census is exact under the finite-population
/// correction). The oracle-tuned single-run `n` (sized from the *true*
/// variation, which no real procedure knows) is recorded alongside.
pub fn measure(
    sim: &SmartsSim,
    cfg: &MachineConfig,
    bench: &smarts_workloads::Benchmark,
    conf: Confidence,
) -> Row {
    let w = cfg.recommended_detailed_warming();
    let total_units = (bench.approx_len() / UNIT_SIZE).max(1);
    let params = SamplingParams::for_sample_size(
        bench.approx_len(),
        UNIT_SIZE,
        w,
        Warming::Functional,
        total_units,
        0,
    )
    .expect("full-grid parameters");
    let library = sim.build_library(bench, &params).expect("library build");
    let mut cpis = Vec::with_capacity(library.len());
    for index in 0..library.len() {
        match sim.replay_unit(&library, index).expect("unit replay") {
            UnitReplay::Complete { sample, .. } => cpis.push(sample.cpi),
            UnitReplay::Partial { .. } => break, // tail unit only
        }
    }
    let pool = cpis.len() as u64;
    let mut all = RunningStats::new();
    for &v in &cpis {
        all.push(v);
    }
    let truth = all.mean();
    let cv = all.coefficient_of_variation();
    // Oracle-tuned systematic: n sized from the *true* population
    // variation — a bound no real run can reach (kept for reference).
    let n_oracle = required_sample_size(cv, EPSILON, conf)
        .expect("sample size")
        .min(pool);
    // Matched systematic: the paper's two-step procedure. A 30-unit
    // systematic pilot estimates V̂, then the tuned rerun measures
    // n(V̂) fresh units; the procedure's detailed cost is the sum.
    let n_systematic = {
        let pilot_interval = (pool / 30).max(1);
        let mut pilot = RunningStats::new();
        let mut at = 0;
        while at < pool && pilot.count() < 30 {
            pilot.push(cpis[at as usize]);
            at += pilot_interval;
        }
        let tuned = required_sample_size(pilot.coefficient_of_variation(), EPSILON, conf)
            .expect("tuned size")
            .min(pool);
        (pilot.count() + tuned).min(pool + pilot.count())
    };

    let scfg = StratifiedConfig::for_pool(pool, EPSILON, conf, SEED);
    let stratified = {
        let mut s = StratifiedSampler::new(scfg).expect("stratified sampler");
        let est = drive_sampler(&mut s, |u| cpis[u as usize]).expect("stratified drive");
        outcome(&est, truth, n_systematic)
    };
    let adaptive = {
        let mut s = AdaptiveSampler::new(scfg, 0).expect("adaptive sampler");
        let est = drive_sampler(&mut s, |u| cpis[u as usize]).expect("adaptive drive");
        outcome(&est, truth, n_systematic)
    };

    Row {
        benchmark: bench.name().to_string(),
        pool,
        cv,
        truth,
        per_unit: params.detailed_per_unit(),
        n_oracle,
        n_systematic,
        stratified,
        adaptive,
    }
}

fn outcome(est: &smarts_stats::SamplerEstimate, truth: f64, n_systematic: u64) -> Outcome {
    Outcome {
        n: est.n,
        target_met: est.target_met,
        error: if truth.abs() > f64::EPSILON {
            (est.mean - truth).abs() / truth.abs()
        } else {
            0.0
        },
        savings: 1.0 - est.n as f64 / n_systematic.max(1) as f64,
    }
}

/// Renders the results file, one key per line so the guard's line
/// scanner can re-read it without a JSON parser.
pub fn render_json(rows: &[Row], scale: f64, qualifying: usize, mean_best: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("\"bench\": \"ci_eff\",\n");
    out.push_str(&format!("\"scale\": {scale},\n"));
    out.push_str(&format!("\"unit_size\": {UNIT_SIZE},\n"));
    out.push_str(&format!("\"epsilon\": {EPSILON},\n"));
    out.push_str("\"confidence\": 0.9973,\n");
    out.push_str(&format!("\"seed\": {SEED},\n"));
    out.push_str("\"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("{\n");
        out.push_str(&format!("\"benchmark\": \"{}\",\n", r.benchmark));
        out.push_str(&format!("\"pool\": {},\n", r.pool));
        out.push_str(&format!("\"cv\": {:.6},\n", r.cv));
        out.push_str(&format!("\"cpi_truth\": {:.6},\n", r.truth));
        out.push_str(&format!("\"detailed_per_unit\": {},\n", r.per_unit));
        out.push_str(&format!("\"n_oracle\": {},\n", r.n_oracle));
        out.push_str(&format!("\"n_systematic\": {},\n", r.n_systematic));
        out.push_str(&format!(
            "\"systematic_detailed_instructions\": {},\n",
            r.n_systematic * r.per_unit
        ));
        for (tag, o) in [("stratified", &r.stratified), ("adaptive", &r.adaptive)] {
            out.push_str(&format!("\"{tag}_n\": {},\n", o.n));
            out.push_str(&format!("\"{tag}_target_met\": {},\n", o.target_met));
            out.push_str(&format!("\"{tag}_error\": {:.6},\n", o.error));
            out.push_str(&format!("\"{tag}_savings\": {:.6},\n", o.savings));
        }
        out.push_str(&format!("\"best_savings\": {:.6}\n", r.best_savings()));
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("],\n");
    out.push_str(&format!("\"workloads_total\": {},\n", rows.len()));
    out.push_str(&format!("\"workloads_saving30\": {qualifying},\n"));
    out.push_str(&format!("\"best_savings_mean\": {mean_best:.6}\n"));
    out.push_str("}\n");
    out
}

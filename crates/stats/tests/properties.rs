//! Property-based tests of the statistical core.

use proptest::prelude::*;
use smarts_stats::{
    bias, confidence_interval, intraclass_correlation, relative_half_width,
    required_sample_size, systematic_sample_means, variation_curve, Confidence, RandomDesign,
    RunningStats, SampleEstimate, SystematicDesign,
};

fn observations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 2..200)
}

proptest! {
    #[test]
    fn running_stats_match_two_pass_reference(xs in observations()) {
        let stats: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((stats.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert!(stats.min() <= stats.mean() + 1e-9);
        prop_assert!(stats.max() >= stats.mean() - 1e-9);
    }

    #[test]
    fn merge_is_equivalent_to_concatenation(
        a in observations(),
        b in observations(),
    ) {
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let both: RunningStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(left.count(), both.count());
        prop_assert!((left.mean() - both.mean()).abs() <= 1e-6 * (1.0 + both.mean().abs()));
        prop_assert!(
            (left.variance() - both.variance()).abs()
                <= 1e-5 * (1.0 + both.variance().abs())
        );
    }

    #[test]
    fn required_n_achieves_the_target(
        cv in 0.0f64..10.0,
        eps in 0.001f64..0.5,
        level in 0.5f64..0.999,
    ) {
        let conf = Confidence::new(level).unwrap();
        let n = required_sample_size(cv, eps, conf).unwrap();
        // The achieved half-width at the required n meets the target.
        let achieved = relative_half_width(cv, n, conf).unwrap();
        prop_assert!(achieved <= eps * (1.0 + 1e-9),
            "achieved {achieved} at n={n} for target {eps}");
        // And n-1 (below the floor of 30 excepted) would not suffice.
        if n > 30 {
            let under = relative_half_width(cv, n - 1, conf).unwrap();
            prop_assert!(under > eps);
        }
    }

    #[test]
    fn half_width_monotonic_in_n_and_cv(
        cv in 0.01f64..5.0,
        n in 1u64..100_000,
    ) {
        let conf = Confidence::NINETY_FIVE;
        let base = relative_half_width(cv, n, conf).unwrap();
        prop_assert!(relative_half_width(cv, n + 1, conf).unwrap() <= base);
        prop_assert!(relative_half_width(cv * 1.1, n, conf).unwrap() >= base);
    }

    #[test]
    fn interval_is_symmetric_and_contains_mean(
        mean in -1e3f64..1e3,
        cv in 0.0f64..5.0,
        n in 1u64..10_000,
    ) {
        let est = SampleEstimate::new(mean, cv, n);
        let (lo, hi) = est.interval(Confidence::NINETY_FIVE).unwrap();
        prop_assert!(lo <= mean && mean <= hi);
        prop_assert!((hi - mean) - (mean - lo) <= 1e-9 * (1.0 + mean.abs()));
        let half = confidence_interval(mean, cv, n, Confidence::NINETY_FIVE).unwrap();
        prop_assert!((hi - mean - half).abs() <= 1e-9 * (1.0 + half));
    }

    #[test]
    fn systematic_design_unit_count_is_consistent(
        unit in 1u64..10_000,
        population in 1u64..100_000,
        interval in 1u64..1000,
    ) {
        let offset = interval - 1;
        let design = SystematicDesign::new(unit, population, interval, offset).unwrap();
        let count = design.unit_indices().count() as u64;
        prop_assert_eq!(count, design.sample_size());
        prop_assert_eq!(design.measured_instructions(), count * unit);
        // Every index is in range and congruent to the offset.
        for idx in design.unit_indices() {
            prop_assert!(idx < population);
            prop_assert_eq!(idx % interval, offset);
        }
    }

    #[test]
    fn systematic_phases_partition_the_population(
        population in 1u64..2000,
        interval in 1u64..50,
    ) {
        let design = SystematicDesign::new(1, population, interval, 0).unwrap();
        let mut seen = vec![false; population as usize];
        for j in 0..interval.min(population) {
            for idx in design.with_offset(j).unwrap().unit_indices() {
                prop_assert!(!seen[idx as usize], "unit {idx} selected twice");
                seen[idx as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "phases must cover the population");
    }

    #[test]
    fn random_design_is_sorted_distinct_in_range(
        population in 1u64..10_000,
        seed in 0u64..1000,
    ) {
        let n = (population / 2).max(1);
        let design = RandomDesign::draw(1, population, n, seed).unwrap();
        let idx: Vec<u64> = design.unit_indices().collect();
        prop_assert_eq!(idx.len() as u64, n);
        for pair in idx.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        prop_assert!(idx.iter().all(|&i| i < population));
    }

    #[test]
    fn variation_curve_grand_mean_invariant(xs in proptest::collection::vec(0.1f64..10.0, 16..128)) {
        // Aggregation preserves the grand mean (whole groups only).
        let curve = variation_curve(&xs, 1, &[2]);
        if let Some(point) = curve.first() {
            let whole = (xs.len() / 2) * 2;
            let grand = xs[..whole].iter().sum::<f64>() / whole as f64;
            let aggregated: Vec<f64> = xs[..whole]
                .chunks(2)
                .map(|c| (c[0] + c[1]) / 2.0)
                .collect();
            let agg_mean = aggregated.iter().sum::<f64>() / aggregated.len() as f64;
            prop_assert!((grand - agg_mean).abs() < 1e-9);
            prop_assert!(point.coefficient_of_variation >= 0.0);
        }
    }

    #[test]
    fn aggregation_never_increases_variation(xs in proptest::collection::vec(0.1f64..10.0, 64..256)) {
        // Pooling adjacent units smooths: V(2U) ≤ V(U) holds in expectation
        // for weakly-correlated data; we assert the weaker sanity bound
        // that both are finite and non-negative, and that V at the
        // full-population aggregate is 0.
        let curve = variation_curve(&xs, 1, &[1, xs.len() / 2]);
        for point in &curve {
            prop_assert!(point.coefficient_of_variation.is_finite());
            prop_assert!(point.coefficient_of_variation >= 0.0);
        }
    }

    #[test]
    fn systematic_means_average_to_population_mean(
        xs in proptest::collection::vec(0.1f64..10.0, 10..200),
        interval in 1usize..10,
    ) {
        // When the interval divides the population size exactly, the
        // phase means weighted equally recover the grand mean.
        let whole = (xs.len() / interval) * interval;
        if whole >= interval {
            let xs = &xs[..whole];
            let means = systematic_sample_means(xs, interval);
            let recovered = means.iter().sum::<f64>() / means.len() as f64;
            let grand = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((recovered - grand).abs() < 1e-9);
        }
    }

    #[test]
    fn icc_bounded_below_by_minus_one_over_n_minus_1(
        xs in proptest::collection::vec(0.0f64..10.0, 20..200),
    ) {
        let delta = intraclass_correlation(&xs, 5);
        let n = xs.len() / 5;
        if n >= 2 {
            prop_assert!(delta >= -1.0 / (n as f64 - 1.0) - 1e-6, "delta = {delta}");
            prop_assert!(delta <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn bias_of_exact_estimates_is_zero(truth in -100.0f64..100.0) {
        prop_assert!(bias(&[truth, truth, truth], truth).abs() < 1e-12);
    }
}

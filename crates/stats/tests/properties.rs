//! Randomized property tests of the statistical core, driven by a
//! deterministic splitmix64 generator so the suite needs no external
//! crates and every failure is reproducible from the fixed seeds.

use smarts_stats::{
    bias, confidence_interval, intraclass_correlation, relative_half_width, required_sample_size,
    systematic_sample_means, variation_curve, Confidence, RandomDesign, RunningStats,
    SampleEstimate, SystematicDesign,
};

/// Splitmix64, duplicated locally: `smarts-stats` sits below the crate
/// that owns the shared generator in the dependency DAG.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in [lo, hi).
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn observations(&mut self, len_range: std::ops::Range<u64>, lo: f64, hi: f64) -> Vec<f64> {
        let len = len_range.start + self.below(len_range.end - len_range.start);
        (0..len).map(|_| self.uniform(lo, hi)).collect()
    }
}

const CASES: u64 = 64;

#[test]
fn running_stats_match_two_pass_reference() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let xs = rng.observations(2..200, -1e6, 1e6);
        let stats: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!((stats.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((stats.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        assert!(stats.min() <= stats.mean() + 1e-9);
        assert!(stats.max() >= stats.mean() - 1e-9);
    }
}

#[test]
fn merge_is_equivalent_to_concatenation() {
    let mut rng = Rng(22);
    for _ in 0..CASES {
        let a = rng.observations(2..200, -1e6, 1e6);
        let b = rng.observations(2..200, -1e6, 1e6);
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let both: RunningStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(left.count(), both.count());
        assert!((left.mean() - both.mean()).abs() <= 1e-6 * (1.0 + both.mean().abs()));
        assert!((left.variance() - both.variance()).abs() <= 1e-5 * (1.0 + both.variance().abs()));
        assert_eq!(left.min(), both.min());
        assert_eq!(left.max(), both.max());
    }
}

#[test]
fn merge_is_associative_across_many_chunks() {
    // Splitting one stream at arbitrary points and folding the chunk
    // accumulators left-to-right agrees with one-pass accumulation —
    // the property the parallel merge layer rests on.
    let mut rng = Rng(33);
    for _ in 0..CASES {
        let xs = rng.observations(8..300, 0.1, 100.0);
        let chunks = 1 + rng.below(7) as usize;
        let mut folded = RunningStats::new();
        for chunk in xs.chunks(xs.len().div_ceil(chunks)) {
            let partial: RunningStats = chunk.iter().copied().collect();
            folded.merge(&partial);
        }
        let whole: RunningStats = xs.iter().copied().collect();
        assert_eq!(folded.count(), whole.count());
        assert!((folded.mean() - whole.mean()).abs() <= 1e-9 * (1.0 + whole.mean().abs()));
        assert!(
            (folded.variance() - whole.variance()).abs() <= 1e-9 * (1.0 + whole.variance().abs())
        );
    }
}

#[test]
fn required_n_achieves_the_target() {
    let mut rng = Rng(44);
    for _ in 0..CASES {
        let cv = rng.uniform(0.0, 10.0);
        let eps = rng.uniform(0.001, 0.5);
        let level = rng.uniform(0.5, 0.999);
        let conf = Confidence::new(level).unwrap();
        let n = required_sample_size(cv, eps, conf).unwrap();
        let achieved = relative_half_width(cv, n, conf).unwrap();
        assert!(
            achieved <= eps * (1.0 + 1e-9),
            "achieved {achieved} at n={n} for target {eps}"
        );
        if n > 30 {
            let under = relative_half_width(cv, n - 1, conf).unwrap();
            assert!(under > eps);
        }
    }
}

#[test]
fn half_width_monotonic_in_n_and_cv() {
    let mut rng = Rng(55);
    for _ in 0..CASES {
        let cv = rng.uniform(0.01, 5.0);
        let n = 1 + rng.below(100_000);
        let conf = Confidence::NINETY_FIVE;
        let base = relative_half_width(cv, n, conf).unwrap();
        assert!(relative_half_width(cv, n + 1, conf).unwrap() <= base);
        assert!(relative_half_width(cv * 1.1, n, conf).unwrap() >= base);
    }
}

#[test]
fn interval_is_symmetric_and_contains_mean() {
    let mut rng = Rng(66);
    for _ in 0..CASES {
        let mean = rng.uniform(-1e3, 1e3);
        let cv = rng.uniform(0.0, 5.0);
        let n = 1 + rng.below(10_000);
        let est = SampleEstimate::new(mean, cv, n);
        let (lo, hi) = est.interval(Confidence::NINETY_FIVE).unwrap();
        assert!(lo <= mean && mean <= hi);
        assert!((hi - mean) - (mean - lo) <= 1e-9 * (1.0 + mean.abs()));
        let half = confidence_interval(mean, cv, n, Confidence::NINETY_FIVE).unwrap();
        assert!((hi - mean - half).abs() <= 1e-9 * (1.0 + half));
    }
}

#[test]
fn systematic_design_unit_count_is_consistent() {
    let mut rng = Rng(77);
    for _ in 0..CASES {
        let unit = 1 + rng.below(10_000);
        let population = 1 + rng.below(100_000);
        let interval = 1 + rng.below(1000);
        let offset = interval - 1;
        let design = SystematicDesign::new(unit, population, interval, offset).unwrap();
        let count = design.unit_indices().count() as u64;
        assert_eq!(count, design.sample_size());
        assert_eq!(design.measured_instructions(), count * unit);
        for idx in design.unit_indices() {
            assert!(idx < population);
            assert_eq!(idx % interval, offset);
        }
    }
}

#[test]
fn systematic_phases_partition_the_population() {
    let mut rng = Rng(88);
    for _ in 0..CASES {
        let population = 1 + rng.below(2000);
        let interval = 1 + rng.below(50);
        let design = SystematicDesign::new(1, population, interval, 0).unwrap();
        let mut seen = vec![false; population as usize];
        for j in 0..interval.min(population) {
            for idx in design.with_offset(j).unwrap().unit_indices() {
                assert!(!seen[idx as usize], "unit {idx} selected twice");
                seen[idx as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "phases must cover the population");
    }
}

#[test]
fn random_design_is_sorted_distinct_in_range() {
    let mut rng = Rng(99);
    for _ in 0..CASES {
        let population = 1 + rng.below(10_000);
        let seed = rng.below(1000);
        let n = (population / 2).max(1);
        let design = RandomDesign::draw(1, population, n, seed).unwrap();
        let idx: Vec<u64> = design.unit_indices().collect();
        assert_eq!(idx.len() as u64, n);
        for pair in idx.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(idx.iter().all(|&i| i < population));
    }
}

#[test]
fn variation_curve_grand_mean_invariant() {
    let mut rng = Rng(111);
    for _ in 0..CASES {
        let xs = rng.observations(16..128, 0.1, 10.0);
        let curve = variation_curve(&xs, 1, &[2]);
        if let Some(point) = curve.first() {
            let whole = (xs.len() / 2) * 2;
            let grand = xs[..whole].iter().sum::<f64>() / whole as f64;
            let aggregated: Vec<f64> = xs[..whole].chunks(2).map(|c| (c[0] + c[1]) / 2.0).collect();
            let agg_mean = aggregated.iter().sum::<f64>() / aggregated.len() as f64;
            assert!((grand - agg_mean).abs() < 1e-9);
            assert!(point.coefficient_of_variation >= 0.0);
        }
    }
}

#[test]
fn aggregation_never_increases_variation() {
    let mut rng = Rng(122);
    for _ in 0..CASES {
        let xs = rng.observations(64..256, 0.1, 10.0);
        let curve = variation_curve(&xs, 1, &[1, xs.len() / 2]);
        for point in &curve {
            assert!(point.coefficient_of_variation.is_finite());
            assert!(point.coefficient_of_variation >= 0.0);
        }
    }
}

#[test]
fn systematic_means_average_to_population_mean() {
    let mut rng = Rng(133);
    for _ in 0..CASES {
        let xs = rng.observations(10..200, 0.1, 10.0);
        let interval = 1 + rng.below(9) as usize;
        let whole = (xs.len() / interval) * interval;
        if whole >= interval {
            let xs = &xs[..whole];
            let means = systematic_sample_means(xs, interval);
            let recovered = means.iter().sum::<f64>() / means.len() as f64;
            let grand = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((recovered - grand).abs() < 1e-9);
        }
    }
}

#[test]
fn icc_bounded_below_by_minus_one_over_n_minus_1() {
    let mut rng = Rng(144);
    for _ in 0..CASES {
        let xs = rng.observations(20..200, 0.0, 10.0);
        let delta = intraclass_correlation(&xs, 5);
        let n = xs.len() / 5;
        if n >= 2 {
            assert!(delta >= -1.0 / (n as f64 - 1.0) - 1e-6, "delta = {delta}");
            assert!(delta <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn bias_of_exact_estimates_is_zero() {
    let mut rng = Rng(155);
    for _ in 0..CASES {
        let truth = rng.uniform(-100.0, 100.0);
        assert!(bias(&[truth, truth, truth], truth).abs() < 1e-12);
    }
}

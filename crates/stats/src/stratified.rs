//! Stratified estimation: Neyman allocation, a deterministic 1-D
//! clusterer for building strata from pilot measurements, and the
//! stratified mean/variance estimator with its confidence interval.
//!
//! Stratification exploits structure systematic sampling ignores: when
//! the per-unit metric clusters into phases (Figure 2's `phased-*`
//! workloads), the within-stratum variation Σ W_h·σ_h can be far below
//! the population σ, and the sample size needed for a `±ε` interval
//! shrinks by the square of that ratio. The machinery here is
//! simulator-independent — it operates on plain `f64` values and `u64`
//! unit indices — and is driven by the samplers in [`crate::sampler`].

use crate::{Confidence, RunningStats, StatsError};

/// One stratum of a [`StratifiedEstimator`]: its population size `N_h`
/// and the running moments of the values sampled from it.
#[derive(Debug, Clone)]
struct Stratum {
    population: u64,
    stats: RunningStats,
}

/// Stratified mean estimator over a finite population partitioned into
/// strata of known sizes.
///
/// The point estimate is the stratum-weighted mean `μ̂ = Σ W_h·ȳ_h`
/// with `W_h = N_h / N`, and its variance is estimated as
/// `Var(μ̂) = Σ W_h²·(s_h²/n_h)·(1 − n_h/N_h)` — the textbook
/// stratified-sampling formula with the finite-population correction,
/// which [`StratifiedEstimator::without_fpc`] can disable. A stratum
/// with fewer than two observations borrows the pooled sample variance
/// as a conservative stand-in for its own `s_h²`.
///
/// With a single stratum and the correction disabled, the estimator
/// degenerates exactly to the systematic estimator of
/// [`crate::SampleEstimate`]: same mean, same `z·V̂/√n` half-width.
#[derive(Debug, Clone)]
pub struct StratifiedEstimator {
    strata: Vec<Stratum>,
    use_fpc: bool,
}

impl StratifiedEstimator {
    /// Creates an estimator over strata of the given population sizes,
    /// with the finite-population correction enabled.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroDesignParameter`] when `sizes` is empty
    /// or any stratum is empty.
    pub fn new(sizes: &[u64]) -> Result<Self, StatsError> {
        if sizes.is_empty() {
            return Err(StatsError::ZeroDesignParameter("strata"));
        }
        if sizes.contains(&0) {
            return Err(StatsError::ZeroDesignParameter("stratum population"));
        }
        Ok(StratifiedEstimator {
            strata: sizes
                .iter()
                .map(|&population| Stratum {
                    population,
                    stats: RunningStats::new(),
                })
                .collect(),
            use_fpc: true,
        })
    }

    /// Disables the finite-population correction, so the variance is the
    /// with-replacement `Σ W_h²·s_h²/n_h` — the form that degenerates
    /// exactly to the systematic `z·V̂/√n` half-width with one stratum.
    pub fn without_fpc(mut self) -> Self {
        self.use_fpc = false;
        self
    }

    /// Adds one observation to stratum `h`.
    ///
    /// # Panics
    ///
    /// Panics when `h` is out of range.
    pub fn observe(&mut self, h: usize, value: f64) {
        self.strata[h].stats.push(value);
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.strata.len()
    }

    /// Total population size `N = Σ N_h` in units.
    pub fn population(&self) -> u64 {
        self.strata.iter().map(|s| s.population).sum()
    }

    /// Total observations accumulated across strata.
    pub fn sample_size(&self) -> u64 {
        self.strata.iter().map(|s| s.stats.count()).sum()
    }

    /// Observations accumulated in stratum `h`.
    pub fn stratum_sample_size(&self, h: usize) -> u64 {
        self.strata[h].stats.count()
    }

    /// Sample standard deviation of stratum `h` (0 with < 2 values).
    pub fn stratum_std_dev(&self, h: usize) -> f64 {
        self.strata[h].stats.std_dev()
    }

    /// The stratum-weighted mean `Σ W_h·ȳ_h`.
    ///
    /// Strata with no observations yet are excluded and the weights of
    /// the observed strata renormalized — the collapsed-strata fallback;
    /// the samplers guarantee every stratum holds at least one pilot
    /// observation, so in driven use all weights are the true `W_h`.
    pub fn mean(&self) -> f64 {
        let observed: u64 = self
            .strata
            .iter()
            .filter(|s| s.stats.count() > 0)
            .map(|s| s.population)
            .sum();
        if observed == 0 {
            return 0.0;
        }
        self.strata
            .iter()
            .filter(|s| s.stats.count() > 0)
            .map(|s| s.population as f64 / observed as f64 * s.stats.mean())
            .sum()
    }

    /// Pooled sample variance over all observations, used as the
    /// stand-in `s_h²` for strata with fewer than two observations.
    fn pooled_variance(&self) -> f64 {
        let mut all = RunningStats::new();
        for s in &self.strata {
            all.merge(&s.stats);
        }
        all.variance()
    }

    /// Estimated variance of the stratified mean,
    /// `Σ W_h²·(s_h²/n_h)·(1 − n_h/N_h)`.
    pub fn variance_of_mean(&self) -> f64 {
        let observed: u64 = self
            .strata
            .iter()
            .filter(|s| s.stats.count() > 0)
            .map(|s| s.population)
            .sum();
        if observed == 0 {
            return 0.0;
        }
        let pooled = self.pooled_variance();
        self.strata
            .iter()
            .filter(|s| s.stats.count() > 0)
            .map(|s| {
                let w = s.population as f64 / observed as f64;
                let n = s.stats.count();
                let s2 = if n >= 2 { s.stats.variance() } else { pooled };
                let fpc = if self.use_fpc {
                    (1.0 - n as f64 / s.population as f64).max(0.0)
                } else {
                    1.0
                };
                w * w * s2 / n as f64 * fpc
            })
            .sum()
    }

    /// Relative half-width `ε̂ = z·√Var(μ̂) / |μ̂|` of the confidence
    /// interval at the given level; `+∞` when the mean is zero.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientSample`] before any observation.
    pub fn relative_half_width(&self, confidence: Confidence) -> Result<f64, StatsError> {
        let n = self.sample_size();
        if n == 0 {
            return Err(StatsError::InsufficientSample {
                required: 1,
                actual: 0,
            });
        }
        let mean = self.mean();
        if mean == 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok(confidence.z() * self.variance_of_mean().sqrt() / mean.abs())
    }

    /// Whether the accumulated sample achieves a `±epsilon` relative
    /// interval at the given level.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidErrorTarget`] for `epsilon ≤ 0` and
    /// propagates [`StratifiedEstimator::relative_half_width`] errors.
    pub fn meets(&self, epsilon: f64, confidence: Confidence) -> Result<bool, StatsError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(StatsError::InvalidErrorTarget(epsilon));
        }
        Ok(self.relative_half_width(confidence)? <= epsilon)
    }

    /// The coefficient of variation a simple-random sample of the same
    /// size would have needed to reach this half-width: `√(n·Var)/|μ̂|`.
    /// A value below the population CV is the efficiency stratification
    /// bought.
    pub fn equivalent_cv(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        (self.sample_size() as f64 * self.variance_of_mean()).sqrt() / mean.abs()
    }
}

/// Neyman allocation: distributes `total` sampling units across strata
/// proportionally to `N_h·s_h`, the allocation that minimizes the
/// stratified variance at a fixed total.
///
/// Every stratum receives at least one unit (so the stratified mean
/// stays defined) and never more than its population `N_h`; rounding is
/// resolved by largest remainder. When every `s_h` is zero the
/// allocation falls back to proportional-to-`N_h`. If `total` exceeds
/// the population, everything is allocated.
///
/// # Errors
///
/// Returns [`StatsError::ZeroDesignParameter`] when `strata` is empty,
/// any `N_h` is zero, or `total` is zero.
pub fn neyman_allocation(strata: &[(u64, f64)], total: u64) -> Result<Vec<u64>, StatsError> {
    if strata.is_empty() {
        return Err(StatsError::ZeroDesignParameter("strata"));
    }
    if strata.iter().any(|&(n, _)| n == 0) {
        return Err(StatsError::ZeroDesignParameter("stratum population"));
    }
    if total == 0 {
        return Err(StatsError::ZeroDesignParameter("total allocation"));
    }
    let population: u64 = strata.iter().map(|&(n, _)| n).sum();
    let total = total.min(population);

    let mut weights: Vec<f64> = strata.iter().map(|&(n, s)| n as f64 * s.max(0.0)).collect();
    if weights.iter().all(|&w| w == 0.0) {
        for (w, &(n, _)) in weights.iter_mut().zip(strata) {
            *w = n as f64;
        }
    }
    let weight_sum: f64 = weights.iter().sum();

    // Start from the floored ideal share, clamped into [1, N_h]; then
    // hand out the remaining units by largest fractional remainder among
    // strata that still have room.
    let mut alloc: Vec<u64> = Vec::with_capacity(strata.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(strata.len());
    for (h, (&(n_h, _), &w)) in strata.iter().zip(&weights).enumerate() {
        let ideal = total as f64 * w / weight_sum;
        let base = (ideal.floor() as u64).clamp(1, n_h);
        alloc.push(base);
        remainders.push((h, ideal - ideal.floor()));
    }
    // Deterministic order: remainder descending, stratum index ascending.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut assigned: u64 = alloc.iter().sum();
    while assigned < total {
        let mut progressed = false;
        for &(h, _) in &remainders {
            if assigned == total {
                break;
            }
            if alloc[h] < strata[h].0 {
                alloc[h] += 1;
                assigned += 1;
                progressed = true;
            }
        }
        if !progressed {
            break; // every stratum saturated
        }
    }
    // The minimum-one clamp can overshoot a tiny total; shave the excess
    // from the largest allocations (never below one).
    while assigned > total {
        let (h, _) = alloc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .expect("non-empty");
        if alloc[h] <= 1 {
            break;
        }
        alloc[h] -= 1;
        assigned -= 1;
    }
    Ok(alloc)
}

/// A deterministic 1-D clustering of values into at most `k` groups.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster label of each input value, `0 ≤ label < centers.len()`.
    pub labels: Vec<usize>,
    /// Cluster centers in ascending order; empty clusters are dropped,
    /// so `centers.len()` may be below the requested `k`.
    pub centers: Vec<f64>,
}

/// Clusters scalar values into at most `k` groups with Lloyd's
/// algorithm, deterministically: centers start at the `(2i+1)/2k`
/// quantiles of the sorted values, assignment ties break toward the
/// lower center, and iteration stops at a fixed point (or after 64
/// rounds). No randomness is involved, so identical inputs always
/// produce identical strata.
///
/// # Errors
///
/// Returns [`StatsError::ZeroDesignParameter`] when `values` is empty or
/// `k` is zero, and [`StatsError::InvalidVariation`] on non-finite
/// values.
pub fn cluster_1d(values: &[f64], k: usize) -> Result<Clustering, StatsError> {
    if values.is_empty() {
        return Err(StatsError::ZeroDesignParameter("values"));
    }
    if k == 0 {
        return Err(StatsError::ZeroDesignParameter("clusters"));
    }
    if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(StatsError::InvalidVariation(bad));
    }
    let k = k.min(values.len());

    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut centers: Vec<f64> = (0..k)
        .map(|i| sorted[(2 * i + 1) * sorted.len() / (2 * k)])
        .collect();
    centers.dedup();

    let assign = |centers: &[f64], value: f64| -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, &center) in centers.iter().enumerate() {
            let d = (value - center).abs();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    };

    let mut labels: Vec<usize> = values.iter().map(|&v| assign(&centers, v)).collect();
    for _ in 0..64 {
        let mut sums = vec![0.0f64; centers.len()];
        let mut counts = vec![0u64; centers.len()];
        for (&v, &l) in values.iter().zip(&labels) {
            sums[l] += v;
            counts[l] += 1;
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                *center = sums[c] / counts[c] as f64;
            }
        }
        let next: Vec<usize> = values.iter().map(|&v| assign(&centers, v)).collect();
        if next == labels {
            break;
        }
        labels = next;
    }

    // Drop empty clusters and renumber labels in ascending-center order.
    let mut used: Vec<usize> = {
        let mut seen = vec![false; centers.len()];
        for &l in &labels {
            seen[l] = true;
        }
        (0..centers.len()).filter(|&c| seen[c]).collect()
    };
    used.sort_by(|&a, &b| centers[a].partial_cmp(&centers[b]).unwrap());
    let mut remap = vec![usize::MAX; centers.len()];
    for (new, &old) in used.iter().enumerate() {
        remap[old] = new;
    }
    Ok(Clustering {
        labels: labels.into_iter().map(|l| remap[l]).collect(),
        centers: used.into_iter().map(|c| centers[c]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SplitMix64;

    #[test]
    fn one_stratum_without_fpc_degenerates_to_systematic() {
        let values = [1.5, 2.0, 2.5, 3.0, 1.0, 2.2, 1.8, 2.6];
        let mut est = StratifiedEstimator::new(&[1000]).unwrap().without_fpc();
        let mut plain = RunningStats::new();
        for &v in &values {
            est.observe(0, v);
            plain.push(v);
        }
        let simple = crate::SampleEstimate::from_stats(&plain);
        assert!((est.mean() - simple.mean()).abs() < 1e-15);
        let conf = Confidence::THREE_SIGMA;
        let strat_eps = est.relative_half_width(conf).unwrap();
        let simple_eps = simple.achieved_epsilon(conf).unwrap();
        assert!(
            (strat_eps - simple_eps).abs() < 1e-12,
            "{strat_eps} vs {simple_eps}"
        );
    }

    #[test]
    fn fpc_tightens_the_interval() {
        let mut with = StratifiedEstimator::new(&[40]).unwrap();
        let mut without = StratifiedEstimator::new(&[40]).unwrap().without_fpc();
        for i in 0..30 {
            let v = 1.0 + (i % 7) as f64 * 0.1;
            with.observe(0, v);
            without.observe(0, v);
        }
        let conf = Confidence::NINETY_FIVE;
        assert!(
            with.relative_half_width(conf).unwrap() < without.relative_half_width(conf).unwrap()
        );
    }

    /// Ground-truth coverage: on random two-phase populations, the
    /// stratified mean must land within its own CI at (at least) the
    /// stated confidence. 95% nominal over 400 trials has σ ≈ 1.1%, so
    /// requiring ≥ 90% observed coverage is a > 4σ-lenient bound.
    #[test]
    fn stratified_ci_covers_population_truth() {
        let mut rng = SplitMix64::new(0x5EED_CAFE);
        let conf = Confidence::NINETY_FIVE;
        let trials = 400;
        let mut hits = 0;
        for _ in 0..trials {
            // Two phases with different means/spreads, as a phased
            // workload's CPI would produce.
            let n_a = 400 + (rng.next_u64() % 200) as usize;
            let n_b = 400 + (rng.next_u64() % 200) as usize;
            let pop_a: Vec<f64> = (0..n_a).map(|_| 1.0 + 0.2 * rng.next_f64()).collect();
            let pop_b: Vec<f64> = (0..n_b).map(|_| 3.0 + 0.6 * rng.next_f64()).collect();
            let truth =
                (pop_a.iter().sum::<f64>() + pop_b.iter().sum::<f64>()) / (n_a + n_b) as f64;

            let mut est = StratifiedEstimator::new(&[n_a as u64, n_b as u64]).unwrap();
            // SRS of 25 from each stratum, without replacement.
            for (h, pop) in [(0usize, &pop_a), (1usize, &pop_b)] {
                let mut idx: Vec<usize> = (0..pop.len()).collect();
                for i in 0..25 {
                    let j = i + (rng.next_u64() as usize) % (idx.len() - i);
                    idx.swap(i, j);
                    est.observe(h, pop[idx[i]]);
                }
            }
            let half = est.relative_half_width(conf).unwrap() * est.mean().abs();
            if (est.mean() - truth).abs() <= half {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage >= 0.90, "coverage {coverage} below 0.90");
    }

    /// Neyman allocation on a high-contrast population beats
    /// proportional allocation's variance.
    #[test]
    fn neyman_beats_proportional_variance() {
        let strata = [(1000u64, 0.05f64), (1000, 1.0)];
        let neyman = neyman_allocation(&strata, 100).unwrap();
        assert_eq!(neyman.iter().sum::<u64>(), 100);
        // Nearly everything goes to the noisy stratum.
        assert!(neyman[1] > 90, "allocation {neyman:?}");
        let var = |alloc: &[u64]| -> f64 {
            strata
                .iter()
                .zip(alloc)
                .map(|(&(n, s), &a)| {
                    let w = n as f64 / 2000.0;
                    w * w * s * s / a as f64
                })
                .sum()
        };
        assert!(var(&neyman) < var(&[50, 50]));
    }

    #[test]
    fn allocation_respects_caps_and_minimums() {
        let alloc = neyman_allocation(&[(3, 10.0), (1000, 0.001)], 50).unwrap();
        assert_eq!(alloc.iter().sum::<u64>(), 50);
        assert!(alloc[0] <= 3);
        assert!(alloc.iter().all(|&a| a >= 1));

        // Zero spreads fall back to proportional.
        let flat = neyman_allocation(&[(100, 0.0), (300, 0.0)], 40).unwrap();
        assert_eq!(flat, vec![10, 30]);

        // Total beyond the population allocates everything.
        let all = neyman_allocation(&[(5, 1.0), (7, 2.0)], 1000).unwrap();
        assert_eq!(all, vec![5, 7]);

        assert!(neyman_allocation(&[], 10).is_err());
        assert!(neyman_allocation(&[(0, 1.0)], 10).is_err());
        assert!(neyman_allocation(&[(10, 1.0)], 0).is_err());
    }

    #[test]
    fn cluster_1d_separates_well_separated_modes() {
        let mut values = Vec::new();
        for i in 0..50 {
            values.push(1.0 + (i % 5) as f64 * 0.01);
            values.push(4.0 + (i % 7) as f64 * 0.01);
        }
        let clustering = cluster_1d(&values, 2).unwrap();
        assert_eq!(clustering.centers.len(), 2);
        assert!(clustering.centers[0] < 2.0 && clustering.centers[1] > 3.0);
        for (&v, &l) in values.iter().zip(&clustering.labels) {
            assert_eq!(l, usize::from(v > 2.5), "value {v} mislabelled");
        }
        // Determinism: same input, same output.
        let again = cluster_1d(&values, 2).unwrap();
        assert_eq!(again.labels, clustering.labels);
    }

    #[test]
    fn cluster_1d_handles_degenerate_inputs() {
        let constant = cluster_1d(&[2.0; 10], 4).unwrap();
        assert_eq!(constant.centers.len(), 1);
        assert!(constant.labels.iter().all(|&l| l == 0));

        let fewer = cluster_1d(&[1.0, 9.0], 5).unwrap();
        assert!(fewer.centers.len() <= 2);

        assert!(cluster_1d(&[], 3).is_err());
        assert!(cluster_1d(&[1.0], 0).is_err());
        assert!(cluster_1d(&[f64::NAN], 2).is_err());
    }

    #[test]
    fn empty_estimator_reports_insufficient_sample() {
        let est = StratifiedEstimator::new(&[10, 20]).unwrap();
        assert_eq!(est.population(), 30);
        assert_eq!(est.sample_size(), 0);
        assert!(est.relative_half_width(Confidence::NINETY_FIVE).is_err());
        assert!(StratifiedEstimator::new(&[]).is_err());
        assert!(StratifiedEstimator::new(&[5, 0]).is_err());
    }
}

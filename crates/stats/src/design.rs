use crate::StatsError;
use std::fmt;

/// A systematic sampling design over an ordered population of sampling
/// units (Section 3.1, Figure 1 of the paper).
///
/// The population consists of `population` units of `unit_size`
/// instructions each. The design selects every `interval`-th unit starting
/// at unit index `offset`, i.e. units `j, j+k, j+2k, …`.
///
/// # Examples
///
/// ```
/// use smarts_stats::SystematicDesign;
///
/// # fn main() -> Result<(), smarts_stats::StatsError> {
/// // 1M-instruction stream, U = 1000, want n = 100 units.
/// let design = SystematicDesign::for_sample_size(1000, 1_000, 100, 0)?;
/// assert_eq!(design.interval(), 10);
/// assert_eq!(design.sample_size(), 100);
/// assert_eq!(design.unit_indices().next(), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystematicDesign {
    unit_size: u64,
    population: u64,
    interval: u64,
    offset: u64,
}

impl SystematicDesign {
    /// Creates a design from an explicit sampling interval `k`.
    ///
    /// # Errors
    ///
    /// Returns an error when `unit_size`, `population`, or `interval` is
    /// zero, or when `offset ≥ interval`.
    pub fn new(
        unit_size: u64,
        population: u64,
        interval: u64,
        offset: u64,
    ) -> Result<Self, StatsError> {
        if unit_size == 0 {
            return Err(StatsError::ZeroDesignParameter("unit_size"));
        }
        if population == 0 {
            return Err(StatsError::ZeroDesignParameter("population"));
        }
        if interval == 0 {
            return Err(StatsError::ZeroDesignParameter("interval"));
        }
        if offset >= interval {
            return Err(StatsError::OffsetOutOfRange { offset, interval });
        }
        Ok(SystematicDesign {
            unit_size,
            population,
            interval,
            offset,
        })
    }

    /// Creates a design targeting a sample of `n` units: `k = ⌊N/n⌋`
    /// (clamped to at least 1, i.e. measure-everything when `n ≥ N`).
    ///
    /// # Errors
    ///
    /// Returns an error when `unit_size`, `population`, or `n` is zero, or
    /// when `offset` is not below the resulting interval.
    pub fn for_sample_size(
        unit_size: u64,
        population: u64,
        n: u64,
        offset: u64,
    ) -> Result<Self, StatsError> {
        if n == 0 {
            return Err(StatsError::ZeroDesignParameter("n"));
        }
        if population == 0 {
            return Err(StatsError::ZeroDesignParameter("population"));
        }
        let interval = (population / n).max(1);
        SystematicDesign::new(unit_size, population, interval, offset)
    }

    /// Sampling-unit size `U` in instructions.
    pub fn unit_size(&self) -> u64 {
        self.unit_size
    }

    /// Population size `N` in units.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Systematic sampling interval `k` in units.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Phase offset `j` (index of the first selected unit), `0 ≤ j < k`.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Returns a copy of this design with a different phase offset.
    ///
    /// # Errors
    ///
    /// Returns an error when `offset ≥ interval`.
    pub fn with_offset(&self, offset: u64) -> Result<Self, StatsError> {
        SystematicDesign::new(self.unit_size, self.population, self.interval, offset)
    }

    /// Number of units the design selects: `⌈(N − j) / k⌉`.
    pub fn sample_size(&self) -> u64 {
        if self.offset >= self.population {
            0
        } else {
            (self.population - self.offset).div_ceil(self.interval)
        }
    }

    /// Total instructions measured in detail: `n · U`.
    pub fn measured_instructions(&self) -> u64 {
        self.sample_size() * self.unit_size
    }

    /// Fraction of the stream that is measured, `n·U / (N·U)`.
    pub fn measured_fraction(&self) -> f64 {
        self.sample_size() as f64 / self.population as f64
    }

    /// Indices (in units) of the selected sampling units: `j, j+k, …`.
    pub fn unit_indices(&self) -> impl Iterator<Item = u64> + '_ {
        (self.offset..self.population).step_by(self.interval as usize)
    }

    /// Starting instruction offsets of the selected sampling units.
    pub fn unit_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.unit_indices().map(move |i| i * self.unit_size)
    }

    /// The `k` evenly spaced phase offsets `{0, k/m, 2k/m, …}` used by the
    /// paper's bias-approximation procedure (Section 4.3 uses `m = 5`).
    ///
    /// Returns fewer than `m` offsets when `k < m`.
    pub fn phase_offsets(&self, m: u64) -> Vec<u64> {
        let m = m.min(self.interval).max(1);
        (0..m).map(|i| i * self.interval / m).collect()
    }
}

impl fmt::Display for SystematicDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U={} N={} k={} j={} (n={})",
            self.unit_size,
            self.population,
            self.interval,
            self.offset,
            self.sample_size()
        )
    }
}

/// A simple-random sampling design over the same population abstraction.
///
/// SMARTS itself uses systematic sampling (simpler in execution-driven
/// simulators), but random sampling is the theoretical reference the paper
/// appeals to; this design exists for the systematic-vs-random ablation.
///
/// Unit indices are drawn without replacement by a deterministic
/// splitmix64-based shuffle seeded by the caller, so designs are
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RandomDesign {
    unit_size: u64,
    population: u64,
    indices: Vec<u64>,
}

impl RandomDesign {
    /// Draws `n` distinct unit indices uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns an error when `unit_size` or `population` is zero, or when
    /// `n` is zero or exceeds the population.
    pub fn draw(unit_size: u64, population: u64, n: u64, seed: u64) -> Result<Self, StatsError> {
        if unit_size == 0 {
            return Err(StatsError::ZeroDesignParameter("unit_size"));
        }
        if population == 0 {
            return Err(StatsError::ZeroDesignParameter("population"));
        }
        if n == 0 {
            return Err(StatsError::ZeroDesignParameter("n"));
        }
        if n > population {
            return Err(StatsError::InsufficientSample {
                required: n,
                actual: population,
            });
        }
        // Floyd's algorithm for sampling without replacement, driven by
        // splitmix64 so no external RNG dependency is needed here.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut chosen = std::collections::HashSet::with_capacity(n as usize);
        for j in (population - n)..population {
            let t = next() % (j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut indices: Vec<u64> = chosen.into_iter().collect();
        indices.sort_unstable();
        Ok(RandomDesign {
            unit_size,
            population,
            indices,
        })
    }

    /// Sampling-unit size `U` in instructions.
    pub fn unit_size(&self) -> u64 {
        self.unit_size
    }

    /// Population size `N` in units.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of selected units.
    pub fn sample_size(&self) -> u64 {
        self.indices.len() as u64
    }

    /// Selected unit indices in increasing order.
    pub fn unit_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.indices.iter().copied()
    }

    /// Starting instruction offsets of the selected sampling units.
    pub fn unit_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.indices.iter().map(move |&i| i * self.unit_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systematic_selects_expected_indices() {
        let d = SystematicDesign::new(1000, 20, 5, 2).unwrap();
        let idx: Vec<u64> = d.unit_indices().collect();
        assert_eq!(idx, vec![2, 7, 12, 17]);
        assert_eq!(d.sample_size(), 4);
        assert_eq!(d.measured_instructions(), 4000);
    }

    #[test]
    fn for_sample_size_computes_interval() {
        let d = SystematicDesign::for_sample_size(1000, 10_000, 100, 0).unwrap();
        assert_eq!(d.interval(), 100);
        assert_eq!(d.sample_size(), 100);
    }

    #[test]
    fn oversized_n_clamps_to_measure_everything() {
        let d = SystematicDesign::for_sample_size(10, 50, 1_000, 0).unwrap();
        assert_eq!(d.interval(), 1);
        assert_eq!(d.sample_size(), 50);
        assert!((d.measured_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_starts_are_instruction_offsets() {
        let d = SystematicDesign::new(100, 10, 4, 1).unwrap();
        let starts: Vec<u64> = d.unit_starts().collect();
        assert_eq!(starts, vec![100, 500, 900]);
    }

    #[test]
    fn phase_offsets_are_evenly_spread() {
        let d = SystematicDesign::new(1000, 100_000, 10_000, 0).unwrap();
        assert_eq!(d.phase_offsets(5), vec![0, 2000, 4000, 6000, 8000]);
        // Small k degrades gracefully.
        let small = SystematicDesign::new(1000, 10, 2, 0).unwrap();
        assert_eq!(small.phase_offsets(5), vec![0, 1]);
    }

    #[test]
    fn invalid_designs_rejected() {
        assert!(SystematicDesign::new(0, 10, 2, 0).is_err());
        assert!(SystematicDesign::new(10, 0, 2, 0).is_err());
        assert!(SystematicDesign::new(10, 10, 0, 0).is_err());
        assert!(SystematicDesign::new(10, 10, 2, 2).is_err());
        assert!(SystematicDesign::for_sample_size(10, 10, 0, 0).is_err());
    }

    #[test]
    fn with_offset_preserves_other_fields() {
        let d = SystematicDesign::new(1000, 100, 10, 0).unwrap();
        let shifted = d.with_offset(3).unwrap();
        assert_eq!(shifted.offset(), 3);
        assert_eq!(shifted.interval(), 10);
        assert_eq!(shifted.population(), 100);
    }

    #[test]
    fn random_design_is_distinct_sorted_reproducible() {
        let a = RandomDesign::draw(1000, 10_000, 500, 42).unwrap();
        let b = RandomDesign::draw(1000, 10_000, 500, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.sample_size(), 500);
        let idx: Vec<u64> = a.unit_indices().collect();
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(idx, dedup, "indices are distinct and sorted");
        assert!(idx.iter().all(|&i| i < 10_000));
        let c = RandomDesign::draw(1000, 10_000, 500, 43).unwrap();
        assert_ne!(a, c, "different seeds give different samples");
    }

    #[test]
    fn random_design_full_population() {
        let d = RandomDesign::draw(10, 100, 100, 7).unwrap();
        let idx: Vec<u64> = d.unit_indices().collect();
        assert_eq!(idx, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn random_design_rejects_bad_arguments() {
        assert!(RandomDesign::draw(0, 10, 5, 1).is_err());
        assert!(RandomDesign::draw(10, 0, 5, 1).is_err());
        assert!(RandomDesign::draw(10, 10, 0, 1).is_err());
        assert!(RandomDesign::draw(10, 10, 11, 1).is_err());
    }
}

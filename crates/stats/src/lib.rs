//! Statistical sampling mathematics for the SMARTS framework.
//!
//! This crate implements the inferential-statistics machinery of Section 2
//! of the SMARTS paper (Wunderlich et al., ISCA 2003): running moments and
//! coefficients of variation, normal-theory confidence intervals, minimal
//! sample sizing, systematic sampling designs, intraclass correlation, and
//! population analyses such as the `V(U)` variation curve of Figure 2.
//!
//! The crate is deliberately independent of any simulator type: it operates
//! on plain `f64` measurements so it can be reused for CPI, energy per
//! instruction, or any other per-sampling-unit metric.
//!
//! # Examples
//!
//! Designing a sampling run that estimates a mean to ±3% with 99.7%
//! confidence, assuming a measured coefficient of variation of 1.0:
//!
//! ```
//! use smarts_stats::{Confidence, required_sample_size};
//!
//! # fn main() -> Result<(), smarts_stats::StatsError> {
//! let n = required_sample_size(1.0, 0.03, Confidence::THREE_SIGMA)?;
//! assert!((9_000..11_000).contains(&n)); // the paper's n_init = 10,000
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod design;
mod error;
mod population;
mod running;
mod sampler;
mod stratified;

pub use confidence::{
    confidence_interval, proportion_half_width, relative_half_width, required_sample_size,
    required_sample_size_proportion, Confidence, SampleEstimate,
};
pub use design::{RandomDesign, SystematicDesign};
pub use error::StatsError;
pub use population::{
    bias, intraclass_correlation, systematic_sample_means, variation_curve, VariationPoint,
};
pub use running::RunningStats;
pub use sampler::{
    drive_sampler, AdaptiveSampler, Sampler, SamplerEstimate, SamplerPhase, SplitMix64, StopReason,
    StratifiedConfig, StratifiedSampler, SystematicSampler, DEFAULT_BATCH, DEFAULT_STRATA,
    MIN_SAMPLE,
};
pub use stratified::{cluster_1d, neyman_allocation, Clustering, StratifiedEstimator};

use std::error::Error;
use std::fmt;

/// Error type for invalid statistical arguments.
///
/// Returned by the sizing and confidence functions of this crate when the
/// caller supplies arguments outside their mathematical domain (for example
/// a confidence level of 1.2, or an empty sample).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The confidence level must lie strictly between 0 and 1.
    InvalidConfidenceLevel(f64),
    /// The relative error target `epsilon` must be strictly positive.
    InvalidErrorTarget(f64),
    /// The coefficient of variation must be finite and non-negative.
    InvalidVariation(f64),
    /// The operation requires at least this many observations.
    InsufficientSample {
        /// Number of observations required.
        required: u64,
        /// Number of observations actually available.
        actual: u64,
    },
    /// A design parameter (unit size, population, interval) must be nonzero.
    ZeroDesignParameter(&'static str),
    /// The offset `j` must be smaller than the sampling interval `k`.
    OffsetOutOfRange {
        /// Supplied offset.
        offset: u64,
        /// Sampling interval it must stay below.
        interval: u64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidConfidenceLevel(level) => {
                write!(
                    f,
                    "confidence level {level} is not in the open interval (0, 1)"
                )
            }
            StatsError::InvalidErrorTarget(eps) => {
                write!(f, "relative error target {eps} is not strictly positive")
            }
            StatsError::InvalidVariation(cv) => {
                write!(
                    f,
                    "coefficient of variation {cv} is not finite and non-negative"
                )
            }
            StatsError::InsufficientSample { required, actual } => {
                write!(
                    f,
                    "operation requires at least {required} observations, got {actual}"
                )
            }
            StatsError::ZeroDesignParameter(name) => {
                write!(f, "design parameter `{name}` must be nonzero")
            }
            StatsError::OffsetOutOfRange { offset, interval } => {
                write!(
                    f,
                    "offset {offset} is not below the sampling interval {interval}"
                )
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StatsError::InvalidConfidenceLevel(1.5),
            StatsError::InvalidErrorTarget(-0.1),
            StatsError::InvalidVariation(f64::NAN),
            StatsError::InsufficientSample {
                required: 30,
                actual: 2,
            },
            StatsError::ZeroDesignParameter("unit_size"),
            StatsError::OffsetOutOfRange {
                offset: 9,
                interval: 4,
            },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}

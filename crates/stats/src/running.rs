use std::fmt;

/// Single-pass running moments (Welford's algorithm).
///
/// Accumulates count, mean, and variance of a stream of observations without
/// storing them, in a numerically stable way. This is the accumulator the
/// SMARTS driver feeds with per-sampling-unit CPI and EPI measurements.
///
/// # Examples
///
/// ```
/// use smarts_stats::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased (n−1) sample variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (n) variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `V = σ / mean`; 0 when the mean is zero.
    ///
    /// This is the `V̂_x` of the paper's Table 1: the sample standard
    /// deviation normalized by the sample mean.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// The result is identical (up to floating-point rounding) to pushing
    /// both observation streams into a single accumulator.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} std={:.6} cv={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.coefficient_of_variation()
        )
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = RunningStats::new();
        stats.extend(iter);
        stats
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_variance(xs: &[f64]) -> f64 {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let stats = RunningStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn single_observation() {
        let stats: RunningStats = [42.0].into_iter().collect();
        assert_eq!(stats.mean(), 42.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.min(), 42.0);
        assert_eq!(stats.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_reference() {
        let xs = [1.5, 2.25, -3.0, 0.0, 9.75, 2.5, 2.5, 100.0];
        let stats: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.variance() - reference_variance(&xs)).abs() < 1e-9);
    }

    #[test]
    fn cv_of_constant_stream_is_zero() {
        let stats: RunningStats = std::iter::repeat_n(3.7, 100).collect();
        assert_eq!(stats.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut left: RunningStats = a.iter().copied().collect();
        let right: RunningStats = b.iter().copied().collect();
        left.merge(&right);
        let both: RunningStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(left.count(), both.count());
        assert!((left.mean() - both.mean()).abs() < 1e-12);
        assert!((left.variance() - both.variance()).abs() < 1e-9);
        assert_eq!(left.min(), both.min());
        assert_eq!(left.max(), both.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: RunningStats = [5.0, 6.0].into_iter().collect();
        let before = stats;
        stats.merge(&RunningStats::new());
        assert_eq!(stats, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_is_nonempty() {
        let stats: RunningStats = [1.0, 2.0].into_iter().collect();
        assert!(!format!("{stats}").is_empty());
    }
}

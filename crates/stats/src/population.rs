use crate::RunningStats;

/// One point of a `V(U)` variation curve: a sampling-unit size and the
/// coefficient of variation the population exhibits at that granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Sampling-unit size in instructions.
    pub unit_size: u64,
    /// Coefficient of variation of the per-unit means at this unit size.
    pub coefficient_of_variation: f64,
    /// Number of aggregated units the coefficient was computed over.
    pub units: u64,
}

/// Computes the Figure 2 variation curve `V(U)` from a fine-grained
/// per-unit metric trace.
///
/// `per_unit` holds the metric (e.g. CPI) of consecutive base units of
/// `base_unit_size` instructions each. For every aggregation factor `m`
/// (so `U = m · base_unit_size`), adjacent groups of `m` base units are
/// averaged and the coefficient of variation of the aggregated means is
/// reported. Because base units hold equal instruction counts, the mean of
/// their CPIs equals the CPI of the aggregate.
///
/// Factors that leave fewer than two aggregated units are skipped.
///
/// # Examples
///
/// ```
/// use smarts_stats::variation_curve;
///
/// // A population alternating fast and slow units: variation vanishes
/// // once units are pooled in pairs.
/// let cpi: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
/// let curve = variation_curve(&cpi, 1000, &[1, 2]);
/// assert!(curve[0].coefficient_of_variation > 0.4);
/// assert!(curve[1].coefficient_of_variation < 1e-12);
/// ```
pub fn variation_curve(
    per_unit: &[f64],
    base_unit_size: u64,
    factors: &[usize],
) -> Vec<VariationPoint> {
    let mut curve = Vec::with_capacity(factors.len());
    for &m in factors {
        if m == 0 {
            continue;
        }
        let groups = per_unit.len() / m;
        if groups < 2 {
            continue;
        }
        let mut stats = RunningStats::new();
        for g in 0..groups {
            let slice = &per_unit[g * m..(g + 1) * m];
            let mean = slice.iter().sum::<f64>() / m as f64;
            stats.push(mean);
        }
        curve.push(VariationPoint {
            unit_size: base_unit_size * m as u64,
            coefficient_of_variation: stats.coefficient_of_variation(),
            units: groups as u64,
        });
    }
    curve
}

/// Means of the `k` possible systematic samples of a population trace.
///
/// Sample `j` consists of units `j, j+k, j+2k, …`; its mean is the estimate
/// a systematic sampling run with phase `j` would produce (ignoring
/// measurement bias). The spread of these means is exactly the sampling
/// distribution of the systematic estimator.
pub fn systematic_sample_means(per_unit: &[f64], interval: usize) -> Vec<f64> {
    assert!(interval > 0, "interval must be nonzero");
    let mut means = Vec::with_capacity(interval.min(per_unit.len()));
    for j in 0..interval.min(per_unit.len()) {
        let mut stats = RunningStats::new();
        let mut i = j;
        while i < per_unit.len() {
            stats.push(per_unit[i]);
            i += interval;
        }
        if stats.count() > 0 {
            means.push(stats.mean());
        }
    }
    means
}

/// Intraclass correlation coefficient `δ` of a population under systematic
/// sampling at the given interval (Section 2's homogeneity measure).
///
/// Uses the variance identity `Var(x̄_sys) = (σ²/n)[1 + (n−1)δ]`, computing
/// the variance of the `k` possible systematic sample means directly. A
/// magnitude near zero means systematic sampling behaves like random
/// sampling; the paper verifies `|δ|` on the order of 1e-6 for SPEC2K.
///
/// Returns 0 for degenerate populations (constant, or fewer than two units
/// per systematic sample).
pub fn intraclass_correlation(per_unit: &[f64], interval: usize) -> f64 {
    assert!(interval > 0, "interval must be nonzero");
    let population: RunningStats = per_unit.iter().copied().collect();
    let sigma2 = population.population_variance();
    if sigma2 == 0.0 {
        return 0.0;
    }
    let n = per_unit.len() / interval;
    if n < 2 {
        return 0.0;
    }
    let means = systematic_sample_means(per_unit, interval);
    let mean_stats: RunningStats = means.iter().copied().collect();
    // Variance of the estimator over the k equally likely phases.
    let var_est = mean_stats.population_variance();
    (var_est * n as f64 / sigma2 - 1.0) / (n as f64 - 1.0)
}

/// Bias of an estimator: the average difference between the estimates from
/// all sampled phases and the true population value (`B(x̄) = Σx̄/k − X̄`).
///
/// The paper approximates the true bias by averaging the errors of a few
/// evenly distributed phase runs (Section 4.3 uses five).
pub fn bias(estimates: &[f64], truth: f64) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    estimates.iter().sum::<f64>() / estimates.len() as f64 - truth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variation_curve_is_monotonically_damped_for_alternating_signal() {
        let per_unit: Vec<f64> = (0..1024)
            .map(|i| if i % 2 == 0 { 0.5 } else { 2.5 })
            .collect();
        let curve = variation_curve(&per_unit, 10, &[1, 2, 4, 8]);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].unit_size, 10);
        assert_eq!(curve[3].unit_size, 80);
        assert!(curve[0].coefficient_of_variation > 0.5);
        for point in &curve[1..] {
            assert!(point.coefficient_of_variation < 1e-12);
        }
    }

    #[test]
    fn variation_curve_skips_degenerate_factors() {
        let per_unit = vec![1.0, 2.0, 3.0, 4.0];
        let curve = variation_curve(&per_unit, 10, &[1, 2, 3, 4, 100]);
        // factor 3 gives 1 group, factor 4 gives 1 group, 100 gives 0.
        let sizes: Vec<u64> = curve.iter().map(|p| p.unit_size).collect();
        assert_eq!(sizes, vec![10, 20]);
    }

    #[test]
    fn variation_curve_preserves_grand_mean_semantics() {
        // Aggregated means must average to the same grand mean.
        let per_unit: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let curve = variation_curve(&per_unit, 1, &[5]);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].units, 20);
    }

    #[test]
    fn systematic_sample_means_partition_population() {
        let per_unit = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let means = systematic_sample_means(&per_unit, 2);
        assert_eq!(means, vec![3.0, 4.0]); // {1,3,5} and {2,4,6}
    }

    #[test]
    fn icc_near_zero_for_aperiodic_population() {
        // A pseudo-random population has negligible intraclass correlation.
        let mut x = 123_456_789u64;
        let per_unit: Vec<f64> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let delta = intraclass_correlation(&per_unit, 100);
        assert!(delta.abs() < 0.01, "delta = {delta}");
    }

    #[test]
    fn icc_large_when_period_matches_interval() {
        // Period-4 signal sampled at interval 4: units within a systematic
        // sample are identical, so delta approaches 1.
        let per_unit: Vec<f64> = (0..4000).map(|i| (i % 4) as f64).collect();
        let delta = intraclass_correlation(&per_unit, 4);
        assert!(delta > 0.9, "delta = {delta}");
    }

    #[test]
    fn icc_zero_for_constant_population() {
        let per_unit = vec![2.0; 100];
        assert_eq!(intraclass_correlation(&per_unit, 10), 0.0);
    }

    #[test]
    fn bias_averages_phase_errors() {
        assert!((bias(&[1.1, 0.9, 1.0], 1.0)).abs() < 1e-12);
        assert!((bias(&[1.2, 1.2], 1.0) - 0.2).abs() < 1e-12);
        assert_eq!(bias(&[], 1.0), 0.0);
    }
}

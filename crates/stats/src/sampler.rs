//! Unit-selection strategies behind one [`Sampler`] trait.
//!
//! A sampler chooses *which* units of a population get a detailed
//! measurement, round by round: the driver asks for a phase of unit
//! indices ([`Sampler::next_phase`]), measures them (in any order, in
//! parallel), feeds the values back ([`Sampler::observe`]) and repeats
//! until the sampler says [`SamplerPhase::Done`]. All decision logic is
//! pure and seeded, so a fixed seed reproduces the exact unit set — the
//! reproducibility contract the caching and serving layers rely on.
//!
//! Three strategies are provided:
//!
//! * [`SystematicSampler`] — the paper's fixed-`n` evenly spaced design,
//!   as a trait-shaped reference point;
//! * [`StratifiedSampler`] — two-phase stratified selection: a small
//!   systematic pilot is clustered into strata
//!   ([`crate::cluster_1d`]), phase 2 tops the sample up by Neyman
//!   allocation ([`crate::neyman_allocation`]) sized from the pilot's
//!   within-stratum spreads;
//! * [`AdaptiveSampler`] — online sequential sampling: after the pilot,
//!   each batch is allocated variance-greedily to the stratum with the
//!   largest Neyman deficit under the *currently measured* spreads, and
//!   the run stops as soon as the running stratified CI reaches the
//!   `(±ε, confidence)` target.
//!
//! The sequential stopping rule peeks at the running interval after
//! every batch, so its realized coverage can dip slightly below the
//! nominal level (optional-stopping bias); the `n ≥ 30` floor and
//! batch-synchronous (rather than per-unit) checks keep the effect
//! small. A fixed-`n` design has no such bias — that is the trade
//! documented in DESIGN.md §3.7.

use crate::stratified::{cluster_1d, neyman_allocation, StratifiedEstimator};
use crate::{Confidence, RunningStats, SampleEstimate, StatsError, SystematicDesign};
use std::collections::BTreeSet;

/// Normal-approximation floor: no estimate is trusted (and no sequential
/// stop taken) below this many observations.
pub const MIN_SAMPLE: u64 = 30;

/// Default number of strata for the stratified/adaptive samplers.
pub const DEFAULT_STRATA: usize = 4;

/// Default per-round batch size of the adaptive sampler, in units.
pub const DEFAULT_BATCH: u64 = 32;

/// SplitMix64, the workspace's standard dependency-free PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// One round of a sampler's conversation with the measurement driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerPhase {
    /// Measure these unit indices and report each value via
    /// [`Sampler::observe`] before asking for the next phase.
    Measure(Vec<u64>),
    /// Sampling is complete; read the final [`Sampler::estimate`].
    Done,
}

/// Why a sampler declared itself done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The design's fixed unit budget was fully measured.
    BudgetSpent,
    /// The running interval reached the `(±ε, confidence)` target.
    TargetMet,
    /// Every population unit has been measured.
    PoolExhausted,
    /// The configured cap on measured units was reached first.
    CapReached,
}

impl StopReason {
    /// Stable lowercase tag for reports and serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            StopReason::BudgetSpent => "budget",
            StopReason::TargetMet => "target",
            StopReason::PoolExhausted => "pool",
            StopReason::CapReached => "cap",
        }
    }
}

/// Final estimate and accounting of a sampler run.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerEstimate {
    /// The point estimate of the population mean.
    pub mean: f64,
    /// Achieved relative CI half-width at the sampler's confidence.
    pub half_width: f64,
    /// Units measured.
    pub n: u64,
    /// Population size the sampler selected from.
    pub pool: u64,
    /// Strata in the final estimator (1 for systematic).
    pub strata: usize,
    /// Measurement rounds driven (pilot counts as one).
    pub rounds: u32,
    /// Whether the `(±ε, confidence)` target was met.
    pub target_met: bool,
    /// Why sampling stopped.
    pub stop: StopReason,
}

/// A unit-selection strategy over a population of `pool` units indexed
/// `0..pool`, driven in phases by a measurement loop.
pub trait Sampler {
    /// Stable strategy name for reports and cache keys.
    fn name(&self) -> &'static str;

    /// The next set of unit indices to measure, or
    /// [`SamplerPhase::Done`]. Indices are distinct and never reissued.
    ///
    /// # Errors
    ///
    /// Propagates statistical errors from allocation or estimation.
    fn next_phase(&mut self) -> Result<SamplerPhase, StatsError>;

    /// Reports the measured value of one unit from the current phase.
    /// Feeding observations in ascending unit order keeps runs
    /// bit-reproducible regardless of measurement parallelism.
    fn observe(&mut self, unit: u64, value: f64);

    /// The estimate over everything observed so far.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientSample`] before any
    /// observation.
    fn estimate(&self) -> Result<SamplerEstimate, StatsError>;
}

/// The paper's fixed-size evenly spaced design behind the trait: one
/// phase of `n` units at interval `pool/n`, estimated with the plain
/// `z·V̂/√n` interval.
#[derive(Debug)]
pub struct SystematicSampler {
    design: SystematicDesign,
    epsilon: f64,
    confidence: Confidence,
    stats: RunningStats,
    issued: bool,
}

impl SystematicSampler {
    /// Creates a systematic sampler of `n` units over `pool`, starting
    /// at `offset` (clamped into the interval).
    ///
    /// # Errors
    ///
    /// Returns design errors for zero `pool`/`n` or a bad target.
    pub fn new(
        pool: u64,
        n: u64,
        offset: u64,
        epsilon: f64,
        confidence: Confidence,
    ) -> Result<Self, StatsError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(StatsError::InvalidErrorTarget(epsilon));
        }
        let interval = (pool.max(1) / n.max(1)).max(1);
        let design = SystematicDesign::new(1, pool, interval, offset % interval)?;
        Ok(SystematicSampler {
            design,
            epsilon,
            confidence,
            stats: RunningStats::new(),
            issued: false,
        })
    }
}

impl Sampler for SystematicSampler {
    fn name(&self) -> &'static str {
        "systematic"
    }

    fn next_phase(&mut self) -> Result<SamplerPhase, StatsError> {
        if self.issued {
            return Ok(SamplerPhase::Done);
        }
        self.issued = true;
        Ok(SamplerPhase::Measure(self.design.unit_indices().collect()))
    }

    fn observe(&mut self, _unit: u64, value: f64) {
        self.stats.push(value);
    }

    fn estimate(&self) -> Result<SamplerEstimate, StatsError> {
        if self.stats.count() == 0 {
            return Err(StatsError::InsufficientSample {
                required: 1,
                actual: 0,
            });
        }
        let est = SampleEstimate::from_stats(&self.stats);
        let half_width = est.achieved_epsilon(self.confidence)?;
        Ok(SamplerEstimate {
            mean: est.mean(),
            half_width,
            n: est.sample_size(),
            pool: self.design.population(),
            strata: 1,
            rounds: 1,
            target_met: half_width <= self.epsilon,
            stop: StopReason::BudgetSpent,
        })
    }
}

/// Shared configuration of the stratified and adaptive samplers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedConfig {
    /// Population size (units `0..pool` are selectable).
    pub pool: u64,
    /// Pilot size; 0 selects `max(30, pool/32)` capped at the pool.
    pub pilot: u64,
    /// Number of strata to cluster the pilot into (≥ 1).
    pub strata: usize,
    /// Relative CI half-width target.
    pub epsilon: f64,
    /// Confidence level of the target.
    pub confidence: Confidence,
    /// Seed for the pilot phase offset and within-stratum draws.
    pub seed: u64,
    /// Hard cap on total measured units; `None` caps at the pool.
    pub max_units: Option<u64>,
}

impl StratifiedConfig {
    /// Canonical configuration for a pool at the paper's ±3% @ 99.7%
    /// target.
    pub fn for_pool(pool: u64, epsilon: f64, confidence: Confidence, seed: u64) -> Self {
        StratifiedConfig {
            pool,
            pilot: 0,
            strata: DEFAULT_STRATA,
            epsilon,
            confidence,
            seed,
            max_units: None,
        }
    }

    fn validate(&self) -> Result<(), StatsError> {
        if self.pool == 0 {
            return Err(StatsError::ZeroDesignParameter("pool"));
        }
        if self.strata == 0 {
            return Err(StatsError::ZeroDesignParameter("strata"));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(StatsError::InvalidErrorTarget(self.epsilon));
        }
        Ok(())
    }

    fn pilot_size(&self) -> u64 {
        let auto = MIN_SAMPLE.max(self.pool / 16);
        let pilot = if self.pilot == 0 { auto } else { self.pilot };
        pilot.min(self.pool).min(self.cap())
    }

    fn cap(&self) -> u64 {
        self.max_units.unwrap_or(self.pool).min(self.pool)
    }
}

/// The strata derived from a clustered pilot: the population is cut at
/// midpoints between consecutive pilot units, and each resulting
/// segment inherits its pilot's cluster label — the piecewise-constant
/// phase structure CPI streams exhibit.
#[derive(Debug)]
struct PilotStrata {
    /// `(end, label)` per segment, ascending by `end`; segment `i`
    /// covers `[ends[i-1].0, ends[i].0)` with `ends[-1].0 = 0`.
    ends: Vec<(u64, usize)>,
    /// Population size per stratum.
    sizes: Vec<u64>,
}

impl PilotStrata {
    fn build(pilot_units: &[u64], values: &[f64], pool: u64, k: usize) -> Result<Self, StatsError> {
        let clustering = cluster_1d(values, k)?;
        let strata = clustering.centers.len();
        let mut ends = Vec::with_capacity(pilot_units.len());
        for (i, &label) in clustering.labels.iter().enumerate() {
            let end = if i + 1 == pilot_units.len() {
                pool
            } else {
                (pilot_units[i] + pilot_units[i + 1]).div_ceil(2)
            };
            ends.push((end, label));
        }
        let mut sizes = vec![0u64; strata];
        let mut start = 0;
        for &(end, label) in &ends {
            sizes[label] += end - start;
            start = end;
        }
        Ok(PilotStrata { ends, sizes })
    }

    fn stratum_of(&self, unit: u64) -> usize {
        let at = self.ends.partition_point(|&(end, _)| end <= unit);
        self.ends[at.min(self.ends.len() - 1)].1
    }

    /// Unmeasured members of stratum `h`, ascending.
    fn unmeasured(&self, h: usize, measured: &BTreeSet<u64>) -> Vec<u64> {
        let mut members = Vec::new();
        let mut start = 0;
        for &(end, label) in &self.ends {
            if label == h {
                members.extend((start..end).filter(|u| !measured.contains(u)));
            }
            start = end;
        }
        members
    }
}

/// Draws `m` units without replacement from `members` by a partial
/// Fisher–Yates shuffle, returning them in ascending order.
fn draw_srs(members: &mut [u64], m: usize, rng: &mut SplitMix64) -> Vec<u64> {
    let m = m.min(members.len());
    for i in 0..m {
        let j = i + rng.below((members.len() - i) as u64) as usize;
        members.swap(i, j);
    }
    let mut drawn: Vec<u64> = members[..m].to_vec();
    drawn.sort_unstable();
    drawn
}

/// Internal driver state shared by the stratified and adaptive
/// samplers: pilot bookkeeping, observations, and the derived strata.
#[derive(Debug)]
struct TwoPhaseState {
    cfg: StratifiedConfig,
    rng: SplitMix64,
    /// Units issued in the pilot phase, ascending.
    pilot_units: Vec<u64>,
    /// All observations, `(unit, value)` in observation order; pilot
    /// observations form the prefix.
    observed: Vec<(u64, f64)>,
    measured: BTreeSet<u64>,
    strata: Option<PilotStrata>,
    rounds: u32,
    stop: Option<StopReason>,
}

impl TwoPhaseState {
    fn new(cfg: StratifiedConfig) -> Result<Self, StatsError> {
        cfg.validate()?;
        Ok(TwoPhaseState {
            cfg,
            rng: SplitMix64::new(cfg.seed),
            pilot_units: Vec::new(),
            observed: Vec::new(),
            measured: BTreeSet::new(),
            strata: None,
            rounds: 0,
            stop: None,
        })
    }

    /// Issues the systematic pilot with a seeded phase offset.
    fn issue_pilot(&mut self) -> Result<Vec<u64>, StatsError> {
        let pilot = self.cfg.pilot_size();
        let interval = (self.cfg.pool / pilot).max(1);
        let offset = self.rng.below(interval);
        let design = SystematicDesign::new(1, self.cfg.pool, interval, offset)?;
        self.pilot_units = design.unit_indices().take(pilot as usize).collect();
        self.measured.extend(self.pilot_units.iter().copied());
        self.rounds += 1;
        Ok(self.pilot_units.clone())
    }

    /// Clusters the observed pilot into strata. Called once, after the
    /// pilot phase has been observed.
    fn build_strata(&mut self) -> Result<(), StatsError> {
        let pilot_values: Vec<f64> = self
            .observed
            .iter()
            .filter(|(u, _)| self.pilot_units.binary_search(u).is_ok())
            .map(|&(_, v)| v)
            .collect();
        let pilot_observed: Vec<u64> = self
            .observed
            .iter()
            .filter(|(u, _)| self.pilot_units.binary_search(u).is_ok())
            .map(|&(u, _)| u)
            .collect();
        if pilot_values.is_empty() {
            return Err(StatsError::InsufficientSample {
                required: 1,
                actual: 0,
            });
        }
        self.strata = Some(PilotStrata::build(
            &pilot_observed,
            &pilot_values,
            self.cfg.pool,
            self.cfg.strata,
        )?);
        Ok(())
    }

    /// The stratified estimator over everything observed so far.
    fn estimator(&self) -> Result<StratifiedEstimator, StatsError> {
        let strata = self.strata.as_ref().ok_or(StatsError::InsufficientSample {
            required: 1,
            actual: 0,
        })?;
        let mut est = StratifiedEstimator::new(&strata.sizes)?;
        for &(unit, value) in &self.observed {
            est.observe(strata.stratum_of(unit), value);
        }
        Ok(est)
    }

    /// Per-stratum `(N_h, s_h)` spreads from current observations, with
    /// the pooled spread standing in for strata observed fewer than two
    /// times.
    fn spreads(&self, est: &StratifiedEstimator) -> Vec<(u64, f64)> {
        let pooled = {
            let mut all = RunningStats::new();
            for &(_, v) in &self.observed {
                all.push(v);
            }
            all.std_dev()
        };
        let strata = self.strata.as_ref().expect("strata built");
        strata
            .sizes
            .iter()
            .enumerate()
            .map(|(h, &n_h)| {
                let s = if est.stratum_sample_size(h) >= 2 {
                    est.stratum_std_dev(h)
                } else {
                    pooled
                };
                (n_h, s)
            })
            .collect()
    }

    /// Draws `per_stratum[h]` additional units from each stratum's
    /// unmeasured members, merging into one ascending phase.
    fn draw_phase(&mut self, per_stratum: &[u64]) -> Vec<u64> {
        let strata = self.strata.as_ref().expect("strata built");
        let mut phase = Vec::new();
        for (h, &want) in per_stratum.iter().enumerate() {
            if want == 0 {
                continue;
            }
            let mut members = strata.unmeasured(h, &self.measured);
            phase.extend(draw_srs(&mut members, want as usize, &mut self.rng));
        }
        phase.sort_unstable();
        self.measured.extend(phase.iter().copied());
        if !phase.is_empty() {
            self.rounds += 1;
        }
        phase
    }

    fn observe(&mut self, unit: u64, value: f64) {
        self.observed.push((unit, value));
    }

    fn estimate(&self, name_default_stop: StopReason) -> Result<SamplerEstimate, StatsError> {
        let est = self.estimator()?;
        let half_width = est.relative_half_width(self.cfg.confidence)?;
        Ok(SamplerEstimate {
            mean: est.mean(),
            half_width,
            n: est.sample_size(),
            pool: self.cfg.pool,
            strata: est.stratum_count(),
            rounds: self.rounds,
            target_met: half_width <= self.cfg.epsilon,
            stop: self.stop.unwrap_or(name_default_stop),
        })
    }
}

/// Two-phase stratified sampler: systematic pilot → cluster into strata
/// → one Neyman-allocated top-up sized for the `(±ε, confidence)`
/// target from the pilot's within-stratum spreads.
///
/// The total is fixed after phase 1 (no further peeking), so the final
/// interval carries no optional-stopping bias; if the pilot
/// *underestimated* the spreads the achieved interval can miss the
/// target, which [`SamplerEstimate::target_met`] reports honestly.
#[derive(Debug)]
pub struct StratifiedSampler {
    state: TwoPhaseState,
    stage: u8,
}

impl StratifiedSampler {
    /// Creates the sampler.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (zero pool/strata, bad ε).
    pub fn new(cfg: StratifiedConfig) -> Result<Self, StatsError> {
        Ok(StratifiedSampler {
            state: TwoPhaseState::new(cfg)?,
            stage: 0,
        })
    }
}

impl Sampler for StratifiedSampler {
    fn name(&self) -> &'static str {
        "stratified"
    }

    fn next_phase(&mut self) -> Result<SamplerPhase, StatsError> {
        match self.stage {
            0 => {
                self.stage = 1;
                Ok(SamplerPhase::Measure(self.state.issue_pilot()?))
            }
            1 => {
                self.stage = 2;
                self.state.build_strata()?;
                let est = self.state.estimator()?;
                let spreads = self.state.spreads(&est);
                let cfg = &self.state.cfg;
                // Total n for the target, from pilot spreads: the
                // Neyman-optimal variance at total n is (Σ W_h·s_h)²/n,
                // so n = (z·Σ W_h·s_h / (ε·μ̂))².
                let mean = est.mean();
                if mean == 0.0 {
                    self.state.stop = Some(StopReason::BudgetSpent);
                    return Ok(SamplerPhase::Done);
                }
                let pool = cfg.pool as f64;
                let weighted_spread: f64 =
                    spreads.iter().map(|&(n_h, s)| n_h as f64 / pool * s).sum();
                let z = cfg.confidence.z();
                // The 1.5× margin covers the sampling error of the
                // pilot's spread estimates themselves (s_h from a
                // handful of draws is noisy and, post-clustering,
                // biased low): undersizing means an honest but failed
                // run, oversizing only costs a few units.
                let ideal = 1.5 * (z * weighted_spread / (cfg.epsilon * mean.abs())).powi(2);
                let measured = est.sample_size();
                // Clustering the pilot biases its within-stratum spreads
                // low (the cut points were chosen to minimise exactly
                // that), so phase 2 always draws a confirmation sample of
                // at least half the pilot: fresh units re-estimate the
                // spreads honestly and keep a lucky pilot from declaring
                // victory on its own evidence.
                let confirm = measured + measured.div_ceil(2);
                let total = (ideal.ceil() as u64)
                    .max(MIN_SAMPLE)
                    .max(confirm)
                    .min(cfg.cap());
                if total <= measured {
                    self.state.stop = Some(StopReason::TargetMet);
                    return Ok(SamplerPhase::Done);
                }
                let alloc = neyman_allocation(&spreads, total)?;
                // Subtract what the pilot already spent per stratum.
                let per_stratum: Vec<u64> = alloc
                    .iter()
                    .enumerate()
                    .map(|(h, &a)| a.saturating_sub(est.stratum_sample_size(h)))
                    .collect();
                let phase = self.state.draw_phase(&per_stratum);
                if phase.is_empty() {
                    self.state.stop = Some(StopReason::PoolExhausted);
                    return Ok(SamplerPhase::Done);
                }
                Ok(SamplerPhase::Measure(phase))
            }
            _ => {
                if self.state.stop.is_none() {
                    self.state.stop = Some(StopReason::BudgetSpent);
                }
                Ok(SamplerPhase::Done)
            }
        }
    }

    fn observe(&mut self, unit: u64, value: f64) {
        self.state.observe(unit, value);
    }

    fn estimate(&self) -> Result<SamplerEstimate, StatsError> {
        self.state.estimate(StopReason::BudgetSpent)
    }
}

/// Online adaptive sampler: after the pilot, each batch goes to the
/// strata with the largest Neyman deficit under the currently measured
/// spreads (variance-greedy), and sampling stops at the first
/// batch boundary where the running stratified CI meets the
/// `(±ε, confidence)` target (never before [`MIN_SAMPLE`] units).
///
/// Stopping decisions happen only at deterministic batch boundaries
/// over a seeded unit sequence, so the measured set — and therefore the
/// estimate — is bit-reproducible at any measurement parallelism.
#[derive(Debug)]
pub struct AdaptiveSampler {
    state: TwoPhaseState,
    batch: u64,
    started: bool,
    /// Consecutive batch boundaries at which the running interval met
    /// the target; a stop needs two in a row.
    met_streak: u8,
}

impl AdaptiveSampler {
    /// Creates the sampler with the given per-round batch size
    /// (0 selects [`DEFAULT_BATCH`]).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (zero pool/strata, bad ε).
    pub fn new(cfg: StratifiedConfig, batch: u64) -> Result<Self, StatsError> {
        Ok(AdaptiveSampler {
            state: TwoPhaseState::new(cfg)?,
            batch: if batch == 0 { DEFAULT_BATCH } else { batch },
            started: false,
            met_streak: 0,
        })
    }
}

impl Sampler for AdaptiveSampler {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn next_phase(&mut self) -> Result<SamplerPhase, StatsError> {
        if !self.started {
            self.started = true;
            return Ok(SamplerPhase::Measure(self.state.issue_pilot()?));
        }
        if self.state.stop.is_some() {
            return Ok(SamplerPhase::Done);
        }
        if self.state.strata.is_none() {
            self.state.build_strata()?;
        }
        let est = self.state.estimator()?;
        let n = est.sample_size();
        // No stop on pilot-only evidence (`rounds >= 2`): the clustered
        // pilot's within-stratum spreads are biased low. And a single
        // under-the-target check can be a transient dip of an
        // underestimated variance, so a stop takes two *consecutive*
        // batch boundaries meeting the target — the second batch's
        // fresh units either confirm the interval or widen it.
        if n >= MIN_SAMPLE
            && self.state.rounds >= 2
            && est.meets(self.state.cfg.epsilon, self.state.cfg.confidence)?
        {
            if self.met_streak >= 1 {
                self.state.stop = Some(StopReason::TargetMet);
                return Ok(SamplerPhase::Done);
            }
            self.met_streak += 1;
        } else {
            self.met_streak = 0;
        }
        let cap = self.state.cfg.cap();
        if n >= cap {
            self.state.stop = Some(if cap == self.state.cfg.pool {
                StopReason::PoolExhausted
            } else {
                StopReason::CapReached
            });
            return Ok(SamplerPhase::Done);
        }
        let batch = self.batch.min(cap - n);

        // Variance-greedy allocation: aim the batch at the strata whose
        // measured share falls shortest of the Neyman share at n+batch.
        let spreads = self.state.spreads(&est);
        let target = neyman_allocation(&spreads, n + batch)?;
        let mut deficits: Vec<(usize, u64)> = target
            .iter()
            .enumerate()
            .map(|(h, &t)| (h, t.saturating_sub(est.stratum_sample_size(h))))
            .collect();
        let deficit_sum: u64 = deficits.iter().map(|&(_, d)| d).sum();
        if deficit_sum == 0 {
            // Already at the Neyman shape everywhere — spread the batch
            // proportionally to stratum size instead.
            for (h, d) in deficits.iter_mut() {
                *d = spreads[*h].0;
            }
        }
        let weight_sum: u64 = deficits.iter().map(|&(_, d)| d).sum::<u64>().max(1);
        let mut per_stratum = vec![0u64; spreads.len()];
        let mut assigned = 0u64;
        // Largest deficit first; remainders round-robin in that order.
        deficits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(h, d) in &deficits {
            let share = batch * d / weight_sum;
            per_stratum[h] = share;
            assigned += share;
        }
        let mut at = 0;
        while assigned < batch && !deficits.is_empty() {
            let (h, _) = deficits[at % deficits.len()];
            per_stratum[h] += 1;
            assigned += 1;
            at += 1;
        }

        let phase = self.state.draw_phase(&per_stratum);
        if phase.is_empty() {
            // Greedy targets were saturated; fall back to anything left.
            let everywhere = vec![batch; spreads.len()];
            let phase = self.state.draw_phase(&everywhere);
            if phase.is_empty() {
                self.state.stop = Some(StopReason::PoolExhausted);
                return Ok(SamplerPhase::Done);
            }
            return Ok(SamplerPhase::Measure(phase));
        }
        Ok(SamplerPhase::Measure(phase))
    }

    fn observe(&mut self, unit: u64, value: f64) {
        self.state.observe(unit, value);
    }

    fn estimate(&self) -> Result<SamplerEstimate, StatsError> {
        self.state.estimate(StopReason::BudgetSpent)
    }
}

/// Runs a sampler to completion against a value oracle — the offline
/// harness used by property tests and the CI-efficiency bench, and the
/// reference semantics for the execution-layer drivers: phases are
/// measured atomically and observations are fed back in ascending unit
/// order.
///
/// # Errors
///
/// Propagates sampler errors.
pub fn drive_sampler(
    sampler: &mut dyn Sampler,
    mut value_of: impl FnMut(u64) -> f64,
) -> Result<SamplerEstimate, StatsError> {
    loop {
        match sampler.next_phase()? {
            SamplerPhase::Measure(units) => {
                for unit in units {
                    let value = value_of(unit);
                    sampler.observe(unit, value);
                }
            }
            SamplerPhase::Done => return sampler.estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-phase population: CPI ≈ 1 in the first 70%,
    /// CPI ≈ 3 with more spread in the last 30% — the structure
    /// stratification exists to exploit.
    fn phased_population(pool: u64, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..pool)
            .map(|u| {
                if u < pool * 7 / 10 {
                    1.0 + 0.05 * rng.next_f64()
                } else {
                    3.0 + 0.8 * rng.next_f64()
                }
            })
            .collect()
    }

    fn truth(values: &[f64]) -> f64 {
        values.iter().sum::<f64>() / values.len() as f64
    }

    #[test]
    fn systematic_sampler_measures_evenly_and_estimates() {
        let pop = phased_population(1000, 7);
        let mut sampler =
            SystematicSampler::new(1000, 100, 0, 0.03, Confidence::NINETY_FIVE).unwrap();
        let est = drive_sampler(&mut sampler, |u| pop[u as usize]).unwrap();
        assert_eq!(est.n, 100);
        assert_eq!(est.strata, 1);
        assert!((est.mean - truth(&pop)).abs() / truth(&pop) < 0.2);
    }

    #[test]
    fn stratified_sampler_is_seed_deterministic() {
        let pop = phased_population(2000, 11);
        let cfg = StratifiedConfig::for_pool(2000, 0.03, Confidence::THREE_SIGMA, 42);
        let run = |cfg| {
            let mut s = StratifiedSampler::new(cfg).unwrap();
            drive_sampler(&mut s, |u| pop[u as usize]).unwrap()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same seed must reproduce the exact estimate");
        let c = run(StratifiedConfig { seed: 43, ..cfg });
        // A different seed shifts the pilot/draws; the estimate almost
        // surely differs in some bit.
        assert!(a.mean.to_bits() != c.mean.to_bits() || a.n != c.n);
    }

    #[test]
    fn stratified_sampler_beats_systematic_on_phased_population() {
        let pop = phased_population(4000, 3);
        let t = truth(&pop);
        let conf = Confidence::THREE_SIGMA;

        // Matched systematic cost: n from the true population CV.
        let mut all = RunningStats::new();
        for &v in &pop {
            all.push(v);
        }
        let n_sys =
            crate::required_sample_size(all.coefficient_of_variation(), 0.03, conf).unwrap();

        let cfg = StratifiedConfig::for_pool(4000, 0.03, conf, 9);
        let mut sampler = StratifiedSampler::new(cfg).unwrap();
        let est = drive_sampler(&mut sampler, |u| pop[u as usize]).unwrap();
        assert!(est.target_met, "stratified run missed its target: {est:?}");
        assert!((est.mean - t).abs() / t <= 0.03, "estimate off: {est:?}");
        assert!(
            (est.n as f64) < 0.7 * n_sys as f64,
            "stratified n {} not 30% below systematic n {}",
            est.n,
            n_sys
        );
    }

    #[test]
    fn adaptive_sampler_stops_at_target_and_is_deterministic() {
        let pop = phased_population(4000, 5);
        let t = truth(&pop);
        let conf = Confidence::THREE_SIGMA;
        let cfg = StratifiedConfig::for_pool(4000, 0.03, conf, 17);
        let run = || {
            let mut s = AdaptiveSampler::new(cfg, 0).unwrap();
            drive_sampler(&mut s, |u| pop[u as usize]).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "adaptive runs must be seed-deterministic");
        assert_eq!(a.stop, StopReason::TargetMet);
        assert!(a.target_met);
        assert!(a.n >= MIN_SAMPLE);
        assert!((a.mean - t).abs() / t <= 0.05, "estimate off: {a:?}");
        // Stopping means it spent fewer units than the matched
        // systematic budget on this strongly phased population.
        let mut all = RunningStats::new();
        for &v in &pop {
            all.push(v);
        }
        let n_sys =
            crate::required_sample_size(all.coefficient_of_variation(), 0.03, conf).unwrap();
        assert!(a.n < n_sys, "adaptive n {} vs systematic {}", a.n, n_sys);
    }

    #[test]
    fn adaptive_sampler_exhausts_tiny_pools_gracefully() {
        let pop: Vec<f64> = (0..40).map(|u| 1.0 + (u % 13) as f64).collect();
        let cfg = StratifiedConfig {
            pool: 40,
            pilot: 10,
            strata: 3,
            epsilon: 0.001, // unreachable target
            confidence: Confidence::THREE_SIGMA,
            seed: 1,
            max_units: None,
        };
        let mut s = AdaptiveSampler::new(cfg, 8).unwrap();
        let est = drive_sampler(&mut s, |u| pop[u as usize]).unwrap();
        // A census leaves no sampling error: the finite-population
        // correction collapses the interval to zero width, so even the
        // "unreachable" target is met at n = pool. The two-in-a-row
        // stopping rule wants one more confirming batch, but the pool
        // runs out first — hence `PoolExhausted` with the target met.
        assert_eq!(est.stop, StopReason::PoolExhausted);
        assert!(est.target_met);
        assert_eq!(est.n, 40, "every unit measured");
        assert_eq!(est.half_width, 0.0);
        let exact = truth(&pop);
        assert!((est.mean - exact).abs() < 1e-9, "census must be exact");
    }

    #[test]
    fn adaptive_cap_is_respected() {
        let pop = phased_population(2000, 23);
        let cfg = StratifiedConfig {
            max_units: Some(64),
            epsilon: 1e-6,
            ..StratifiedConfig::for_pool(2000, 0.03, Confidence::THREE_SIGMA, 23)
        };
        let mut s = AdaptiveSampler::new(cfg, 16).unwrap();
        let est = drive_sampler(&mut s, |u| pop[u as usize]).unwrap();
        assert_eq!(est.stop, StopReason::CapReached);
        assert!(est.n <= 64);
    }

    #[test]
    fn samplers_never_reissue_units() {
        let pop = phased_population(500, 2);
        let cfg = StratifiedConfig::for_pool(500, 0.01, Confidence::NINETY_FIVE, 3);
        for sampler in [
            Box::new(StratifiedSampler::new(cfg).unwrap()) as Box<dyn Sampler>,
            Box::new(AdaptiveSampler::new(cfg, 16).unwrap()) as Box<dyn Sampler>,
        ] {
            let mut sampler = sampler;
            let mut seen = BTreeSet::new();
            while let SamplerPhase::Measure(units) = sampler.next_phase().unwrap() {
                for unit in units {
                    assert!(seen.insert(unit), "unit {unit} reissued");
                    assert!(unit < 500);
                    sampler.observe(unit, pop[unit as usize]);
                }
            }
        }
    }

    #[test]
    fn bad_configurations_are_rejected() {
        let conf = Confidence::NINETY_FIVE;
        assert!(SystematicSampler::new(0, 10, 0, 0.03, conf).is_err());
        assert!(SystematicSampler::new(100, 10, 0, 0.0, conf).is_err());
        let bad = StratifiedConfig {
            pool: 0,
            ..StratifiedConfig::for_pool(1, 0.03, conf, 0)
        };
        assert!(StratifiedSampler::new(bad).is_err());
        let bad_eps = StratifiedConfig {
            epsilon: -1.0,
            ..StratifiedConfig::for_pool(100, 0.03, conf, 0)
        };
        assert!(AdaptiveSampler::new(bad_eps, 0).is_err());
    }

    #[test]
    fn estimate_before_observation_is_an_error() {
        let cfg = StratifiedConfig::for_pool(100, 0.03, Confidence::NINETY_FIVE, 0);
        let sampler = StratifiedSampler::new(cfg).unwrap();
        assert!(sampler.estimate().is_err());
    }

    #[test]
    fn splitmix_is_reproducible_and_spread() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
        assert_eq!(SplitMix64::new(1).below(0), 0);
    }
}

use crate::{RunningStats, StatsError};
use std::fmt;

/// A confidence level `(1 − α)` for interval estimation.
///
/// The paper works with the two conventional levels: 95% and 99.7%
/// (the "3σ, virtually certain" level). Arbitrary levels in `(0, 1)` are
/// supported; the corresponding standard-normal quantile `z` is computed
/// with the Acklam inverse-CDF approximation (relative error < 1.15e-9).
///
/// # Examples
///
/// ```
/// use smarts_stats::Confidence;
///
/// assert!((Confidence::NINETY_FIVE.z() - 1.96).abs() < 0.01);
/// assert!((Confidence::THREE_SIGMA.z() - 3.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence {
    level: f64,
}

impl Confidence {
    /// The 95% confidence level (z ≈ 1.96; the paper rounds to 1.97).
    pub const NINETY_FIVE: Confidence = Confidence { level: 0.95 };

    /// The 99.7% "virtually certain" 3σ level (z ≈ 3.0).
    pub const THREE_SIGMA: Confidence = Confidence { level: 0.9973 };

    /// Creates a confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidConfidenceLevel`] unless
    /// `0 < level < 1`.
    pub fn new(level: f64) -> Result<Self, StatsError> {
        if level.is_finite() && level > 0.0 && level < 1.0 {
            Ok(Confidence { level })
        } else {
            Err(StatsError::InvalidConfidenceLevel(level))
        }
    }

    /// The confidence level `(1 − α)` as a fraction in `(0, 1)`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The `100·(1 − α/2)` percentile of the standard normal distribution.
    pub fn z(&self) -> f64 {
        let alpha = 1.0 - self.level;
        inverse_normal_cdf(1.0 - alpha / 2.0)
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}%", self.level * 100.0)
    }
}

/// Inverse CDF of the standard normal distribution (Acklam's algorithm).
///
/// Accurate to about 1.15e-9 relative error over the full open interval.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Half-width of the confidence interval around a sample mean, in absolute
/// units of the metric: `±(z·V/√n)·mean`.
///
/// # Errors
///
/// Returns an error if `cv` is not finite/non-negative or `n` is zero.
///
/// # Examples
///
/// ```
/// use smarts_stats::{confidence_interval, Confidence};
///
/// # fn main() -> Result<(), smarts_stats::StatsError> {
/// let half = confidence_interval(2.0, 1.0, 10_000, Confidence::THREE_SIGMA)?;
/// assert!((half / 2.0 - 0.03).abs() < 0.001); // ±3% of the mean
/// # Ok(())
/// # }
/// ```
pub fn confidence_interval(
    mean: f64,
    cv: f64,
    n: u64,
    confidence: Confidence,
) -> Result<f64, StatsError> {
    Ok(relative_half_width(cv, n, confidence)? * mean.abs())
}

/// Relative half-width `ε = z·V/√n` such that the interval is `±ε·mean`.
///
/// # Errors
///
/// Returns an error if `cv` is not finite/non-negative or `n` is zero.
pub fn relative_half_width(cv: f64, n: u64, confidence: Confidence) -> Result<f64, StatsError> {
    if !cv.is_finite() || cv < 0.0 {
        return Err(StatsError::InvalidVariation(cv));
    }
    if n == 0 {
        return Err(StatsError::InsufficientSample {
            required: 1,
            actual: 0,
        });
    }
    Ok(confidence.z() * cv / (n as f64).sqrt())
}

/// Minimal sample size `n ≥ (z·V/ε)²` to achieve a `±ε` relative confidence
/// interval at the given confidence level.
///
/// The result is never below 30, the conventional threshold for the normal
/// approximation used throughout the paper (`n > 30`).
///
/// # Errors
///
/// Returns an error if `cv` is not finite/non-negative or `epsilon ≤ 0`.
///
/// # Examples
///
/// ```
/// use smarts_stats::{required_sample_size, Confidence};
///
/// # fn main() -> Result<(), smarts_stats::StatsError> {
/// // The paper's rule of thumb: V ≈ 1.0 at U = 1000 ⇒ n ≈ 10,000 for
/// // ±3% at 99.7% confidence.
/// let n = required_sample_size(1.0, 0.03, Confidence::THREE_SIGMA)?;
/// assert!((9_000..=11_000).contains(&n));
/// # Ok(())
/// # }
/// ```
pub fn required_sample_size(
    cv: f64,
    epsilon: f64,
    confidence: Confidence,
) -> Result<u64, StatsError> {
    if !cv.is_finite() || cv < 0.0 {
        return Err(StatsError::InvalidVariation(cv));
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(StatsError::InvalidErrorTarget(epsilon));
    }
    let n = (confidence.z() * cv / epsilon).powi(2).ceil() as u64;
    Ok(n.max(30))
}

/// Half-width of the Wald confidence interval for a population
/// *proportion* estimated by a sample fraction `p_hat` over `n` units —
/// the third population property (total, mean, proportion) Section 2's
/// sampling theory covers: `±z·√(p̂(1−p̂)/n)`.
///
/// # Errors
///
/// Returns an error when `p_hat` is outside `[0, 1]` or `n` is zero.
///
/// # Examples
///
/// ```
/// use smarts_stats::{proportion_half_width, Confidence};
///
/// # fn main() -> Result<(), smarts_stats::StatsError> {
/// // Fraction of sampling units that miss to memory, say 30% of 400.
/// let half = proportion_half_width(0.3, 400, Confidence::NINETY_FIVE)?;
/// assert!(half < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn proportion_half_width(
    p_hat: f64,
    n: u64,
    confidence: Confidence,
) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&p_hat) || !p_hat.is_finite() {
        return Err(StatsError::InvalidVariation(p_hat));
    }
    if n == 0 {
        return Err(StatsError::InsufficientSample {
            required: 1,
            actual: 0,
        });
    }
    Ok(confidence.z() * (p_hat * (1.0 - p_hat) / n as f64).sqrt())
}

/// Minimal sample size for a `±epsilon` (absolute) interval on a
/// proportion near `p_hat`: `n ≥ z²·p̂(1−p̂)/ε²`, floored at 30.
///
/// # Errors
///
/// Returns an error when `p_hat` is outside `[0, 1]` or `epsilon ≤ 0`.
pub fn required_sample_size_proportion(
    p_hat: f64,
    epsilon: f64,
    confidence: Confidence,
) -> Result<u64, StatsError> {
    if !(0.0..=1.0).contains(&p_hat) || !p_hat.is_finite() {
        return Err(StatsError::InvalidVariation(p_hat));
    }
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(StatsError::InvalidErrorTarget(epsilon));
    }
    let z = confidence.z();
    let n = (z * z * p_hat * (1.0 - p_hat) / (epsilon * epsilon)).ceil() as u64;
    Ok(n.max(30))
}

/// A sample-derived mean estimate together with the dispersion information
/// needed to quantify confidence in it.
///
/// Bundles the sample mean `x̄`, the measured coefficient of variation
/// `V̂`, and the sample size `n` — everything Section 5.1's two-step
/// procedure needs: check the achieved interval, and if it is too wide,
/// compute `n_tuned` for the follow-up run.
///
/// # Examples
///
/// ```
/// use smarts_stats::{Confidence, SampleEstimate};
///
/// # fn main() -> Result<(), smarts_stats::StatsError> {
/// let est = SampleEstimate::new(1.8, 1.2, 10_000);
/// if !est.meets(0.03, Confidence::THREE_SIGMA)? {
///     let n_tuned = est.required_n(0.03, Confidence::THREE_SIGMA)?;
///     assert!(n_tuned > 10_000);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    mean: f64,
    cv: f64,
    n: u64,
}

impl SampleEstimate {
    /// Creates an estimate from a mean, coefficient of variation, and size.
    pub fn new(mean: f64, cv: f64, n: u64) -> Self {
        SampleEstimate { mean, cv, n }
    }

    /// Builds the estimate from accumulated per-unit statistics.
    pub fn from_stats(stats: &RunningStats) -> Self {
        SampleEstimate {
            mean: stats.mean(),
            cv: stats.coefficient_of_variation(),
            n: stats.count(),
        }
    }

    /// The sample mean `x̄`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The measured coefficient of variation `V̂`.
    pub fn coefficient_of_variation(&self) -> f64 {
        self.cv
    }

    /// The sample size `n`.
    pub fn sample_size(&self) -> u64 {
        self.n
    }

    /// Relative half-width `ε` achieved at the given level.
    ///
    /// # Errors
    ///
    /// Propagates argument errors from [`relative_half_width`].
    pub fn achieved_epsilon(&self, confidence: Confidence) -> Result<f64, StatsError> {
        relative_half_width(self.cv, self.n, confidence)
    }

    /// Absolute confidence interval `(lo, hi)` at the given level.
    ///
    /// # Errors
    ///
    /// Propagates argument errors from [`confidence_interval`].
    pub fn interval(&self, confidence: Confidence) -> Result<(f64, f64), StatsError> {
        let half = confidence_interval(self.mean, self.cv, self.n, confidence)?;
        Ok((self.mean - half, self.mean + half))
    }

    /// Whether the sample already achieves a `±epsilon` interval.
    ///
    /// # Errors
    ///
    /// Propagates argument errors from [`relative_half_width`].
    pub fn meets(&self, epsilon: f64, confidence: Confidence) -> Result<bool, StatsError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(StatsError::InvalidErrorTarget(epsilon));
        }
        Ok(self.achieved_epsilon(confidence)? <= epsilon)
    }

    /// The tuned sample size `n_tuned = (z·V̂/ε)²` for a follow-up run.
    ///
    /// # Errors
    ///
    /// Propagates argument errors from [`required_sample_size`].
    pub fn required_n(&self, epsilon: f64, confidence: Confidence) -> Result<u64, StatsError> {
        required_sample_size(self.cv, epsilon, confidence)
    }
}

impl fmt::Display for SampleEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mean={:.6} V̂={:.4} n={}", self.mean, self.cv, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_standard_tables() {
        assert!((Confidence::NINETY_FIVE.z() - 1.959964).abs() < 1e-4);
        assert!((Confidence::THREE_SIGMA.z() - 2.9997).abs() < 2e-3);
        assert!((Confidence::new(0.90).unwrap().z() - 1.644854).abs() < 1e-4);
        assert!((Confidence::new(0.99).unwrap().z() - 2.575829).abs() < 1e-4);
    }

    #[test]
    fn inverse_cdf_tails_are_symmetric() {
        for p in [0.001, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetric at p={p}: {lo} vs {hi}");
        }
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_levels_rejected() {
        for level in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            assert!(Confidence::new(level).is_err());
        }
    }

    #[test]
    fn paper_rule_of_thumb_n_init() {
        // V ≈ 1.0, ±3%, 99.7% ⇒ n ≈ (3/0.03)² = 10,000.
        let n = required_sample_size(1.0, 0.03, Confidence::THREE_SIGMA).unwrap();
        assert!((9_900..=10_100).contains(&n), "n = {n}");
    }

    #[test]
    fn sample_size_scales_with_cv_squared() {
        let n1 = required_sample_size(1.0, 0.03, Confidence::THREE_SIGMA).unwrap();
        let n2 = required_sample_size(2.0, 0.03, Confidence::THREE_SIGMA).unwrap();
        let ratio = n2 as f64 / n1 as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn sample_size_has_normal_approximation_floor() {
        let n = required_sample_size(0.001, 0.5, Confidence::NINETY_FIVE).unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn zero_cv_needs_only_the_floor() {
        let n = required_sample_size(0.0, 0.03, Confidence::THREE_SIGMA).unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn interval_shrinks_with_sqrt_n() {
        let e1 = relative_half_width(1.0, 100, Confidence::NINETY_FIVE).unwrap();
        let e2 = relative_half_width(1.0, 10_000, Confidence::NINETY_FIVE).unwrap();
        assert!((e1 / e2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_round_trip_through_required_n() {
        let est = SampleEstimate::new(1.5, 1.3, 10_000);
        let conf = Confidence::THREE_SIGMA;
        assert!(!est.meets(0.03, conf).unwrap());
        let n_tuned = est.required_n(0.03, conf).unwrap();
        let retry = SampleEstimate::new(1.5, 1.3, n_tuned);
        assert!(retry.meets(0.0301, conf).unwrap());
    }

    #[test]
    fn interval_brackets_mean() {
        let est = SampleEstimate::new(2.0, 0.8, 400);
        let (lo, hi) = est.interval(Confidence::NINETY_FIVE).unwrap();
        assert!(lo < 2.0 && 2.0 < hi);
        assert!(
            (hi - 2.0 - (2.0 - lo)).abs() < 1e-12,
            "interval is symmetric"
        );
    }

    #[test]
    fn proportion_interval_behaves() {
        // Widest at p = 0.5, zero at the extremes, shrinks with √n.
        let conf = Confidence::NINETY_FIVE;
        let mid = proportion_half_width(0.5, 100, conf).unwrap();
        let edge = proportion_half_width(0.05, 100, conf).unwrap();
        assert!(mid > edge);
        assert_eq!(proportion_half_width(0.0, 100, conf).unwrap(), 0.0);
        let big = proportion_half_width(0.5, 10_000, conf).unwrap();
        assert!((mid / big - 10.0).abs() < 1e-9);
        assert!(proportion_half_width(1.5, 10, conf).is_err());
        assert!(proportion_half_width(0.5, 0, conf).is_err());
    }

    #[test]
    fn proportion_sizing_achieves_target() {
        let conf = Confidence::THREE_SIGMA;
        let n = required_sample_size_proportion(0.3, 0.02, conf).unwrap();
        let achieved = proportion_half_width(0.3, n, conf).unwrap();
        assert!(
            achieved <= 0.02 * (1.0 + 1e-9),
            "achieved {achieved} at n={n}"
        );
        assert_eq!(required_sample_size_proportion(0.0, 0.1, conf).unwrap(), 30);
        assert!(required_sample_size_proportion(0.3, 0.0, conf).is_err());
    }

    #[test]
    fn errors_on_bad_arguments() {
        assert!(relative_half_width(f64::NAN, 10, Confidence::NINETY_FIVE).is_err());
        assert!(relative_half_width(1.0, 0, Confidence::NINETY_FIVE).is_err());
        assert!(required_sample_size(1.0, 0.0, Confidence::NINETY_FIVE).is_err());
        assert!(required_sample_size(-1.0, 0.1, Confidence::NINETY_FIVE).is_err());
        let est = SampleEstimate::new(1.0, 1.0, 100);
        assert!(est.meets(-0.5, Confidence::NINETY_FIVE).is_err());
    }
}

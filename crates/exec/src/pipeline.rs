//! The streamed checkpoint pipeline: one producer thread runs the
//! in-order functional-warming pass and emits each unit's checkpoint
//! into a bounded channel the moment its boundary is reached; `jobs`
//! consumer workers pull checkpoints and replay them concurrently.
//!
//! Compared with [`crate::ParallelMode::Checkpoint`], which materialises
//! the whole library before any replay starts, the pipeline overlaps the
//! two phases — wall time tends to `max(T_warm, T_detail/jobs)` instead
//! of `T_warm + T_detail/jobs` — and bounds peak checkpoint residency by
//! the channel depth plus in-flight replays instead of O(n units).
//!
//! # Channel protocol
//!
//! The channel is a hand-rolled bounded MPMC queue (`Mutex<VecDeque>` +
//! two condvars; the standard library's `sync_channel` cannot observe
//! consumer death from the sending side):
//!
//! * `send` blocks while the queue is at capacity and returns `false`
//!   once every consumer has left — the producer's signal to stop
//!   warming early instead of deadlocking against a dead pool,
//! * `recv` blocks while the queue is empty and returns `None` once the
//!   producer has closed — the consumers' termination signal,
//! * both the close (producer side) and the leave (consumer side) are
//!   drop guards, so they fire even when a thread unwinds.
//!
//! # Bit-identity
//!
//! The producer runs [`smarts_core::SmartsSim::stream_checkpoints`] —
//! the exact loop `build_library` uses — and consumers run
//! [`smarts_core::SmartsSim::replay_checkpoint`] — the exact per-unit
//! episode `sample_library` uses. Units are mutually independent given
//! their checkpoints, and the merge reduces them in stream order, so the
//! report is bit-identical to sequential replay at any `jobs`/`depth`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::cancel::{CancelToken, PipelineProgress, ProgressFn};
use crate::error::ExecError;
use crate::executor::{
    merge_outcomes, Executor, ParallelMode, ParallelReport, PipelineStats, WorkerStats,
};
use crate::pool::panic_message;
use smarts_core::{
    ModeInstructions, SampleReport, SamplingParams, SmartsError, SmartsSim, UnitCheckpoint,
    UnitReplay,
};
use smarts_isa::Isa;
use smarts_workloads::Benchmark;

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
    consumers: usize,
}

/// A bounded multi-consumer channel whose `send` can observe consumer
/// death (returning `false`) and whose `recv` can observe producer
/// completion (returning `None`).
struct Channel<T> {
    capacity: usize,
    state: Mutex<ChannelState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Channel<T> {
    fn new(capacity: usize, consumers: usize) -> Self {
        Channel {
            capacity,
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                consumers,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the queue is at capacity; delivers `item` and
    /// returns `true`, or drops it and returns `false` once every
    /// consumer has left.
    fn send(&self, item: T) -> bool {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.consumers == 0 {
                return false;
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(item);
                self.not_empty.notify_one();
                return true;
            }
            state = self.not_full.wait(state).unwrap();
        }
    }

    /// Blocks while the queue is empty; returns `None` once the producer
    /// has closed and the queue has drained.
    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.not_empty.notify_all();
    }

    fn leave(&self) {
        let mut state = self.state.lock().unwrap();
        state.consumers -= 1;
        self.not_full.notify_all();
    }
}

/// Closes the channel when dropped — fires even if the producer unwinds,
/// so consumers never block on a stream that will not resume.
struct CloseOnDrop<'a, T>(&'a Channel<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Deregisters one consumer when dropped — fires even if the consumer
/// unwinds, so the producer never blocks sending to a dead pool.
struct LeaveOnDrop<'a, T>(&'a Channel<T>);

impl<T> Drop for LeaveOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.leave();
    }
}

/// Live-checkpoint accounting: current and peak counts/bytes across
/// every thread touching checkpoints (pipeline producer/consumers, or
/// the lazy store-replay workers). Per-checkpoint byte footprints do
/// not discount copy-on-write sharing between live checkpoints, so the
/// peaks are upper bounds.
#[derive(Default)]
pub(crate) struct Residency {
    count: AtomicUsize,
    bytes: AtomicU64,
    pub(crate) peak_count: AtomicUsize,
    pub(crate) peak_bytes: AtomicU64,
}

impl Residency {
    pub(crate) fn add(&self, bytes: u64) {
        let count = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_count.fetch_max(count, Ordering::Relaxed);
        let total = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(total, Ordering::Relaxed);
    }

    pub(crate) fn remove(&self, bytes: u64) {
        self.count.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

struct ConsumerOutput {
    stats: WorkerStats,
    outcomes: Vec<(usize, UnitReplay)>,
}

/// Everything one pipeline run produced, before the deterministic merge:
/// whatever the producer returned, per-worker accounting, the indexed
/// replay outcomes, and the residency peaks.
pub(crate) struct PipelineRun<S> {
    pub produced: S,
    pub workers: Vec<WorkerStats>,
    pub outcomes: Vec<(usize, UnitReplay)>,
    pub parallel_wall: Duration,
    pub peak_resident_checkpoints: usize,
    pub peak_resident_bytes: u64,
}

impl<S> PipelineRun<S> {
    /// Splits off the producer's return value so the rest of the run can
    /// flow into [`finish_pipeline_report`] without a partial move.
    pub fn split(self) -> (S, PipelineRun<()>) {
        let PipelineRun {
            produced,
            workers,
            outcomes,
            parallel_wall,
            peak_resident_checkpoints,
            peak_resident_bytes,
        } = self;
        (
            produced,
            PipelineRun {
                produced: (),
                workers,
                outcomes,
                parallel_wall,
                peak_resident_checkpoints,
                peak_resident_bytes,
            },
        )
    }
}

/// Cancellation and progress hooks one pipeline run honors, bundled by
/// [`Executor::control`](crate::Executor). The producer polls `cancel`
/// before emitting each checkpoint; both sides push
/// [`PipelineProgress`] snapshots to `progress` when set.
pub(crate) struct RunControl {
    pub(crate) cancel: CancelToken,
    pub(crate) progress: Option<ProgressFn>,
}

/// Shared emit/replay counters behind the progress observer.
#[derive(Default)]
struct ProgressCounters {
    emitted: AtomicU64,
    replayed: AtomicU64,
}

impl ProgressCounters {
    fn snapshot(&self) -> PipelineProgress {
        PipelineProgress {
            emitted: self.emitted.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
        }
    }
}

/// The producer/consumer engine shared by every checkpoint source: live
/// warming ([`sample_pipeline`]), warm-and-persist, and replay-from-disk
/// (`crate::persist`). `produce` is handed an `emit` callback (returning
/// `false` once every consumer has left *or* cancellation was requested)
/// and runs on its own thread; `replay` runs on each of the `jobs`
/// consumer threads.
///
/// Cancellation stops the stream at the next unit boundary; consumers
/// still drain whatever was already queued, so a cancelled run returns
/// `Ok` with partial outcomes and the *caller* decides whether partial
/// state is worth flushing before surfacing
/// [`ExecError::Cancelled`](crate::ExecError::Cancelled).
pub(crate) fn run_pipeline<I, S, P, R>(
    jobs: usize,
    depth: usize,
    control: &RunControl,
    produce: P,
    replay: R,
) -> Result<PipelineRun<S>, ExecError>
where
    I: Isa,
    S: Send,
    P: FnOnce(&mut dyn FnMut(UnitCheckpoint<I>) -> bool) -> S + Send,
    R: Fn(&UnitCheckpoint<I>) -> UnitReplay + Sync,
{
    let channel: Channel<(usize, u64, UnitCheckpoint<I>)> = Channel::new(depth, jobs);
    let residency = Residency::default();
    let counters = ProgressCounters::default();
    let t0 = Instant::now();

    let (producer_result, consumer_results) = thread::scope(|scope| {
        let channel = &channel;
        let residency = &residency;
        let replay = &replay;
        let counters = &counters;
        let cancel = &control.cancel;
        let progress = control.progress.as_deref();

        let producer = scope.spawn(move || {
            let _close = CloseOnDrop(channel);
            let mut next_index = 0usize;
            let mut emit = |checkpoint: UnitCheckpoint<I>| {
                if cancel.is_cancelled() {
                    return false;
                }
                let bytes = checkpoint.approx_resident_bytes();
                residency.add(bytes);
                let index = next_index;
                next_index += 1;
                if channel.send((index, bytes, checkpoint)) {
                    counters.emitted.fetch_add(1, Ordering::Relaxed);
                    if let Some(observe) = progress {
                        observe(counters.snapshot());
                    }
                    true
                } else {
                    residency.remove(bytes);
                    false
                }
            };
            produce(&mut emit)
        });

        let consumers: Vec<_> = (0..jobs)
            .map(|worker| {
                scope.spawn(move || {
                    let _leave = LeaveOnDrop(channel);
                    let start = Instant::now();
                    let mut outcomes = Vec::new();
                    let mut instructions = ModeInstructions::default();
                    while let Some((index, bytes, checkpoint)) = channel.recv() {
                        let outcome = replay(&checkpoint);
                        drop(checkpoint);
                        residency.remove(bytes);
                        outcome.account(&mut instructions);
                        outcomes.push((index, outcome));
                        counters.replayed.fetch_add(1, Ordering::Relaxed);
                        if let Some(observe) = progress {
                            observe(counters.snapshot());
                        }
                    }
                    ConsumerOutput {
                        stats: WorkerStats {
                            worker,
                            units: outcomes.len() as u64,
                            wall: start.elapsed(),
                            instructions,
                        },
                        outcomes,
                    }
                })
            })
            .collect();

        let consumer_results: Vec<_> = consumers
            .into_iter()
            .enumerate()
            .map(|(worker, handle)| {
                handle.join().map_err(|payload| ExecError::WorkerPanic {
                    worker,
                    message: panic_message(payload),
                })
            })
            .collect();
        // The producer is reported as worker `jobs`, past the consumers.
        let producer_result = producer.join().map_err(|payload| ExecError::WorkerPanic {
            worker: jobs,
            message: panic_message(payload),
        });
        (producer_result, consumer_results)
    });
    let parallel_wall = t0.elapsed();

    // Consumer panics take precedence: they are the usual root cause of a
    // producer that reports a stopped stream.
    let mut workers = Vec::with_capacity(jobs);
    let mut outcomes: Vec<(usize, UnitReplay)> = Vec::new();
    for result in consumer_results {
        let output = result?;
        workers.push(output.stats);
        outcomes.extend(output.outcomes);
    }
    let produced = producer_result?;

    Ok(PipelineRun {
        produced,
        workers,
        outcomes,
        parallel_wall,
        peak_resident_checkpoints: residency.peak_count.load(Ordering::Relaxed),
        peak_resident_bytes: residency.peak_bytes.load(Ordering::Relaxed),
    })
}

/// Merges one [`PipelineRun`] into the final [`ParallelReport`] — the
/// deterministic stream-order reduction shared by every pipeline-shaped
/// mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_pipeline_report<S>(
    run: PipelineRun<S>,
    params: &SamplingParams,
    jobs: usize,
    depth: usize,
    producer_wall: Duration,
    emitted: u64,
    mode: ParallelMode,
    shard: Option<crate::ShardWarmStats>,
) -> Result<ParallelReport, ExecError> {
    let (units, instructions) = merge_outcomes(run.outcomes);
    if units.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let report = SampleReport::from_units(
        *params,
        units,
        instructions,
        Duration::ZERO,
        run.parallel_wall,
    );
    Ok(ParallelReport {
        report,
        mode,
        jobs,
        workers: run.workers,
        build_wall: Duration::ZERO,
        parallel_wall: run.parallel_wall,
        pipeline: Some(PipelineStats {
            depth,
            producer_wall,
            emitted,
            peak_resident_checkpoints: run.peak_resident_checkpoints,
            peak_resident_bytes: run.peak_resident_bytes,
        }),
        shard,
    })
}

/// Runs one pipelined sampling simulation: producer thread warming and
/// emitting, `jobs` consumer threads replaying, deterministic merge.
pub(crate) fn sample_pipeline(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Result<ParallelReport, ExecError> {
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let loaded = bench.load();
    let program = loaded.program.clone();

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        move |emit| sim.stream_checkpoints(loaded, params, emit),
        |checkpoint| sim.replay_checkpoint(&program, params, checkpoint),
    )?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let (summary, run) = run.split();
    let summary = summary.map_err(ExecError::Smarts)?;
    finish_pipeline_report(
        run,
        params,
        jobs,
        depth,
        summary.build_wall,
        summary.emitted,
        ParallelMode::Pipeline,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_core::Warming;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    #[test]
    fn channel_delivers_in_order_then_closes() {
        let channel: Channel<u32> = Channel::new(4, 1);
        assert!(channel.send(1));
        assert!(channel.send(2));
        assert!(channel.send(3));
        channel.close();
        assert_eq!(channel.recv(), Some(1));
        assert_eq!(channel.recv(), Some(2));
        assert_eq!(channel.recv(), Some(3));
        assert_eq!(channel.recv(), None);
        assert_eq!(channel.recv(), None);
    }

    #[test]
    fn channel_send_fails_once_consumers_leave() {
        let channel: Channel<u32> = Channel::new(2, 2);
        channel.leave();
        assert!(channel.send(7), "one consumer still registered");
        channel.leave();
        assert!(!channel.send(8), "no consumers left");
    }

    #[test]
    fn channel_blocks_at_capacity_until_drained() {
        let channel: Channel<u32> = Channel::new(1, 1);
        thread::scope(|scope| {
            scope.spawn(|| {
                // The second send must block until the main thread
                // receives the first item.
                assert!(channel.send(10));
                assert!(channel.send(20));
                channel.close();
            });
            assert_eq!(channel.recv(), Some(10));
            assert_eq!(channel.recv(), Some(20));
            assert_eq!(channel.recv(), None);
        });
    }

    #[test]
    fn channel_unblocks_a_full_send_when_consumers_die() {
        let channel: Channel<u32> = Channel::new(1, 1);
        thread::scope(|scope| {
            let sender = scope.spawn(|| {
                assert!(channel.send(1));
                // Fills the queue; blocks until the consumer leaves,
                // then reports failure instead of deadlocking.
                channel.send(2)
            });
            // Wait for the first send to land before the consumer dies,
            // so the sender is full (or about to block) when it does.
            while channel.state.lock().unwrap().queue.is_empty() {
                thread::yield_now();
            }
            let guard = LeaveOnDrop(&channel);
            drop(guard);
            assert!(!sender.join().unwrap());
        });
    }

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    fn design(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 1)
            .unwrap()
    }

    #[test]
    fn pipeline_is_bit_identical_to_sequential_replay() {
        let sim = sim();
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let params = design(&bench, 8);
        let library = sim.build_library(&bench, &params).unwrap();
        let sequential = sim.sample_library(&library).unwrap();
        for (jobs, depth) in [(1, 1), (2, 4), (3, 2)] {
            let outcome = Executor::new(jobs)
                .unwrap()
                .with_mode(ParallelMode::Pipeline)
                .with_pipeline_depth(depth)
                .sample(&sim, &bench, &params)
                .unwrap();
            assert_eq!(outcome.report.sample_size(), sequential.sample_size());
            assert_eq!(
                outcome.report.cpi().mean().to_bits(),
                sequential.cpi().mean().to_bits(),
                "CPI differs at jobs={jobs} depth={depth}"
            );
            assert_eq!(
                outcome.report.epi().mean().to_bits(),
                sequential.epi().mean().to_bits()
            );
            assert_eq!(outcome.report.instructions, sequential.instructions);
        }
    }

    #[test]
    fn pipeline_residency_is_bounded_by_depth_plus_workers() {
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let library = sim.build_library(&bench, &params).unwrap();
        let (jobs, depth) = (2, 2);
        let outcome = Executor::new(jobs)
            .unwrap()
            .with_mode(ParallelMode::Pipeline)
            .with_pipeline_depth(depth)
            .sample(&sim, &bench, &params)
            .unwrap();
        let stats = outcome.pipeline.expect("pipeline stats present");
        assert_eq!(stats.depth, depth);
        assert_eq!(stats.emitted as usize, library.len());
        // Queued (≤ depth) + replaying (≤ jobs) + the one the producer
        // holds while offering it.
        assert!(stats.peak_resident_checkpoints <= depth + jobs + 1);
        assert!(stats.peak_resident_checkpoints >= 1);
        assert!(stats.peak_resident_bytes > 0);
        // And far below what materialising every unit's full checkpoint
        // would hold (the library itself is delta-resident now, so the
        // eager figure is reconstructed by streaming).
        let mut eager = 0u64;
        sim.stream_checkpoints(bench.load(), &params, |c| {
            eager += c.approx_resident_bytes();
            true
        })
        .unwrap();
        assert!(stats.peak_resident_bytes < eager);
        assert!(stats.producer_wall > Duration::ZERO);
        assert_eq!(outcome.build_wall, Duration::ZERO);
        assert_eq!(outcome.mode, ParallelMode::Pipeline);
        assert_eq!(outcome.workers.len(), jobs);
    }

    #[test]
    fn pre_cancelled_pipeline_reports_cancelled() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let params = design(&bench, 8);
        let token = CancelToken::new();
        token.cancel();
        let err = Executor::new(2)
            .unwrap()
            .with_mode(ParallelMode::Pipeline)
            .with_cancel(token)
            .sample(&sim, &bench, &params)
            .unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }

    #[test]
    fn mid_run_cancellation_stops_at_a_unit_boundary() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let token = CancelToken::new();
        let observer_token = token.clone();
        // Cancel from inside the progress observer after the first emit —
        // exactly how a server-side watcher would pull the plug.
        let executor = Executor::new(2)
            .unwrap()
            .with_mode(ParallelMode::Pipeline)
            .with_cancel(token)
            .with_progress(std::sync::Arc::new(move |p: PipelineProgress| {
                if p.emitted >= 1 {
                    observer_token.cancel();
                }
            }));
        let err = executor.sample(&sim, &bench, &params).unwrap_err();
        assert!(matches!(err, ExecError::Cancelled));
    }

    #[test]
    fn progress_observer_sees_every_emit_and_replay() {
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let last = std::sync::Arc::new(Mutex::new(PipelineProgress::default()));
        let sink = last.clone();
        let outcome = Executor::new(2)
            .unwrap()
            .with_mode(ParallelMode::Pipeline)
            .with_progress(std::sync::Arc::new(move |p: PipelineProgress| {
                let mut guard = sink.lock().unwrap();
                guard.emitted = guard.emitted.max(p.emitted);
                guard.replayed = guard.replayed.max(p.replayed);
            }))
            .sample(&sim, &bench, &params)
            .unwrap();
        let stats = outcome.pipeline.expect("pipeline stats present");
        let seen = *last.lock().unwrap();
        assert_eq!(seen.emitted, stats.emitted);
        assert_eq!(seen.replayed, stats.emitted, "every emitted unit replays");
    }

    #[test]
    fn pipeline_propagates_an_empty_stream() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.02);
        // A design for a stream 100× longer than the real one, phased so
        // the first unit boundary lies past the benchmark's halt.
        let params = SamplingParams::for_sample_size(
            bench.approx_len() * 100,
            1000,
            2000,
            Warming::Functional,
            10,
            0,
        )
        .unwrap();
        let params = params.with_offset(params.interval - 1).unwrap();
        let err = Executor::new(2)
            .unwrap()
            .with_mode(ParallelMode::Pipeline)
            .sample(&sim, &bench, &params)
            .unwrap_err();
        assert!(matches!(err, ExecError::Smarts(SmartsError::EmptySample)));
    }
}

//! Parallel variants of the higher-level sampling procedures: paired
//! machine comparison and the two-step confidence procedure.

use crate::error::ExecError;
use crate::executor::Executor;
use smarts_core::{PairedComparison, SamplingParams, SmartsSim, TwoStepOutcome};
use smarts_stats::Confidence;
use smarts_workloads::Benchmark;

/// Fills in a machine-specific detailed-warming length when the caller
/// left `detailed_warming` at 0, mirroring `compare_machines`.
fn with_recommended_w(sim: &SmartsSim, params: &SamplingParams) -> SamplingParams {
    if params.detailed_warming == 0 {
        SamplingParams {
            detailed_warming: sim.config().recommended_detailed_warming(),
            ..*params
        }
    } else {
        *params
    }
}

/// Samples the same systematic design on two machines — each run
/// parallelized across the executor's worker pool — and pairs the
/// per-unit measurements.
///
/// In checkpoint mode the per-machine reports are bit-identical to their
/// sequential counterparts, so the paired deltas (and significance
/// verdicts) match `compare_machines` exactly.
///
/// # Errors
///
/// As for [`Executor::sample`], plus an empty-sample error when the two
/// runs measured no common units.
pub fn compare_machines_parallel(
    executor: &Executor,
    baseline: &SmartsSim,
    alternative: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Result<PairedComparison, ExecError> {
    let a = executor.sample(baseline, bench, &with_recommended_w(baseline, params))?;
    let b = executor.sample(alternative, bench, &with_recommended_w(alternative, params))?;
    PairedComparison::from_reports(a.report, b.report).map_err(ExecError::Smarts)
}

/// The paper's two-step procedure (Section 5.1) with both runs
/// parallelized: one run at the caller's `n`; if its interval misses
/// `±epsilon` at the given confidence, a second run at the tuned `n`.
///
/// # Errors
///
/// As for [`Executor::sample`], plus invalid `epsilon`/confidence.
pub fn sample_two_step_parallel(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
    epsilon: f64,
    confidence: Confidence,
) -> Result<TwoStepOutcome, ExecError> {
    let initial = executor.sample(sim, bench, params)?.report;
    match initial
        .recommended_n(epsilon, confidence)
        .map_err(ExecError::Smarts)?
    {
        None => Ok(TwoStepOutcome {
            initial,
            tuned: None,
        }),
        Some(n_tuned) => {
            let retuned = SamplingParams::for_sample_size(
                bench.approx_len(),
                params.unit_size,
                params.detailed_warming,
                params.warming,
                n_tuned,
                0, // the tuned run's interval shrinks; restart at phase 0
            )
            .map_err(ExecError::Smarts)?;
            let tuned = executor.sample(sim, bench, &retuned)?.report;
            Ok(TwoStepOutcome {
                initial,
                tuned: Some(tuned),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_core::{compare_machines, Warming};
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn params(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 0, Warming::Functional, n, 1)
            .unwrap()
    }

    #[test]
    fn parallel_compare_matches_sequential_pairing() {
        let base = SmartsSim::new(MachineConfig::eight_way());
        let alt = SmartsSim::new(MachineConfig::sixteen_way());
        let bench = find("stream-2").unwrap().scaled(0.05);
        let p = params(&bench, 10);
        let executor = Executor::new(2).unwrap();
        let parallel = compare_machines_parallel(&executor, &base, &alt, &bench, &p).unwrap();
        let sequential = compare_machines(&base, &alt, &bench, &p).unwrap();
        assert_eq!(parallel.pairs(), sequential.pairs());
        // Checkpoint replay warms through one functional pass rather than
        // interleaved detailed episodes, so per-unit cycles can differ
        // marginally from the direct run; the paired aggregate agrees
        // closely.
        assert!((parallel.speedup() - sequential.speedup()).abs() < 0.05);
    }

    #[test]
    fn two_step_tunes_when_the_target_is_demanding() {
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("hashp-2").unwrap().scaled(0.2);
        let p = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            8,
            0,
        )
        .unwrap();
        let executor = Executor::new(2).unwrap();
        let outcome =
            sample_two_step_parallel(&executor, &sim, &bench, &p, 0.001, Confidence::THREE_SIGMA)
                .unwrap();
        assert!(outcome.tuned.is_some());
        assert!(outcome.best().sample_size() > outcome.initial.sample_size());
    }
}

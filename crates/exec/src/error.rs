use std::error::Error;
use std::fmt;

use smarts_core::SmartsError;

/// Error type for parallel sampling execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// An underlying sampling error (invalid parameters, empty sample,
    /// incompatible checkpoint geometry, ...).
    Smarts(SmartsError),
    /// A worker thread panicked; the panic payload is preserved so the
    /// failure is attributable instead of tearing down the process.
    WorkerPanic {
        /// Zero-based index of the worker that panicked.
        worker: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The executor was configured with zero workers.
    ZeroJobs,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Smarts(e) => write!(f, "sampling error: {e}"),
            ExecError::WorkerPanic { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            ExecError::ZeroJobs => write!(f, "executor needs at least one worker"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Smarts(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<SmartsError> for ExecError {
    fn from(e: SmartsError) -> Self {
        ExecError::Smarts(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::Smarts(SmartsError::EmptySample);
        assert!(e.to_string().contains("sampling error"));
        assert!(e.source().is_some());
        let p = ExecError::WorkerPanic {
            worker: 3,
            message: "boom".into(),
        };
        assert!(p.to_string().contains("worker 3"));
        assert!(p.to_string().contains("boom"));
        assert!(p.source().is_none());
        assert!(ExecError::ZeroJobs.to_string().contains("at least one"));
    }
}

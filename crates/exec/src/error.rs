use std::error::Error;
use std::fmt;

use smarts_ckpt::CkptError;
use smarts_core::SmartsError;

/// Error type for parallel sampling execution.
///
/// Not `Clone`/`PartialEq`: the [`ExecError::Ckpt`] variant carries a
/// [`CkptError`], which may wrap an [`std::io::Error`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// An underlying sampling error (invalid parameters, empty sample,
    /// incompatible checkpoint geometry, ...).
    Smarts(SmartsError),
    /// A checkpoint-store error while saving or replaying persisted
    /// checkpoints (I/O, corruption, fingerprint mismatch, ...).
    Ckpt(CkptError),
    /// A checkpoint store names a benchmark the workload suite does not
    /// know, so its program cannot be reconstructed for replay.
    UnknownBenchmark(String),
    /// A non-built-in frontend could not resolve its workload (a
    /// benchmark outside the RISC encoding's reach, an unreadable trace
    /// file, ...). The built-in frontend keeps reporting
    /// [`ExecError::UnknownBenchmark`] for its only failure mode.
    Frontend(String),
    /// A worker thread panicked; the panic payload is preserved so the
    /// failure is attributable instead of tearing down the process.
    WorkerPanic {
        /// Zero-based index of the worker that panicked.
        worker: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The executor was configured with zero workers.
    ZeroJobs,
    /// The run was cancelled through its [`crate::CancelToken`] before
    /// completing; any partial results were discarded.
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Smarts(e) => write!(f, "sampling error: {e}"),
            ExecError::Ckpt(e) => write!(f, "checkpoint store error: {e}"),
            ExecError::UnknownBenchmark(name) => {
                write!(f, "checkpoint store names unknown benchmark `{name}`")
            }
            ExecError::Frontend(message) => {
                write!(f, "frontend cannot resolve workload: {message}")
            }
            ExecError::WorkerPanic { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            ExecError::ZeroJobs => write!(f, "executor needs at least one worker"),
            ExecError::Cancelled => write!(f, "run cancelled before completion"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Smarts(e) => Some(e),
            ExecError::Ckpt(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<SmartsError> for ExecError {
    fn from(e: SmartsError) -> Self {
        ExecError::Smarts(e)
    }
}

#[doc(hidden)]
impl From<CkptError> for ExecError {
    fn from(e: CkptError) -> Self {
        ExecError::Ckpt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::Smarts(SmartsError::EmptySample);
        assert!(e.to_string().contains("sampling error"));
        assert!(e.source().is_some());
        let p = ExecError::WorkerPanic {
            worker: 3,
            message: "boom".into(),
        };
        assert!(p.to_string().contains("worker 3"));
        assert!(p.to_string().contains("boom"));
        assert!(p.source().is_none());
        assert!(ExecError::ZeroJobs.to_string().contains("at least one"));
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        assert!(ExecError::Cancelled.source().is_none());
        let u = ExecError::UnknownBenchmark("ghost-9".into());
        assert!(u.to_string().contains("ghost-9"));
        assert!(u.source().is_none());
    }

    #[test]
    fn ckpt_errors_convert_and_chain() {
        let e = ExecError::from(CkptError::UnsupportedVersion(7));
        assert!(matches!(e, ExecError::Ckpt(_)));
        assert!(e.to_string().contains("checkpoint store"));
        assert!(e.source().is_some());
    }
}

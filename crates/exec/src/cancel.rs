//! Cooperative cancellation and progress observation for pipeline runs.
//!
//! Long-lived callers (the `smarts-server` job scheduler, a ctrl-c
//! handler) need two hooks into a running pipeline that a one-shot CLI
//! run never did:
//!
//! * a way to *stop* a run that is no longer wanted — [`CancelToken`] is
//!   a shared flag the producer polls before emitting each checkpoint,
//!   so cancellation latency is bounded by one unit of warming plus the
//!   drain of already-queued checkpoints (at most `depth + jobs` unit
//!   replays), and
//! * a way to *watch* a run from outside — [`PipelineProgress`]
//!   snapshots are pushed to an observer callback each time the producer
//!   emits or a consumer finishes a unit.
//!
//! Both are carried by [`crate::Executor`] so every pipeline-shaped
//! entry point (live warming, warm-and-save, replay-from-store) honors
//! them without signature churn.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag: cloning hands out another handle to the
/// same flag, so a scheduler can keep one half and give the run the
/// other.
///
/// Cancellation is cooperative and one-way: once [`CancelToken::cancel`]
/// is called every pipeline run holding a clone stops emitting new work
/// at the next unit boundary and returns
/// [`ExecError::Cancelled`](crate::ExecError::Cancelled).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A progress snapshot from a running pipeline: how many unit
/// checkpoints the producer has emitted and how many units the consumers
/// have finished replaying. `replayed` trails `emitted` by at most the
/// channel depth plus in-flight replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineProgress {
    /// Checkpoints the producer has emitted so far.
    pub emitted: u64,
    /// Units the consumers have finished replaying so far.
    pub replayed: u64,
}

/// The observer callback type: invoked from producer and consumer
/// threads, so it must be `Send + Sync` and should be cheap (bump a
/// counter, notify a condvar — not I/O).
pub type ProgressFn = Arc<dyn Fn(PipelineProgress) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        b.cancel(); // idempotent
        assert!(b.is_cancelled());
    }
}

//! Residual-bias measurement: how far a parallel run's estimates drift
//! from the sequential run it approximates.
//!
//! Checkpoint-mode runs merge bit-identically, so their bias is exactly
//! zero; this module exists to quantify the sharded mode, whose
//! truncated warming run-ins reintroduce a (bounded, configurable)
//! cold-start error.

use smarts_core::SampleReport;

/// Measured divergence of one run's estimates from a reference run over
/// the units they share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasReport {
    /// Units present (by stream offset) in both runs.
    pub matched_units: u64,
    /// Units present in exactly one of the runs.
    pub unmatched_units: u64,
    /// Relative CPI bias of the candidate's aggregate estimate:
    /// `(CPI_candidate − CPI_reference) / CPI_reference`.
    pub cpi_bias: f64,
    /// Relative EPI bias of the candidate's aggregate estimate.
    pub epi_bias: f64,
    /// Largest relative per-unit CPI error over the matched units.
    pub max_unit_cpi_error: f64,
}

/// Measures the residual bias of `candidate` against `reference` (e.g. a
/// sharded parallel run against the sequential run of the same design).
///
/// Units are matched by stream offset; both reports hold units in stream
/// order.
pub fn residual_bias(candidate: &SampleReport, reference: &SampleReport) -> BiasReport {
    let mut matched = 0u64;
    let mut max_unit_cpi_error = 0.0f64;
    let mut ci = candidate.units.iter().peekable();
    let mut ri = reference.units.iter().peekable();
    while let (Some(c), Some(r)) = (ci.peek(), ri.peek()) {
        match c.start_instr.cmp(&r.start_instr) {
            std::cmp::Ordering::Less => {
                ci.next();
            }
            std::cmp::Ordering::Greater => {
                ri.next();
            }
            std::cmp::Ordering::Equal => {
                if r.cpi != 0.0 {
                    let err = ((c.cpi - r.cpi) / r.cpi).abs();
                    max_unit_cpi_error = max_unit_cpi_error.max(err);
                }
                matched += 1;
                ci.next();
                ri.next();
            }
        }
    }
    let total = candidate.units.len() as u64 + reference.units.len() as u64;
    let rel = |c: f64, r: f64| if r == 0.0 { 0.0 } else { (c - r) / r };
    BiasReport {
        matched_units: matched,
        unmatched_units: total - 2 * matched,
        cpi_bias: rel(candidate.cpi().mean(), reference.cpi().mean()),
        epi_bias: rel(candidate.epi().mean(), reference.epi().mean()),
        max_unit_cpi_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_core::{SamplingParams, SmartsSim, Warming};
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    #[test]
    fn identical_runs_have_zero_bias() {
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            8,
            0,
        )
        .unwrap();
        let a = sim.sample(&bench, &params).unwrap();
        let b = sim.sample(&bench, &params).unwrap();
        let bias = residual_bias(&a, &b);
        assert_eq!(bias.matched_units, a.sample_size());
        assert_eq!(bias.unmatched_units, 0);
        assert_eq!(bias.cpi_bias, 0.0);
        assert_eq!(bias.epi_bias, 0.0);
        assert_eq!(bias.max_unit_cpi_error, 0.0);
    }

    #[test]
    fn disjoint_offsets_match_nothing() {
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let base = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            6,
            0,
        )
        .unwrap();
        let shifted = base.with_offset(1).unwrap();
        let a = sim.sample(&bench, &base).unwrap();
        let b = sim.sample(&bench, &shifted).unwrap();
        let bias = residual_bias(&a, &b);
        assert_eq!(bias.matched_units, 0);
        assert_eq!(bias.unmatched_units, a.sample_size() + b.sample_size());
    }
}

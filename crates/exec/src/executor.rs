//! The executor: a configurable worker pool running sampling-unit jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cancel::{CancelToken, ProgressFn};
use crate::error::ExecError;
use crate::pipeline;
use crate::pool::run_workers;
use crate::shard;
use smarts_core::{
    CheckpointLibrary, ModeInstructions, SampleReport, SamplingParams, SmartsError, SmartsSim,
    UnitReplay, UnitSample,
};
use smarts_workloads::Benchmark;

/// How a parallel sampling run distributes work across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelMode {
    /// One sequential functional-warming pass builds a
    /// [`CheckpointLibrary`]; all units then replay concurrently. The
    /// merged report is bit-identical to a sequential replay at any
    /// worker count.
    #[default]
    Checkpoint,
    /// The stream is split into one contiguous shard per worker; each
    /// worker fast-forwards from a cold engine, functionally warming only
    /// a configurable run-in before its first unit. No sequential pass at
    /// all, but units near shard starts carry truncated warming history —
    /// a residual bias measurable with [`crate::residual_bias`].
    Sharded,
    /// Streamed checkpoint pipeline: a producer thread runs the same
    /// in-order functional-warming pass as [`ParallelMode::Checkpoint`]
    /// but emits each unit's checkpoint into a bounded channel the moment
    /// its boundary is reached; `jobs` consumers replay concurrently.
    /// Warming and replay overlap (wall time tends to
    /// `max(T_warm, T_detail/jobs)`), peak checkpoint residency is
    /// bounded by the channel depth plus in-flight replays instead of
    /// O(n units), and the merged report stays bit-identical to
    /// sequential replay.
    Pipeline,
    /// Sharded warming with boundary re-warm stitching: the warming pass
    /// itself — the serial bottleneck every other mode keeps — is split
    /// into `warm_jobs` leapfrog shards writing private delta-encoded
    /// segments, and a serial stitch pass re-warms each shard's leading
    /// units from its predecessor's exact state until the canonical warm
    /// states converge, then splices the rest verbatim. The merged
    /// report (and any saved store) stays bit-identical to the serial
    /// pipeline; warming wall tends to `T_warm / warm_jobs` plus the
    /// measured re-warm overhead. See [`crate::ShardWarmStats`].
    ShardedWarm,
}

impl std::fmt::Display for ParallelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ParallelMode::Checkpoint => "checkpoint",
            ParallelMode::Sharded => "sharded",
            ParallelMode::Pipeline => "pipeline",
            ParallelMode::ShardedWarm => "sharded-warm",
        })
    }
}

impl std::str::FromStr for ParallelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "checkpoint" => Ok(ParallelMode::Checkpoint),
            "sharded" => Ok(ParallelMode::Sharded),
            "pipeline" => Ok(ParallelMode::Pipeline),
            "sharded-warm" => Ok(ParallelMode::ShardedWarm),
            other => Err(format!(
                "unknown parallel mode `{other}` (checkpoint|sharded|pipeline|sharded-warm)"
            )),
        }
    }
}

/// Per-worker cost accounting for one parallel run.
///
/// `instructions` uses the same mode breakdown as the sequential driver
/// (the paper's Table 6 categories), so per-worker rows can be summed or
/// tabulated with the existing reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Zero-based worker index.
    pub worker: usize,
    /// Sampling units this worker measured (including a partial tail).
    pub units: u64,
    /// Wall-clock the worker spent on its share of the run.
    pub wall: Duration,
    /// Instructions the worker simulated, by mode.
    pub instructions: ModeInstructions,
}

/// The result of a parallel sampling run: the merged [`SampleReport`]
/// plus the parallel-execution accounting a sequential report cannot
/// carry.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// The merged report, reduced in stream order.
    ///
    /// In [`ParallelMode::Checkpoint`] its estimates (CPI, EPI, V̂, and
    /// hence every confidence interval) are bit-identical to
    /// [`SmartsSim::sample_library`] on the same library. Its
    /// `instructions` count the merged sample only; redundant per-worker
    /// work (sharded fast-forward overlap) shows up in [`Self::workers`].
    pub report: SampleReport,
    /// The mode the run used.
    pub mode: ParallelMode,
    /// Worker-pool size the run was configured with.
    pub jobs: usize,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Wall-clock of the sequential checkpoint-build pass. Zero in
    /// sharded mode (no sequential phase) and in pipeline mode, where
    /// the warming pass overlaps the parallel phase and is reported in
    /// [`PipelineStats::producer_wall`] instead.
    pub build_wall: Duration,
    /// Wall-clock of the parallel phase (the longest worker critical
    /// path, as observed by the caller). In pipeline mode this is the
    /// whole overlapped run.
    pub parallel_wall: Duration,
    /// Pipeline-mode accounting; `None` for the other modes.
    /// [`ParallelMode::ShardedWarm`] runs are pipeline-shaped, so they
    /// carry this too.
    pub pipeline: Option<PipelineStats>,
    /// Sharded-warm accounting; `None` for the other modes.
    pub shard: Option<crate::ShardWarmStats>,
}

impl ParallelReport {
    /// Total wall-clock: sequential build pass plus parallel phase.
    /// In pipeline mode the phases overlap, so this is simply the
    /// end-to-end elapsed time.
    pub fn wall_total(&self) -> Duration {
        self.build_wall + self.parallel_wall
    }

    /// Sum of all workers' simulated instructions, by mode. In sharded
    /// mode this exceeds the merged report's accounting by the redundant
    /// fast-forwarding each worker performs to reach its shard.
    pub fn worker_instructions(&self) -> ModeInstructions {
        let mut total = ModeInstructions::default();
        for w in &self.workers {
            total.fast_forwarded += w.instructions.fast_forwarded;
            total.detailed_warmed += w.instructions.detailed_warmed;
            total.measured += w.instructions.measured;
        }
        total
    }
}

/// Accounting specific to [`ParallelMode::Pipeline`]: the overlapped
/// producer pass and the bounded checkpoint residency that replaces the
/// checkpoint library's O(n units) footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Configured channel capacity, in checkpoints.
    pub depth: usize,
    /// Wall-clock of the producer's functional-warming pass. It runs
    /// concurrently with the consumers, so it is *not* added to
    /// [`ParallelReport::wall_total`]; `parallel_wall` already covers it.
    pub producer_wall: Duration,
    /// Checkpoints the producer emitted.
    pub emitted: u64,
    /// Most checkpoints simultaneously alive (queued, being replayed,
    /// plus the one the producer holds while offering it); bounded by
    /// `depth + jobs + 1` by construction.
    pub peak_resident_checkpoints: usize,
    /// Peak bytes those resident checkpoints held (per-checkpoint
    /// footprints, with copy-on-write page sharing between live
    /// checkpoints not discounted — an upper bound).
    pub peak_resident_bytes: u64,
}

/// Reduces per-unit replay outcomes in stream order, stopping at the
/// first partial unit exactly as the sequential replay loop does — the
/// deterministic merge shared by checkpoint and pipeline modes.
///
/// Every index must have been claimed exactly once, so after sorting the
/// vector is a permutation-free `0..len`.
pub(crate) fn merge_outcomes(
    mut outcomes: Vec<(usize, UnitReplay)>,
) -> (Vec<UnitSample>, ModeInstructions) {
    outcomes.sort_unstable_by_key(|(index, _)| *index);
    let mut units = Vec::with_capacity(outcomes.len());
    let mut instructions = ModeInstructions::default();
    for (_, replay) in outcomes {
        replay.account(&mut instructions);
        match replay {
            UnitReplay::Complete { sample, .. } => units.push(*sample),
            UnitReplay::Partial { .. } => break,
        }
    }
    (units, instructions)
}

/// A parallel sampling executor: worker-pool size, work-distribution
/// mode, and the sharded-mode warming run-in.
///
/// # Examples
///
/// ```
/// use smarts_exec::Executor;
/// use smarts_core::{SamplingParams, SmartsSim, Warming};
/// use smarts_uarch::MachineConfig;
/// use smarts_workloads::find;
///
/// # fn main() -> Result<(), smarts_exec::ExecError> {
/// let sim = SmartsSim::new(MachineConfig::eight_way());
/// let bench = find("loopy-1").unwrap().scaled(0.05);
/// let params = SamplingParams::for_sample_size(
///     bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)
///     .map_err(smarts_exec::ExecError::Smarts)?;
/// let outcome = Executor::new(2)?.sample(&sim, &bench, &params)?;
/// assert!(outcome.report.sample_size() > 0);
/// assert_eq!(outcome.workers.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Executor {
    jobs: usize,
    mode: ParallelMode,
    shard_warmup: u64,
    pipeline_depth: usize,
    warm_jobs: usize,
    cancel: CancelToken,
    progress: Option<ProgressFn>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("jobs", &self.jobs)
            .field("mode", &self.mode)
            .field("shard_warmup", &self.shard_warmup)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("warm_jobs", &self.warm_jobs)
            .field("cancelled", &self.cancel.is_cancelled())
            .field("progress", &self.progress.as_ref().map(|_| "<observer>"))
            .finish()
    }
}

/// Default functional-warming run-in before a shard's first unit, in
/// instructions. Ample for the Table 3 cache geometries; tune with
/// [`Executor::with_shard_warmup`].
pub const DEFAULT_SHARD_WARMUP: u64 = 100_000;

/// Default pipeline channel depth, in checkpoints. Deep enough to ride
/// out replay-cost variance between units, shallow enough that resident
/// checkpoints stay a small multiple of the worker count; tune with
/// [`Executor::with_pipeline_depth`].
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

impl Executor {
    /// Creates an executor with `jobs` workers, checkpoint mode, and the
    /// default shard warm-up and pipeline depth.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ZeroJobs`] when `jobs` is zero.
    pub fn new(jobs: usize) -> Result<Self, ExecError> {
        if jobs == 0 {
            return Err(ExecError::ZeroJobs);
        }
        Ok(Executor {
            jobs,
            mode: ParallelMode::Checkpoint,
            shard_warmup: DEFAULT_SHARD_WARMUP,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            warm_jobs: 1,
            cancel: CancelToken::new(),
            progress: None,
        })
    }

    /// Attaches a cancellation token: pipeline-shaped runs stop emitting
    /// new units once the token is cancelled and return
    /// [`ExecError::Cancelled`]. The caller keeps a clone of the token
    /// and may cancel from any thread.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a progress observer: pipeline-shaped runs push a
    /// [`crate::PipelineProgress`] snapshot each time the producer emits a
    /// checkpoint or a consumer finishes a unit. The callback runs on
    /// producer/consumer threads, so it must be cheap and non-blocking.
    pub fn with_progress(mut self, observer: ProgressFn) -> Self {
        self.progress = Some(observer);
        self
    }

    /// The cancellation token pipeline-shaped runs poll.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Bundles the cancellation and progress hooks for a pipeline run.
    pub(crate) fn control(&self) -> pipeline::RunControl {
        pipeline::RunControl {
            cancel: self.cancel.clone(),
            progress: self.progress.clone(),
        }
    }

    /// Selects the work-distribution mode.
    pub fn with_mode(mut self, mode: ParallelMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the sharded-mode functional-warming run-in (instructions
    /// before a shard's first unit).
    pub fn with_shard_warmup(mut self, instructions: u64) -> Self {
        self.shard_warmup = instructions;
        self
    }

    /// Sets the pipeline-mode channel depth (bounded to at least one
    /// checkpoint: a zero-capacity channel would deadlock the producer
    /// against its own emission).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Sets the sharded-warm worker count (bounded to at least one; it
    /// is further clamped to the estimated unit count at run time).
    /// Only [`ParallelMode::ShardedWarm`] consults it.
    pub fn with_warm_jobs(mut self, warm_jobs: usize) -> Self {
        self.warm_jobs = warm_jobs.max(1);
        self
    }

    /// Worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Work-distribution mode.
    pub fn mode(&self) -> ParallelMode {
        self.mode
    }

    /// Sharded-mode warming run-in, in instructions.
    pub fn shard_warmup(&self) -> u64 {
        self.shard_warmup
    }

    /// Pipeline-mode channel depth, in checkpoints.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Sharded-warm worker count.
    pub fn warm_jobs(&self) -> usize {
        self.warm_jobs
    }

    /// Runs one parallel sampling simulation in the configured mode.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors, and reports worker panics as
    /// [`ExecError::WorkerPanic`].
    pub fn sample(
        &self,
        sim: &SmartsSim,
        bench: &Benchmark,
        params: &SamplingParams,
    ) -> Result<ParallelReport, ExecError> {
        match self.mode {
            ParallelMode::Checkpoint => self.sample_checkpoint(sim, bench, params),
            ParallelMode::Sharded => shard::sample_sharded(self, sim, bench, params),
            ParallelMode::Pipeline => pipeline::sample_pipeline(self, sim, bench, params),
            ParallelMode::ShardedWarm => {
                crate::warm_shard::sample_sharded_warm(self, sim, bench, params)
            }
        }
    }

    /// Checkpoint-replay parallel sampling: build the library with one
    /// sequential functional-warming pass, then replay all units across
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// As for [`Executor::sample`].
    pub fn sample_checkpoint(
        &self,
        sim: &SmartsSim,
        bench: &Benchmark,
        params: &SamplingParams,
    ) -> Result<ParallelReport, ExecError> {
        let library = sim.build_library(bench, params)?;
        self.replay_library(sim, &library)
    }

    /// Replays an existing checkpoint library across the worker pool.
    ///
    /// Workers pull unit indices from a shared queue (dynamic load
    /// balancing: unit cost varies with cache behavior), and the per-unit
    /// results are reduced in stream order, so the merged report is
    /// bit-identical to [`SmartsSim::sample_library`] at any worker
    /// count.
    ///
    /// # Errors
    ///
    /// As for [`Executor::sample`], plus a parameter error when the
    /// simulator's warmable-state geometry is incompatible with the
    /// library.
    pub fn replay_library(
        &self,
        sim: &SmartsSim,
        library: &CheckpointLibrary,
    ) -> Result<ParallelReport, ExecError> {
        if !library.compatible_with(sim.config()) {
            return Err(ExecError::Smarts(SmartsError::ZeroParameter(
                "warmable-state geometry differs from the library's",
            )));
        }
        let count = library.len();
        let queue = AtomicUsize::new(0);
        let t0 = Instant::now();

        struct WorkerOutput {
            stats: WorkerStats,
            outcomes: Vec<(usize, UnitReplay)>,
        }

        let outputs = run_workers(self.jobs, |worker| -> Result<WorkerOutput, SmartsError> {
            let start = Instant::now();
            let mut outcomes = Vec::new();
            let mut instructions = ModeInstructions::default();
            loop {
                let index = queue.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let replay = sim.replay_unit(library, index)?;
                replay.account(&mut instructions);
                outcomes.push((index, replay));
            }
            Ok(WorkerOutput {
                stats: WorkerStats {
                    worker,
                    units: outcomes.len() as u64,
                    wall: start.elapsed(),
                    instructions,
                },
                outcomes,
            })
        })?;
        let parallel_wall = t0.elapsed();

        let mut workers = Vec::with_capacity(self.jobs);
        let mut outcomes: Vec<(usize, UnitReplay)> = Vec::with_capacity(count);
        for output in outputs {
            let output = output?;
            workers.push(output.stats);
            outcomes.extend(output.outcomes);
        }

        let (units, instructions) = merge_outcomes(outcomes);
        if units.is_empty() {
            return Err(ExecError::Smarts(SmartsError::EmptySample));
        }
        let report = SampleReport::from_units(
            *library.params(),
            units,
            instructions,
            Duration::ZERO,
            parallel_wall,
        );
        Ok(ParallelReport {
            report,
            mode: ParallelMode::Checkpoint,
            jobs: self.jobs,
            workers,
            build_wall: library.build_wall(),
            parallel_wall,
            pipeline: None,
            shard: None,
        })
    }
}

/// Parallel sampling as an alternate driver on [`SmartsSim`] itself, for
/// call sites that start from the simulator rather than the executor.
pub trait ParallelDriver {
    /// Runs one parallel sampling simulation with the given executor.
    ///
    /// # Errors
    ///
    /// As for [`Executor::sample`].
    fn sample_parallel(
        &self,
        bench: &Benchmark,
        params: &SamplingParams,
        executor: &Executor,
    ) -> Result<ParallelReport, ExecError>;
}

impl ParallelDriver for SmartsSim {
    fn sample_parallel(
        &self,
        bench: &Benchmark,
        params: &SamplingParams,
        executor: &Executor,
    ) -> Result<ParallelReport, ExecError> {
        executor.sample(self, bench, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_core::Warming;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    fn design(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 1)
            .unwrap()
    }

    #[test]
    fn executor_rejects_zero_jobs() {
        assert!(matches!(Executor::new(0), Err(ExecError::ZeroJobs)));
    }

    #[test]
    fn parallel_mode_parses() {
        assert_eq!(
            "checkpoint".parse::<ParallelMode>(),
            Ok(ParallelMode::Checkpoint)
        );
        assert_eq!("sharded".parse::<ParallelMode>(), Ok(ParallelMode::Sharded));
        assert_eq!(
            "sharded-warm".parse::<ParallelMode>(),
            Ok(ParallelMode::ShardedWarm)
        );
        assert_eq!(ParallelMode::ShardedWarm.to_string(), "sharded-warm");
        assert!("turbo".parse::<ParallelMode>().is_err());
    }

    #[test]
    fn checkpoint_replay_is_bit_identical_to_sequential() {
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let library = sim.build_library(&bench, &params).unwrap();
        let sequential = sim.sample_library(&library).unwrap();
        for jobs in [1, 2, 4] {
            let parallel = Executor::new(jobs)
                .unwrap()
                .replay_library(&sim, &library)
                .unwrap();
            assert_eq!(parallel.report.sample_size(), sequential.sample_size());
            assert_eq!(
                parallel.report.cpi().mean().to_bits(),
                sequential.cpi().mean().to_bits(),
                "CPI differs at {jobs} jobs"
            );
            assert_eq!(
                parallel.report.epi().mean().to_bits(),
                sequential.epi().mean().to_bits()
            );
            assert_eq!(
                parallel.report.cpi().coefficient_of_variation().to_bits(),
                sequential.cpi().coefficient_of_variation().to_bits()
            );
            assert_eq!(parallel.report.instructions, sequential.instructions);
            for (a, b) in parallel.report.units.iter().zip(&sequential.units) {
                assert_eq!(a.start_instr, b.start_instr);
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.counters, b.counters);
            }
        }
    }

    #[test]
    fn every_worker_is_accounted_for() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let outcome = Executor::new(3)
            .unwrap()
            .sample(&sim, &bench, &design(&bench, 9))
            .unwrap();
        assert_eq!(outcome.workers.len(), 3);
        assert_eq!(outcome.jobs, 3);
        // Workers claim every checkpointed unit, including a partial tail
        // the merge excludes from the sample.
        let claimed: u64 = outcome.workers.iter().map(|w| w.units).sum();
        assert!(claimed >= outcome.report.sample_size());
        assert!(claimed <= outcome.report.sample_size() + 1);
        let totals = outcome.worker_instructions();
        assert_eq!(totals.measured, outcome.report.instructions.measured);
        assert_eq!(
            totals.detailed_warmed,
            outcome.report.instructions.detailed_warmed
        );
        assert!(outcome.build_wall > Duration::ZERO);
    }

    #[test]
    fn incompatible_geometry_is_rejected() {
        let sim8 = sim();
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let library = sim8.build_library(&bench, &design(&bench, 5)).unwrap();
        let sim16 = SmartsSim::new(MachineConfig::sixteen_way());
        let err = Executor::new(2)
            .unwrap()
            .replay_library(&sim16, &library)
            .unwrap_err();
        assert!(matches!(err, ExecError::Smarts(_)));
    }

    #[test]
    fn driver_trait_delegates_to_the_executor() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let params = design(&bench, 6);
        let executor = Executor::new(2).unwrap();
        let via_trait = sim.sample_parallel(&bench, &params, &executor).unwrap();
        let direct = executor.sample(&sim, &bench, &params).unwrap();
        assert_eq!(
            via_trait.report.cpi().mean().to_bits(),
            direct.report.cpi().mean().to_bits()
        );
    }
}

//! Parallel sampling execution for the SMARTS framework.
//!
//! SMARTS measures `n` mutually independent sampling units; the paper's
//! conclusion points out that once fast-forwarding is replaced by
//! checkpoints (the TurboSMARTS direction) those units become
//! embarrassingly parallel. This crate is that execution subsystem:
//!
//! * an [`Executor`] with a configurable worker pool
//!   (`std::thread` + a shared work queue, no external dependencies),
//! * **parallel checkpoint replay** ([`ParallelMode::Checkpoint`]) — one
//!   sequential functional-warming pass builds a
//!   [`smarts_core::CheckpointLibrary`]; every unit then replays
//!   concurrently,
//! * **sharded leapfrog sampling** ([`ParallelMode::Sharded`]) — the
//!   stream splits into one shard per worker with a configurable warming
//!   run-in and no sequential pass, trading a measurable residual bias
//!   ([`residual_bias`]) for zero up-front cost,
//! * a **streamed checkpoint pipeline** ([`ParallelMode::Pipeline`]) — a
//!   producer thread runs the same warming pass but emits each checkpoint
//!   into a bounded channel as its unit boundary is reached, so detailed
//!   replay overlaps warming and peak checkpoint residency stays bounded
//!   by the channel depth ([`PipelineStats`]) instead of O(n units),
//! * **sharded warming with re-warm stitching**
//!   ([`ParallelMode::ShardedWarm`]) — the warming pass itself splits
//!   into `warm_jobs` leapfrog shards writing delta-encoded segments,
//!   and a stitch pass re-warms each shard's leading units from its
//!   predecessor's exact state until the canonical warm states converge
//!   ([`ShardWarmStats`]), keeping reports and saved stores
//!   bit-identical to the serial pipeline,
//! * a **deterministic merge layer** — per-unit results are reduced in
//!   stream order through [`smarts_core::SampleReport::from_units`], so a
//!   checkpoint-mode run is *bit-identical* to the sequential
//!   [`smarts_core::SmartsSim::sample_library`] at any worker count,
//! * structured error propagation ([`ExecError::WorkerPanic`]) and
//!   per-worker wall-clock/instruction accounting ([`WorkerStats`]) in
//!   the paper's Table 6 mode categories.
//!
//! # Examples
//!
//! ```
//! use smarts_exec::{Executor, ParallelDriver};
//! use smarts_core::{SamplingParams, SmartsSim, Warming};
//! use smarts_uarch::MachineConfig;
//! use smarts_workloads::find;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = SmartsSim::new(MachineConfig::eight_way());
//! let bench = find("branchy-1").unwrap().scaled(0.05);
//! let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 10)?;
//!
//! // Sequential and 4-worker checkpoint replay agree bit-for-bit.
//! let library = sim.build_library(&bench, &params)?;
//! let sequential = sim.sample_library(&library)?;
//! let parallel = sim.sample_parallel(&bench, &params, &Executor::new(4)?)?;
//! assert_eq!(parallel.report.cpi().mean().to_bits(),
//!            sequential.cpi().mean().to_bits());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bias;
mod cancel;
mod compare;
mod error;
mod executor;
mod persist;
mod pipeline;
mod pool;
mod shard;
mod warm_shard;

pub use bias::{residual_bias, BiasReport};
pub use cancel::{CancelToken, PipelineProgress, ProgressFn};
pub use compare::{compare_machines_parallel, sample_two_step_parallel};
pub use error::ExecError;
pub use executor::{
    Executor, ParallelDriver, ParallelMode, ParallelReport, PipelineStats, WorkerStats,
    DEFAULT_PIPELINE_DEPTH, DEFAULT_SHARD_WARMUP,
};
pub use persist::{
    replay_store, replay_store_eager, replay_store_eager_isa, replay_store_indices,
    replay_store_indices_isa, replay_store_isa, replay_store_mapped, replay_store_mapped_isa,
    replay_store_sampled, replay_store_sampled_isa, sample_pipeline_saving,
    sample_pipeline_saving_isa, warm_store_saving, warm_store_saving_isa, SampledReplay,
    SavedSample, StoreReplay,
};
pub use warm_shard::ShardWarmStats;

//! Persistence glue between the streamed pipeline and the on-disk
//! checkpoint store: warm once while saving ([`sample_pipeline_saving`]),
//! then replay the store under any compatible machine without re-warming
//! ([`replay_store`]).
//!
//! Both entry points reuse the producer/consumer engine from
//! [`crate::ParallelMode::Pipeline`], so their reports are bit-identical
//! to sequential [`smarts_core::SmartsSim::sample_library`] replay at any
//! `jobs`/`depth`:
//!
//! * **saving** tees the producer — every checkpoint is appended to a
//!   [`CkptWriter`] *before* it enters the channel, so persistence
//!   overlaps both warming and detailed replay and costs no extra pass;
//! * **replaying** opens the store zero-copy ([`MappedStore`]) and lets
//!   each worker pull record *indices* from a shared queue, decoding
//!   lazily through its own [`smarts_ckpt::StoreCursor`] — no channel,
//!   no central producer, and peak checkpoint residency of one rolling
//!   flat image plus one transient checkpoint per worker.
//!
//! A store records its functional-warming geometry fingerprint, so the
//! warm-once/replay-many contract is checked, not assumed: replaying
//! under a machine with a different warm geometry fails with
//! [`CkptError::FingerprintMismatch`](smarts_ckpt::CkptError::FingerprintMismatch),
//! while machines differing only in detailed-core parameters (widths,
//! window, FUs) replay the same store freely.
//!
//! Every entry point has an `_isa` variant generic over the
//! [`Frontend`] that produced (or should replay) the store. The store
//! header records its frontend ([`StoreMeta::isa`]); replaying under a
//! different frontend is refused with a typed
//! [`CkptError::IsaMismatch`](smarts_ckpt::CkptError::IsaMismatch)
//! before any record is decoded. The non-`_isa` functions are the
//! built-in-frontend specializations and behave exactly as before.
//!
//! [`replay_store`] (lazy, mmap-backed) and [`replay_store_eager`]
//! (streaming [`CkptReader`] through the pipeline channel) produce
//! byte-identical reports at any worker count; the eager path is kept
//! as the identity oracle and for callers that cannot map the file.

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cancel::PipelineProgress;
use crate::error::ExecError;
use crate::executor::{
    merge_outcomes, Executor, ParallelMode, ParallelReport, PipelineStats, WorkerStats,
};
use crate::pipeline::{finish_pipeline_report, run_pipeline, Residency};
use crate::pool::run_workers;
use smarts_ckpt::{CkptError, CkptReader, CkptWriter, MappedStore, StoreMeta, WriteSummary};
use smarts_core::{
    ModeInstructions, SampleReport, SamplerSpec, SamplingParams, SmartsError, SmartsSim, UnitReplay,
};
use smarts_isa::{BuiltinIsa, IsaId};
use smarts_stats::{SamplerEstimate, SamplerPhase};
use smarts_workloads::{Benchmark, Frontend, Loaded};

/// Result of a warm-and-save run: the live sampling report plus the
/// write-side accounting of the store that now holds the warm state.
#[derive(Debug)]
pub struct SavedSample {
    /// The merged sampling report — bit-identical to a run without
    /// `--save-checkpoints`.
    pub report: ParallelReport,
    /// Records and bytes written to the store.
    pub write: WriteSummary,
}

/// Result of replaying a persisted checkpoint store.
#[derive(Debug)]
pub struct StoreReplay {
    /// The merged sampling report — bit-identical to the run that saved
    /// the store (for the same detailed machine).
    pub report: ParallelReport,
    /// The store's self-describing identity (benchmark, scale, sampling
    /// design, frontend).
    pub meta: StoreMeta,
    /// Records decoded and replayed.
    pub records: u64,
    /// Damage encountered mid-store, if any: the intact prefix above was
    /// still replayed, and this holds the typed error for the rest
    /// (corruption or truncation). `None` for a clean read.
    pub damage: Option<CkptError>,
}

/// Refuses a store written by a different frontend, before any record
/// is touched.
fn check_store_isa<F: Frontend>(meta: &StoreMeta) -> Result<(), ExecError> {
    if meta.isa != F::ID {
        return Err(ExecError::Ckpt(CkptError::IsaMismatch {
            expected: F::ID,
            found: meta.isa,
        }));
    }
    Ok(())
}

/// Reconstructs a store's workload through its recorded frontend. The
/// built-in frontend keeps its historical error shape
/// ([`ExecError::UnknownBenchmark`]); other frontends surface the
/// resolver's own message.
fn resolve_for_replay<F: Frontend>(meta: &StoreMeta) -> Result<Loaded<F>, ExecError> {
    F::resolve(&meta.benchmark, meta.scale).map_err(|message| {
        if F::ID == IsaId::Builtin {
            ExecError::UnknownBenchmark(meta.benchmark.clone())
        } else {
            ExecError::Frontend(message)
        }
    })
}

/// Runs a pipelined sampling simulation exactly like
/// [`Executor::sample`](crate::ParallelDriver) in pipeline mode, while
/// persisting every unit checkpoint to a store at `path`.
///
/// `scale` is the factor the benchmark was scaled by relative to the
/// default suite entry (1.0 if unscaled); it is recorded in the store
/// header so [`replay_store`] can reconstruct the program.
///
/// The writer is created before any thread spawns, so an unwritable path
/// fails fast. A mid-stream write error stops warming and surfaces as
/// [`ExecError::Ckpt`]; nothing is silently dropped.
pub fn sample_pipeline_saving(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<SavedSample, ExecError> {
    sample_pipeline_saving_impl::<BuiltinIsa>(
        executor,
        sim,
        bench.load(),
        bench.name(),
        bench.approx_len(),
        scale,
        params,
        path,
    )
}

/// [`sample_pipeline_saving`] for an arbitrary frontend: the workload is
/// resolved by name through `F` and the store is tagged with `F::ID`.
pub fn sample_pipeline_saving_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    workload: &str,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<SavedSample, ExecError> {
    let loaded = F::resolve(workload, scale).map_err(ExecError::Frontend)?;
    let approx_len = F::approx_len(workload, scale).map_err(ExecError::Frontend)?;
    sample_pipeline_saving_impl::<F>(
        executor, sim, loaded, workload, approx_len, scale, params, path,
    )
}

#[allow(clippy::too_many_arguments)]
fn sample_pipeline_saving_impl<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    loaded: Loaded<F>,
    name: &str,
    approx_len: u64,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<SavedSample, ExecError> {
    if executor.mode() == crate::ParallelMode::ShardedWarm {
        // Sharded warming splices per-shard segments into a final store
        // byte-identical to the one this serial producer writes.
        return crate::warm_shard::sample_sharded_warm_saving_impl::<F>(
            executor, sim, loaded, name, approx_len, scale, params, path,
        );
    }
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let meta = StoreMeta {
        params: *params,
        benchmark: name.to_string(),
        scale,
        isa: F::ID,
    };
    let mut writer = CkptWriter::create(path, sim.config(), &meta)?;
    let program = loaded.program.clone();

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        move |emit| {
            let mut write_error: Option<CkptError> = None;
            let summary = sim.stream_checkpoints(loaded, params, |checkpoint| {
                if let Err(e) = writer.append(&checkpoint) {
                    write_error = Some(e);
                    return false;
                }
                emit(checkpoint)
            });
            (summary, writer, write_error)
        },
        |checkpoint| sim.replay_checkpoint(&program, params, checkpoint),
    )?;
    let ((summary, writer, write_error), run) = run.split();
    if let Some(e) = write_error {
        return Err(ExecError::Ckpt(e));
    }
    // A cancelled run still flushes the writer: every record already
    // appended is CRC-intact on disk, so the partial store is a valid
    // salvageable prefix rather than a torn file — but the run itself
    // reports cancellation, not a (partial) sample.
    let write = writer.finish()?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let summary = summary.map_err(ExecError::Smarts)?;
    let report = finish_pipeline_report(
        run,
        params,
        jobs,
        depth,
        summary.build_wall,
        summary.emitted,
        crate::ParallelMode::Pipeline,
        None,
    )?;
    Ok(SavedSample { report, write })
}

/// Replays a persisted checkpoint store under `sim`'s machine, skipping
/// functional warming entirely.
///
/// The store is self-describing: benchmark, scale and sampling design
/// come from its header, and the program is reconstructed from the
/// workload suite ([`ExecError::UnknownBenchmark`] if the suite no
/// longer knows the name). Opening validates magic, version, header CRC
/// and the warm-geometry fingerprint against `sim.config()` — those are
/// hard errors. Record-level damage is tolerated: the intact prefix is
/// replayed and the first typed error is reported in
/// [`StoreReplay::damage`]. A store whose intact prefix is empty yields
/// [`ExecError::Ckpt`] with that first error.
///
/// The store is opened zero-copy ([`MappedStore`]) and decoded lazily;
/// the report is byte-identical to [`replay_store_eager`]'s at any
/// worker count.
pub fn replay_store(
    executor: &Executor,
    sim: &SmartsSim,
    path: impl AsRef<Path>,
) -> Result<StoreReplay, ExecError> {
    replay_store_isa::<BuiltinIsa>(executor, sim, path)
}

/// [`replay_store`] for an arbitrary frontend. A store written by a
/// different frontend is refused with a typed
/// [`CkptError::IsaMismatch`](smarts_ckpt::CkptError::IsaMismatch).
pub fn replay_store_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    path: impl AsRef<Path>,
) -> Result<StoreReplay, ExecError> {
    let store = MappedStore::open(path, sim.config())?;
    replay_store_mapped_isa::<F>(executor, sim, &store)
}

/// Replays an already-open [`MappedStore`] — the shared-store path: the
/// job server keeps stores mapped across jobs and replays them here
/// without reopening (or re-reading) the file.
///
/// Workers pull record indices from a shared queue and decode them
/// lazily through per-worker [`smarts_ckpt::StoreCursor`]s over the one
/// shared mapping, so peak checkpoint residency is O(jobs), not
/// O(units) and not O(pipeline depth). Record CRCs are verified on
/// first touch; the first damaged record severs the delta chain, so the
/// intact prefix below it is exactly what gets replayed — the same
/// prefix (and the same report) the eager sequential reader yields.
///
/// # Errors
///
/// As for [`replay_store`], minus the open-time validation (already
/// done by [`MappedStore::open`]).
pub fn replay_store_mapped(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
) -> Result<StoreReplay, ExecError> {
    replay_store_mapped_isa::<BuiltinIsa>(executor, sim, store)
}

/// [`replay_store_mapped`] for an arbitrary frontend.
pub fn replay_store_mapped_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
) -> Result<StoreReplay, ExecError> {
    let jobs = executor.jobs();
    let meta = store.meta().clone();
    check_store_isa::<F>(&meta)?;
    let program = resolve_for_replay::<F>(&meta)?.program;
    let params = meta.params;
    let count = store.len();
    let control = executor.control();
    let cancel = &control.cancel;
    let progress = control.progress.as_deref();

    let queue = AtomicUsize::new(0);
    let replayed = AtomicU64::new(0);
    let residency = Residency::default();
    // First damaged record (index, error): lower claims win, and a
    // severed delta chain means no outcome past the floor can exist.
    let damage: Mutex<Option<(u64, CkptError)>> = Mutex::new(None);
    let note_damage = |index: u64, error: CkptError| {
        let mut guard = damage.lock().unwrap_or_else(|p| p.into_inner());
        match &*guard {
            Some((floor, _)) if *floor <= index => {}
            _ => *guard = Some((index, error)),
        }
    };

    struct WorkerOutput {
        stats: WorkerStats,
        outcomes: Vec<(usize, UnitReplay)>,
    }

    let t0 = Instant::now();
    let outputs = run_workers(jobs, |worker| -> WorkerOutput {
        let start = Instant::now();
        let mut cursor = store.cursor();
        let mut outcomes = Vec::new();
        let mut instructions = ModeInstructions::default();
        loop {
            if cancel.is_cancelled() {
                break;
            }
            let index = queue.fetch_add(1, Ordering::Relaxed);
            if index >= count {
                break;
            }
            let flat = match cursor.flat_at(index) {
                Ok(flat) => flat,
                Err(e) => {
                    // Decoding `index` walks the chain through every
                    // earlier record, so the failure is at or before
                    // `index` — and every later claim would hit it too.
                    note_damage(index as u64, e);
                    break;
                }
            };
            let checkpoint = match flat.rebuild_isa::<F>(sim.config()) {
                Ok(checkpoint) => checkpoint,
                Err(detail) => {
                    note_damage(
                        index as u64,
                        CkptError::Corrupted {
                            record: index as u64,
                            detail,
                        },
                    );
                    break;
                }
            };
            let bytes = flat.approx_bytes() + checkpoint.approx_resident_bytes();
            residency.add(bytes);
            let outcome = sim.replay_checkpoint(&program, &params, &checkpoint);
            drop(checkpoint);
            residency.remove(bytes);
            outcome.account(&mut instructions);
            outcomes.push((index, outcome));
            let done = replayed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(observe) = progress {
                observe(PipelineProgress {
                    emitted: count as u64,
                    replayed: done,
                });
            }
        }
        WorkerOutput {
            stats: WorkerStats {
                worker,
                units: outcomes.len() as u64,
                wall: start.elapsed(),
                instructions,
            },
            outcomes,
        }
    })?;
    let parallel_wall = t0.elapsed();
    if cancel.is_cancelled() {
        return Err(ExecError::Cancelled);
    }

    let mut workers = Vec::with_capacity(jobs);
    let mut outcomes: Vec<(usize, UnitReplay)> = Vec::with_capacity(count);
    for output in outputs {
        workers.push(output.stats);
        outcomes.extend(output.outcomes);
    }
    let chain_damage = damage.into_inner().unwrap_or_else(|p| p.into_inner());
    // Pre-existing structural damage (a missing or torn index footer
    // already truncated the frame table) takes the same shape: the
    // intact prefix replays, the typed error is surfaced.
    let (records, damage) = match chain_damage {
        Some((index, error)) => (index, Some(error)),
        None => (count as u64, store.damage()),
    };

    let (units, instructions) = merge_outcomes(outcomes);
    if units.is_empty() {
        if let Some(error) = damage {
            return Err(ExecError::Ckpt(error));
        }
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let report =
        SampleReport::from_units(params, units, instructions, Duration::ZERO, parallel_wall);
    Ok(StoreReplay {
        report: ParallelReport {
            report,
            mode: ParallelMode::Checkpoint,
            jobs,
            workers,
            build_wall: Duration::ZERO,
            parallel_wall,
            pipeline: Some(PipelineStats {
                // No channel: workers claim indices directly.
                depth: 0,
                producer_wall: Duration::ZERO,
                emitted: records,
                peak_resident_checkpoints: residency.peak_count.load(Ordering::Relaxed),
                peak_resident_bytes: residency.peak_bytes.load(Ordering::Relaxed),
            }),
            shard: None,
        },
        meta,
        records,
        damage,
    })
}

/// Result of replaying a sampler-selected subset of a store: the report
/// over the measured units plus the sampler's own estimate and
/// accounting ([`replay_store_sampled`]).
#[derive(Debug)]
pub struct SampledReplay {
    /// The merged report over the units the sampler selected, in stream
    /// order. Deterministic for a fixed (store, spec) pair.
    pub report: ParallelReport,
    /// The store's self-describing identity.
    pub meta: StoreMeta,
    /// The sampler specification that drove unit selection.
    pub spec: SamplerSpec,
    /// The sampler's final estimate: mean, CI half-width, rounds, and
    /// why it stopped.
    pub estimate: SamplerEstimate,
    /// Store record indices actually replayed, ascending.
    pub measured: Vec<u64>,
}

/// Runs the warming pass only, persisting every unit checkpoint to a
/// store at `path` without any detailed replay.
///
/// This is the cold path for sampled jobs: the warm store it writes is
/// byte-identical to the one [`sample_pipeline_saving`] produces (same
/// serial producer, same tee), so a subsequent
/// [`replay_store_sampled`] over it reports exactly what the store-hit
/// path reports. Honors the executor's [`CancelToken`](crate::CancelToken)
/// between units; a cancelled run still flushes the intact prefix and
/// then reports [`ExecError::Cancelled`].
pub fn warm_store_saving(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<WriteSummary, ExecError> {
    warm_store_saving_impl::<BuiltinIsa>(
        executor,
        sim,
        bench.load(),
        bench.name(),
        scale,
        params,
        path,
    )
}

/// [`warm_store_saving`] for an arbitrary frontend.
pub fn warm_store_saving_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    workload: &str,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<WriteSummary, ExecError> {
    let loaded = F::resolve(workload, scale).map_err(ExecError::Frontend)?;
    warm_store_saving_impl::<F>(executor, sim, loaded, workload, scale, params, path)
}

fn warm_store_saving_impl<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    loaded: Loaded<F>,
    name: &str,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<WriteSummary, ExecError> {
    let meta = StoreMeta {
        params: *params,
        benchmark: name.to_string(),
        scale,
        isa: F::ID,
    };
    let mut writer = CkptWriter::create(path, sim.config(), &meta)?;
    let cancel = executor.cancel_token();
    let mut write_error: Option<CkptError> = None;
    let summary = sim.stream_checkpoints(loaded, params, |checkpoint| {
        if cancel.is_cancelled() {
            return false;
        }
        match writer.append(&checkpoint) {
            Ok(_) => true,
            Err(e) => {
                write_error = Some(e);
                false
            }
        }
    });
    if let Some(e) = write_error {
        return Err(ExecError::Ckpt(e));
    }
    let write = writer.finish()?;
    if cancel.is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    summary.map_err(ExecError::Smarts)?;
    Ok(write)
}

/// One parallel replay pass over an explicit, ascending set of record
/// indices. Unlike the full-store path, record damage here is a hard
/// error: a sampled subset with silently missing units would bias the
/// estimate, so there is no salvage-the-prefix semantics.
struct SubsetReplay {
    outcomes: Vec<(usize, UnitReplay)>,
    workers: Vec<WorkerStats>,
    wall: Duration,
}

#[allow(clippy::too_many_arguments)]
fn replay_subset<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
    program: &F::Program,
    params: &SamplingParams,
    indices: &[usize],
    residency: &Residency,
    done_base: &AtomicU64,
) -> Result<SubsetReplay, ExecError> {
    let jobs = executor.jobs();
    let control = executor.control();
    let cancel = &control.cancel;
    let progress = control.progress.as_deref();
    let pool = store.len() as u64;

    let queue = AtomicUsize::new(0);
    let damage: Mutex<Option<(u64, CkptError)>> = Mutex::new(None);
    let note_damage = |index: u64, error: CkptError| {
        let mut guard = damage.lock().unwrap_or_else(|p| p.into_inner());
        match &*guard {
            Some((floor, _)) if *floor <= index => {}
            _ => *guard = Some((index, error)),
        }
    };

    struct WorkerOutput {
        stats: WorkerStats,
        outcomes: Vec<(usize, UnitReplay)>,
    }

    let t0 = Instant::now();
    let outputs = run_workers(jobs, |worker| -> WorkerOutput {
        let start = Instant::now();
        let mut cursor = store.cursor();
        let mut outcomes = Vec::new();
        let mut instructions = ModeInstructions::default();
        loop {
            if cancel.is_cancelled() {
                break;
            }
            // Workers claim *slots* in the ascending index slice, so
            // each worker's claimed indices increase and its cursor only
            // rolls forward through the delta chain.
            let slot = queue.fetch_add(1, Ordering::Relaxed);
            if slot >= indices.len() {
                break;
            }
            let index = indices[slot];
            let flat = match cursor.flat_at(index) {
                Ok(flat) => flat,
                Err(e) => {
                    note_damage(index as u64, e);
                    break;
                }
            };
            let checkpoint = match flat.rebuild_isa::<F>(sim.config()) {
                Ok(checkpoint) => checkpoint,
                Err(detail) => {
                    note_damage(
                        index as u64,
                        CkptError::Corrupted {
                            record: index as u64,
                            detail,
                        },
                    );
                    break;
                }
            };
            let bytes = flat.approx_bytes() + checkpoint.approx_resident_bytes();
            residency.add(bytes);
            let outcome = sim.replay_checkpoint(program, params, &checkpoint);
            drop(checkpoint);
            residency.remove(bytes);
            outcome.account(&mut instructions);
            outcomes.push((index, outcome));
            let done = done_base.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(observe) = progress {
                observe(PipelineProgress {
                    emitted: pool,
                    replayed: done,
                });
            }
        }
        WorkerOutput {
            stats: WorkerStats {
                worker,
                units: outcomes.len() as u64,
                wall: start.elapsed(),
                instructions,
            },
            outcomes,
        }
    })?;
    let wall = t0.elapsed();
    if cancel.is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    if let Some((_, error)) = damage.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(ExecError::Ckpt(error));
    }
    let mut workers = Vec::with_capacity(jobs);
    let mut outcomes: Vec<(usize, UnitReplay)> = Vec::with_capacity(indices.len());
    for output in outputs {
        workers.push(output.stats);
        outcomes.extend(output.outcomes);
    }
    Ok(SubsetReplay {
        outcomes,
        workers,
        wall,
    })
}

/// Sums a phase's per-worker accounting into the run-wide ledger,
/// keyed by worker id.
fn fold_workers(acc: &mut Vec<WorkerStats>, phase: Vec<WorkerStats>) {
    for stats in phase {
        match acc.iter_mut().find(|w| w.worker == stats.worker) {
            Some(slot) => {
                slot.units += stats.units;
                slot.wall += stats.wall;
                slot.instructions.fast_forwarded += stats.instructions.fast_forwarded;
                slot.instructions.detailed_warmed += stats.instructions.detailed_warmed;
                slot.instructions.measured += stats.instructions.measured;
            }
            None => acc.push(stats),
        }
    }
}

/// Replays an arbitrary subset of an already-open store's records and
/// merges them into a report, exactly as the full-store path would for
/// those units. Units are mutually independent, so any subset replays
/// in any order; the merge is in ascending record order regardless.
///
/// `indices` is normalized (sorted, deduplicated) before replay.
/// Record damage is a hard [`ExecError::Ckpt`] here — a sampled subset
/// must be complete to be meaningful — and an empty subset is
/// [`SmartsError::EmptySample`].
///
/// # Panics
///
/// Panics when any index is `>= store.len()`: addressing past the
/// intact prefix is a caller bug, mirroring
/// [`MappedStore::record`](smarts_ckpt::MappedStore::record).
pub fn replay_store_indices(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
    indices: &[usize],
) -> Result<StoreReplay, ExecError> {
    replay_store_indices_isa::<BuiltinIsa>(executor, sim, store, indices)
}

/// [`replay_store_indices`] for an arbitrary frontend.
pub fn replay_store_indices_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
    indices: &[usize],
) -> Result<StoreReplay, ExecError> {
    let meta = store.meta().clone();
    check_store_isa::<F>(&meta)?;
    let program = resolve_for_replay::<F>(&meta)?.program;
    let params = meta.params;
    let mut picks: Vec<usize> = indices.to_vec();
    picks.sort_unstable();
    picks.dedup();
    if let Some(&last) = picks.last() {
        assert!(
            last < store.len(),
            "record {last} out of range for a store of {} records",
            store.len()
        );
    }
    if picks.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let residency = Residency::default();
    let done = AtomicU64::new(0);
    let run = replay_subset::<F>(
        executor, sim, store, &program, &params, &picks, &residency, &done,
    )?;
    let records = picks.len() as u64;
    let (units, instructions) = merge_outcomes(run.outcomes);
    if units.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let report = SampleReport::from_units(params, units, instructions, Duration::ZERO, run.wall);
    Ok(StoreReplay {
        report: ParallelReport {
            report,
            mode: ParallelMode::Checkpoint,
            jobs: executor.jobs(),
            workers: run.workers,
            build_wall: Duration::ZERO,
            parallel_wall: run.wall,
            pipeline: Some(PipelineStats {
                depth: 0,
                producer_wall: Duration::ZERO,
                emitted: records,
                peak_resident_checkpoints: residency.peak_count.load(Ordering::Relaxed),
                peak_resident_bytes: residency.peak_bytes.load(Ordering::Relaxed),
            }),
            shard: None,
        },
        meta,
        records,
        damage: None,
    })
}

/// Replays an already-open store under a [`SamplerSpec`]: the sampler
/// selects record subsets phase by phase, each phase replays in
/// parallel, and observations feed back in ascending record order — so
/// the phase sequence, the final unit set, and the report are all
/// deterministic for a fixed (store, spec) pair at any worker count.
///
/// For [`SamplerKind::Systematic`](smarts_core::SamplerKind) the
/// sampler issues the whole pool in one phase, reproducing
/// [`replay_store_mapped`]'s unit set. Adaptive sampling stops between
/// phases once the running confidence interval meets the spec's
/// `(±ε, confidence)` target; external cancellation is honored at the
/// same seam via the executor's [`CancelToken`](crate::CancelToken).
///
/// # Errors
///
/// As for [`replay_store_indices`]; additionally, any store damage is a
/// hard [`ExecError::Ckpt`] up front (a sampler needs its designed
/// population intact), and invalid specs surface
/// [`SmartsError::Stats`].
pub fn replay_store_sampled(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
    spec: &SamplerSpec,
) -> Result<SampledReplay, ExecError> {
    replay_store_sampled_isa::<BuiltinIsa>(executor, sim, store, spec)
}

/// [`replay_store_sampled`] for an arbitrary frontend.
pub fn replay_store_sampled_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    store: &MappedStore,
    spec: &SamplerSpec,
) -> Result<SampledReplay, ExecError> {
    spec.validate().map_err(ExecError::Smarts)?;
    if let Some(error) = store.damage() {
        return Err(ExecError::Ckpt(error));
    }
    if store.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let meta = store.meta().clone();
    check_store_isa::<F>(&meta)?;
    let program = resolve_for_replay::<F>(&meta)?.program;
    let params = meta.params;

    let mut sampler = spec.build(store.len() as u64).map_err(ExecError::Smarts)?;
    let residency = Residency::default();
    let done = AtomicU64::new(0);
    let mut workers: Vec<WorkerStats> = Vec::new();
    let mut all_outcomes: Vec<(usize, UnitReplay)> = Vec::new();
    let t0 = Instant::now();
    loop {
        if executor.cancel_token().is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        let units = match sampler
            .next_phase()
            .map_err(|e| ExecError::Smarts(SmartsError::Stats(e)))?
        {
            SamplerPhase::Done => break,
            SamplerPhase::Measure(units) => units,
        };
        let mut picks: Vec<usize> = units.iter().map(|&u| u as usize).collect();
        picks.sort_unstable();
        let run = replay_subset::<F>(
            executor, sim, store, &program, &params, &picks, &residency, &done,
        )?;
        fold_workers(&mut workers, run.workers);
        let mut phase_outcomes = run.outcomes;
        phase_outcomes.sort_unstable_by_key(|(index, _)| *index);
        for (index, outcome) in &phase_outcomes {
            // Partial units (only ever the stream's final record) carry
            // no complete measurement; they stay issued but unobserved.
            if let UnitReplay::Complete { sample, .. } = outcome {
                sampler.observe(*index as u64, sample.cpi);
            }
        }
        all_outcomes.extend(phase_outcomes);
    }
    let estimate = sampler
        .estimate()
        .map_err(|e| ExecError::Smarts(SmartsError::Stats(e)))?;
    let parallel_wall = t0.elapsed();
    let records = all_outcomes.len() as u64;
    let mut measured: Vec<u64> = all_outcomes.iter().map(|(i, _)| *i as u64).collect();
    measured.sort_unstable();
    let (units, instructions) = merge_outcomes(all_outcomes);
    if units.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    workers.sort_unstable_by_key(|w| w.worker);
    let report =
        SampleReport::from_units(params, units, instructions, Duration::ZERO, parallel_wall);
    Ok(SampledReplay {
        report: ParallelReport {
            report,
            mode: ParallelMode::Checkpoint,
            jobs: executor.jobs(),
            workers,
            build_wall: Duration::ZERO,
            parallel_wall,
            pipeline: Some(PipelineStats {
                depth: 0,
                producer_wall: Duration::ZERO,
                emitted: records,
                peak_resident_checkpoints: residency.peak_count.load(Ordering::Relaxed),
                peak_resident_bytes: residency.peak_bytes.load(Ordering::Relaxed),
            }),
            shard: None,
        },
        meta,
        spec: *spec,
        estimate,
        measured,
    })
}

/// Replays a persisted checkpoint store through the pipeline channel,
/// decoding records eagerly on a producer thread ([`CkptReader`]) while
/// `jobs` consumers replay them.
///
/// [`replay_store`] (lazy, mmap-backed) produces a byte-identical
/// report; this path is kept as the identity oracle for tests and for
/// callers that cannot memory-map the file.
///
/// # Errors
///
/// As for [`replay_store`].
pub fn replay_store_eager(
    executor: &Executor,
    sim: &SmartsSim,
    path: impl AsRef<Path>,
) -> Result<StoreReplay, ExecError> {
    replay_store_eager_isa::<BuiltinIsa>(executor, sim, path)
}

/// [`replay_store_eager`] for an arbitrary frontend.
pub fn replay_store_eager_isa<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    path: impl AsRef<Path>,
) -> Result<StoreReplay, ExecError> {
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let mut reader = CkptReader::open(path, sim.config())?;
    let meta = reader.meta().clone();
    check_store_isa::<F>(&meta)?;
    let program = resolve_for_replay::<F>(&meta)?.program;
    let params = meta.params;

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        move |emit| {
            let start = Instant::now();
            let mut damage = None;
            while let Some(next) = reader.next_checkpoint_isa::<F>() {
                match next {
                    Ok(checkpoint) => {
                        if !emit(checkpoint) {
                            break;
                        }
                    }
                    Err(e) => {
                        damage = Some(e);
                        break;
                    }
                }
            }
            (reader.records_read(), damage, start.elapsed())
        },
        |checkpoint| sim.replay_checkpoint(&program, &params, checkpoint),
    )?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let ((records, damage, read_wall), run) = run.split();
    if run.outcomes.is_empty() {
        if let Some(e) = damage {
            return Err(ExecError::Ckpt(e));
        }
    }
    let report = finish_pipeline_report(
        run,
        &params,
        jobs,
        depth,
        read_wall,
        records,
        crate::ParallelMode::Pipeline,
        None,
    )?;
    Ok(StoreReplay {
        report,
        meta,
        records,
        damage,
    })
}

//! Persistence glue between the streamed pipeline and the on-disk
//! checkpoint store: warm once while saving ([`sample_pipeline_saving`]),
//! then replay the store under any compatible machine without re-warming
//! ([`replay_store`]).
//!
//! Both entry points reuse the producer/consumer engine from
//! [`crate::ParallelMode::Pipeline`], so their reports are bit-identical
//! to sequential [`smarts_core::SmartsSim::sample_library`] replay at any
//! `jobs`/`depth`:
//!
//! * **saving** tees the producer — every checkpoint is appended to a
//!   [`CkptWriter`] *before* it enters the channel, so persistence
//!   overlaps both warming and detailed replay and costs no extra pass;
//! * **replaying** swaps the warming producer for a [`CkptReader`] —
//!   the expensive functional-warming pass is skipped entirely, and the
//!   producer's critical path becomes decode bandwidth.
//!
//! A store records its functional-warming geometry fingerprint, so the
//! warm-once/replay-many contract is checked, not assumed: replaying
//! under a machine with a different warm geometry fails with
//! [`CkptError::FingerprintMismatch`](smarts_ckpt::CkptError::FingerprintMismatch),
//! while machines differing only in detailed-core parameters (widths,
//! window, FUs) replay the same store freely.

use std::path::Path;
use std::time::Instant;

use crate::error::ExecError;
use crate::executor::{Executor, ParallelReport};
use crate::pipeline::{finish_pipeline_report, run_pipeline};
use smarts_ckpt::{CkptError, CkptReader, CkptWriter, StoreMeta, WriteSummary};
use smarts_core::{SamplingParams, SmartsSim};
use smarts_workloads::{find, Benchmark};

/// Result of a warm-and-save run: the live sampling report plus the
/// write-side accounting of the store that now holds the warm state.
#[derive(Debug)]
pub struct SavedSample {
    /// The merged sampling report — bit-identical to a run without
    /// `--save-checkpoints`.
    pub report: ParallelReport,
    /// Records and bytes written to the store.
    pub write: WriteSummary,
}

/// Result of replaying a persisted checkpoint store.
#[derive(Debug)]
pub struct StoreReplay {
    /// The merged sampling report — bit-identical to the run that saved
    /// the store (for the same detailed machine).
    pub report: ParallelReport,
    /// The store's self-describing identity (benchmark, scale, sampling
    /// design).
    pub meta: StoreMeta,
    /// Records decoded and replayed.
    pub records: u64,
    /// Damage encountered mid-store, if any: the intact prefix above was
    /// still replayed, and this holds the typed error for the rest
    /// (corruption or truncation). `None` for a clean read.
    pub damage: Option<CkptError>,
}

/// Runs a pipelined sampling simulation exactly like
/// [`Executor::sample`](crate::ParallelDriver) in pipeline mode, while
/// persisting every unit checkpoint to a store at `path`.
///
/// `scale` is the factor the benchmark was scaled by relative to the
/// default suite entry (1.0 if unscaled); it is recorded in the store
/// header so [`replay_store`] can reconstruct the program.
///
/// The writer is created before any thread spawns, so an unwritable path
/// fails fast. A mid-stream write error stops warming and surfaces as
/// [`ExecError::Ckpt`]; nothing is silently dropped.
pub fn sample_pipeline_saving(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<SavedSample, ExecError> {
    if executor.mode() == crate::ParallelMode::ShardedWarm {
        // Sharded warming splices per-shard segments into a final store
        // byte-identical to the one this serial producer writes.
        return crate::warm_shard::sample_sharded_warm_saving(
            executor, sim, bench, scale, params, path,
        );
    }
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let meta = StoreMeta {
        params: *params,
        benchmark: bench.name().to_string(),
        scale,
    };
    let mut writer = CkptWriter::create(path, sim.config(), &meta)?;
    let loaded = bench.load();
    let program = loaded.program.clone();

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        move |emit| {
            let mut write_error: Option<CkptError> = None;
            let summary = sim.stream_checkpoints(loaded, params, |checkpoint| {
                if let Err(e) = writer.append(&checkpoint) {
                    write_error = Some(e);
                    return false;
                }
                emit(checkpoint)
            });
            (summary, writer, write_error)
        },
        |checkpoint| sim.replay_checkpoint(&program, params, checkpoint),
    )?;
    let ((summary, writer, write_error), run) = run.split();
    if let Some(e) = write_error {
        return Err(ExecError::Ckpt(e));
    }
    // A cancelled run still flushes the writer: every record already
    // appended is CRC-intact on disk, so the partial store is a valid
    // salvageable prefix rather than a torn file — but the run itself
    // reports cancellation, not a (partial) sample.
    let write = writer.finish()?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let summary = summary.map_err(ExecError::Smarts)?;
    let report = finish_pipeline_report(
        run,
        params,
        jobs,
        depth,
        summary.build_wall,
        summary.emitted,
        crate::ParallelMode::Pipeline,
        None,
    )?;
    Ok(SavedSample { report, write })
}

/// Replays a persisted checkpoint store under `sim`'s machine, skipping
/// functional warming entirely.
///
/// The store is self-describing: benchmark, scale and sampling design
/// come from its header, and the program is reconstructed from the
/// workload suite ([`ExecError::UnknownBenchmark`] if the suite no
/// longer knows the name). Opening validates magic, version, header CRC
/// and the warm-geometry fingerprint against `sim.config()` — those are
/// hard errors. Record-level damage is tolerated: the intact prefix is
/// replayed and the first typed error is reported in
/// [`StoreReplay::damage`]. A store whose intact prefix is empty yields
/// [`ExecError::Ckpt`] with that first error.
pub fn replay_store(
    executor: &Executor,
    sim: &SmartsSim,
    path: impl AsRef<Path>,
) -> Result<StoreReplay, ExecError> {
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let mut reader = CkptReader::open(path, sim.config())?;
    let meta = reader.meta().clone();
    let bench = find(&meta.benchmark)
        .ok_or_else(|| ExecError::UnknownBenchmark(meta.benchmark.clone()))?
        .scaled(meta.scale);
    let program = bench.load().program;
    let params = meta.params;

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        move |emit| {
            let start = Instant::now();
            let mut damage = None;
            while let Some(next) = reader.next_checkpoint() {
                match next {
                    Ok(checkpoint) => {
                        if !emit(checkpoint) {
                            break;
                        }
                    }
                    Err(e) => {
                        damage = Some(e);
                        break;
                    }
                }
            }
            (reader.records_read(), damage, start.elapsed())
        },
        |checkpoint| sim.replay_checkpoint(&program, &params, checkpoint),
    )?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let ((records, damage, read_wall), run) = run.split();
    if run.outcomes.is_empty() {
        if let Some(e) = damage {
            return Err(ExecError::Ckpt(e));
        }
    }
    let report = finish_pipeline_report(
        run,
        &params,
        jobs,
        depth,
        read_wall,
        records,
        crate::ParallelMode::Pipeline,
        None,
    )?;
    Ok(StoreReplay {
        report,
        meta,
        records,
        damage,
    })
}

//! Sharded leapfrog sampling: split the stream into one contiguous shard
//! per worker, with no sequential pass at all.
//!
//! Each worker starts a cold engine, plain-fast-forwards (cheap, no
//! warming) to a configurable functional-warming run-in before its
//! shard's first unit, then proceeds exactly like the sequential driver
//! within its shard. Units near a shard start therefore see warming
//! history truncated to the run-in instead of the full stream prefix —
//! the residual bias the paper's Section 4 cold/stale analysis predicts,
//! measurable against a sequential run with [`crate::residual_bias`].
//!
//! Scalability note: worker `p` still executes the stream prefix
//! functionally, so the critical path is bounded below by plain
//! fast-forwarding `(P−1)/P` of the stream — the TurboSMARTS argument
//! for checkpoint mode, which this mode exists to quantify.

use std::time::Instant;

use crate::error::ExecError;
use crate::executor::{Executor, ParallelMode, ParallelReport, WorkerStats};
use crate::pool::run_workers;
use smarts_core::{
    FunctionalEngine, ModeInstructions, SampleReport, SamplingParams, SmartsError, SmartsSim,
    UnitSample, Warming,
};
use smarts_uarch::{Pipeline, WarmState};
use smarts_workloads::Benchmark;
use std::time::Duration;

/// One worker's share of a sharded run.
struct ShardOutput {
    stats: WorkerStats,
    units: Vec<UnitSample>,
}

/// The smallest unit index of the systematic grid `{j, j+k, j+2k, ...}`
/// whose unit starts at or after `position` (in instructions).
fn first_grid_index(params: &SamplingParams, position: u64) -> u64 {
    let lowest_unit = position.div_ceil(params.unit_size);
    if lowest_unit <= params.offset {
        params.offset
    } else {
        let steps = (lowest_unit - params.offset).div_ceil(params.interval);
        params.offset + steps * params.interval
    }
}

fn run_shard(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
    worker: usize,
    region_start: u64,
    region_end: u64,
) -> ShardOutput {
    let start = Instant::now();
    let u = params.unit_size;
    let w = params.detailed_warming;
    let mut engine = FunctionalEngine::new(bench.load());
    let mut warm = WarmState::new(sim.config());
    let mut instructions = ModeInstructions::default();
    let mut units = Vec::new();

    // Leapfrog: plain fast-forward (no warming) to the run-in point, so
    // only the run-in itself pays the slower functional-warming rate.
    if params.warming == Warming::Functional {
        let warmup_start = region_start.saturating_sub(executor.shard_warmup());
        instructions.fast_forwarded += engine.fast_forward(warmup_start);
    }

    let mut unit_index = first_grid_index(params, region_start);
    loop {
        let unit_start = unit_index * u;
        if unit_start >= region_end {
            break;
        }
        if engine.position() >= unit_start + u {
            // Pipeline overshoot past this entire unit (tiny k); skip.
            unit_index += params.interval;
            continue;
        }
        let warm_start = unit_start.saturating_sub(w);
        let ff = match params.warming {
            Warming::None => engine.fast_forward(warm_start),
            Warming::Functional => engine.fast_forward_warming(warm_start, &mut warm),
        };
        instructions.fast_forwarded += ff;
        if engine.finished() {
            break;
        }
        let mut pipeline = Pipeline::new(sim.config());
        let warm_commits = unit_start.saturating_sub(engine.position());
        let warm_run = pipeline.run(&mut warm, &mut engine, warm_commits, false);
        let measured = pipeline.run(&mut warm, &mut engine, u, true);
        instructions.detailed_warmed += warm_run.instructions;
        instructions.measured += measured.instructions;
        if measured.instructions < u {
            break; // partial tail unit: consumed but not recorded
        }
        let cpi = measured.cpi();
        let epi = sim
            .energy()
            .energy_per_instruction(&measured.counters, measured.cycles);
        units.push(UnitSample {
            start_instr: unit_start,
            cycles: measured.cycles,
            instructions: measured.instructions,
            cpi,
            epi,
            counters: measured.counters,
        });
        unit_index += params.interval;
    }

    ShardOutput {
        stats: WorkerStats {
            worker,
            units: units.len() as u64,
            wall: start.elapsed(),
            instructions,
        },
        units,
    }
}

/// Runs one sharded-leapfrog sampling simulation (see the module docs).
///
/// The merged report accounts the *union* of all workers' simulated
/// instructions — including the redundant fast-forward prefixes — so its
/// mode breakdown states the true cost of the mode.
pub(crate) fn sample_sharded(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Result<ParallelReport, ExecError> {
    params.validate().map_err(ExecError::Smarts)?;
    let jobs = executor.jobs();
    let stream_len = bench.approx_len();
    let t0 = Instant::now();
    let outputs = run_workers(jobs, |worker| {
        let region_start = stream_len * worker as u64 / jobs as u64;
        // The last shard runs to the true stream end, not the estimate.
        let region_end = if worker + 1 == jobs {
            u64::MAX
        } else {
            stream_len * (worker as u64 + 1) / jobs as u64
        };
        run_shard(
            executor,
            sim,
            bench,
            params,
            worker,
            region_start,
            region_end,
        )
    })?;
    let parallel_wall = t0.elapsed();

    let mut workers = Vec::with_capacity(jobs);
    let mut units = Vec::new();
    let mut instructions = ModeInstructions::default();
    for output in outputs {
        instructions.fast_forwarded += output.stats.instructions.fast_forwarded;
        instructions.detailed_warmed += output.stats.instructions.detailed_warmed;
        instructions.measured += output.stats.instructions.measured;
        workers.push(output.stats);
        units.extend(output.units);
    }
    // Deterministic merge: shards partition the stream, so sorting by
    // start offset recovers the sequential measurement order exactly.
    units.sort_unstable_by_key(|unit| unit.start_instr);
    if let Some(max) = params.max_units {
        units.truncate(max as usize);
    }
    if units.is_empty() {
        return Err(ExecError::Smarts(SmartsError::EmptySample));
    }
    let report =
        SampleReport::from_units(*params, units, instructions, parallel_wall, Duration::ZERO);
    Ok(ParallelReport {
        report,
        mode: ParallelMode::Sharded,
        jobs,
        workers,
        build_wall: Duration::ZERO,
        parallel_wall,
        pipeline: None,
        shard: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual_bias;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    fn design(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 1)
            .unwrap()
    }

    #[test]
    fn grid_index_lands_on_the_systematic_grid() {
        let params =
            SamplingParams::for_sample_size(1_000_000, 1000, 2000, Warming::Functional, 10, 1)
                .unwrap();
        let k = params.interval;
        for position in [0, 1, 999, 1000, 12_345, 500_000] {
            let index = first_grid_index(&params, position);
            assert_eq!((index - params.offset) % k, 0);
            assert!(index * params.unit_size >= position || index == params.offset);
        }
        assert_eq!(first_grid_index(&params, 0), params.offset);
    }

    #[test]
    fn shards_measure_the_same_grid_as_the_sequential_run() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let params = design(&bench, 12);
        let sequential = sim.sample(&bench, &params).unwrap();
        let sharded = Executor::new(3)
            .unwrap()
            .with_mode(ParallelMode::Sharded)
            .sample(&sim, &bench, &params)
            .unwrap();
        let seq_starts: Vec<u64> = sequential.units.iter().map(|u| u.start_instr).collect();
        let shard_starts: Vec<u64> = sharded.report.units.iter().map(|u| u.start_instr).collect();
        assert_eq!(seq_starts, shard_starts, "unit grids must coincide");
    }

    #[test]
    fn sharded_bias_is_small_with_generous_warmup() {
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.1);
        let params = design(&bench, 15);
        let sequential = sim.sample(&bench, &params).unwrap();
        let sharded = Executor::new(4)
            .unwrap()
            .with_mode(ParallelMode::Sharded)
            .with_shard_warmup(200_000)
            .sample(&sim, &bench, &params)
            .unwrap();
        let bias = residual_bias(&sharded.report, &sequential);
        assert!(bias.matched_units >= 14);
        assert!(
            bias.cpi_bias.abs() < 0.05,
            "residual CPI bias {} should be small with a 200k run-in",
            bias.cpi_bias
        );
    }

    #[test]
    fn sharded_accounts_redundant_fast_forwarding() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let params = design(&bench, 10);
        let sequential = sim.sample(&bench, &params).unwrap();
        let sharded = Executor::new(4)
            .unwrap()
            .with_mode(ParallelMode::Sharded)
            .sample(&sim, &bench, &params)
            .unwrap();
        // Leapfrog re-executes stream prefixes: total fast-forwarded work
        // exceeds the sequential run's.
        assert!(
            sharded.report.instructions.fast_forwarded > sequential.instructions.fast_forwarded
        );
        assert_eq!(sharded.build_wall, Duration::ZERO);
        assert_eq!(sharded.workers.len(), 4);
    }
}

//! Sharded functional warming with boundary re-warm stitching: the
//! warming pass — the serial bottleneck the pipeline cannot hide — split
//! across `warm_jobs` threads, with the cold-start bias at each shard
//! boundary stitched out exactly instead of tolerated.
//!
//! # The two phases
//!
//! **Phase 1 (parallel segment production).** The systematic grid is cut
//! into `warm_jobs` contiguous shards at sampling-unit boundaries. Shard
//! 0 warms from position 0 — it *is* the serial prefix. Every other
//! shard leapfrogs: plain (unwarmed) fast-forward to the warm-start
//! point of its first unit, then functional warming across its own
//! range, streaming each unit's checkpoint into a private delta-encoded
//! segment via [`CkptWriter`]. Each shard finally continues warming to
//! its successor's start point and hands off that end state.
//!
//! **Phase 2 (serial stitch and splice).** Shard 0's segment is streamed
//! verbatim. For every later shard, its units carry truncated warming
//! history, so the stitcher *re-warms* the shard's leading units from
//! the predecessor's exact serial state and compares the re-warmed
//! checkpoint against the shard's recorded one — as canonical
//! [`FlatCheckpoint`]s, which serialize the behavioral equivalence class
//! of the warm state (see `smarts_uarch::Cache::save_state`). The first
//! unit where the two flats are equal is the **fixpoint**: from there on
//! the shard's truncated history and the full serial history have
//! converged behaviorally, so the segment's remaining records are
//! provably the records a serial pass would have produced and are
//! spliced verbatim. Units before the fixpoint are replaced by their
//! re-warmed (exact) counterparts. If a shard never converges, every
//! unit is re-warmed and the stitcher carries its own engine forward to
//! the next boundary — correct, merely without speedup for that shard.
//!
//! # Why the result is bit-identical
//!
//! Unit selection depends only on architectural state (positions, halt),
//! which warming never touches, so every shard enumerates exactly the
//! units the serial pass would. Each emitted flat is either re-warmed
//! from an exact serial state or spliced after a proven fixpoint; either
//! way it equals the serial flat, and since record encoding is a pure
//! function of `(current flat, previous flat)`, re-encoding the stitched
//! flat sequence through one final [`CkptWriter`] reproduces the
//! single-producer store byte for byte — same header, same per-record
//! CRCs, same `StoreMeta` fingerprint. Replay consumers cannot tell the
//! difference, which is the whole point.
//!
//! The machinery is generic over the [`Frontend`]: the stitch argument
//! rests only on the shared warm/flat vocabulary, so a RISC or trace
//! store shards and splices exactly like a built-in one.
//!
//! DESIGN.md §3.6e develops the convergence and bit-identity arguments
//! in full.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::error::ExecError;
use crate::executor::{Executor, ParallelMode, ParallelReport};
use crate::persist::SavedSample;
use crate::pipeline::{finish_pipeline_report, run_pipeline};
use crate::pool::run_workers;
use smarts_ckpt::{CkptError, CkptReader, CkptWriter, FlatCheckpoint, StoreMeta};
use smarts_core::{
    stream_checkpoints_range, EngineSnapshot, FunctionalEngine, SamplingParams, SmartsSim,
    UnitCheckpoint, Warming,
};
use smarts_isa::{BuiltinIsa, Isa};
use smarts_uarch::{MachineConfig, WarmState};
use smarts_workloads::{Benchmark, Frontend, Loaded};

/// Accounting specific to [`ParallelMode::ShardedWarm`]: how the warming
/// pass was split, how quickly each shard converged back onto the serial
/// warming history, and what the stitch cost.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardWarmStats {
    /// Shards the warming pass was split into (after clamping to the
    /// estimated unit count).
    pub warm_jobs: usize,
    /// Wall-clock of the parallel segment-production phase (the barrier
    /// across all shard threads).
    pub warm_wall: Duration,
    /// Wall-clock of the serial stitch-and-splice phase. It overlaps the
    /// detailed replay consumers, so it is not additive with the replay
    /// wall.
    pub stitch_wall: Duration,
    /// Units each shard recorded in its segment, in shard order.
    pub shard_units: Vec<u64>,
    /// Instructions each shard executed in phase 1 (leapfrog
    /// fast-forward + functional warming + handoff continuation).
    pub shard_instructions: Vec<u64>,
    /// Phase-1 wall-clock of each shard thread.
    pub shard_walls: Vec<Duration>,
    /// Per shard: units re-warmed before the boundary fixpoint was
    /// found. Shard 0 needs no stitching, so `fixpoints[0] == 0`; a
    /// shard that never converged re-warmed all of its units, so
    /// `fixpoints[s] <= shard_units[s]` always holds (the warm-geometry
    /// upper bound).
    pub fixpoints: Vec<u64>,
    /// Instructions the stitcher re-executed (re-warm drives plus
    /// no-fixpoint fallback continuations).
    pub rewarm_instructions: u64,
}

impl ShardWarmStats {
    /// Total units that had to be re-warmed across all shard boundaries.
    pub fn rewarm_units(&self) -> u64 {
        self.fixpoints.iter().sum()
    }
}

/// Contiguous grid ranges `[grid_start, grid_end)` (unit indices), one
/// per shard. Boundaries always land on the systematic grid
/// `{offset, offset+k, ...}`; the last shard is open-ended so an
/// `approx_len` underestimate cannot drop tail units.
fn plan_shards(params: &SamplingParams, approx_len: u64, warm_jobs: usize) -> Vec<(u64, u64)> {
    let est_last = approx_len.saturating_sub(1) / params.unit_size;
    let steps = if est_last < params.offset {
        1
    } else {
        (est_last - params.offset) / params.interval + 1
    };
    let n = warm_jobs
        .max(1)
        .min(usize::try_from(steps).unwrap_or(usize::MAX));
    let mut shards = Vec::with_capacity(n);
    for s in 0..n as u64 {
        let lo = params.offset + (steps * s / n as u64) * params.interval;
        let hi = if s + 1 == n as u64 {
            u64::MAX
        } else {
            params.offset + (steps * (s + 1) / n as u64) * params.interval
        };
        shards.push((lo, hi));
    }
    shards
}

/// The warm-start point of the unit at grid index `index` — where a
/// shard covering `[index, ..)` begins consuming the stream in earnest.
fn warm_start_of(params: &SamplingParams, index: u64) -> u64 {
    index
        .saturating_mul(params.unit_size)
        .saturating_sub(params.detailed_warming)
}

/// Monotonic discriminator for temp segment paths, so concurrent runs in
/// one process never collide.
static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Segment paths for one run: siblings of the final store when saving
/// (`<store>.seg<N>`), else under the system temp directory.
fn segment_paths(n: usize, final_store: Option<&Path>) -> Vec<PathBuf> {
    let seq = SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed);
    (0..n)
        .map(|s| match final_store {
            Some(path) => {
                let mut os = path.as_os_str().to_os_string();
                os.push(format!(".seg{s}"));
                PathBuf::from(os)
            }
            None => std::env::temp_dir().join(format!(
                "smarts-warmshard-{}-{seq}-{s}.seg",
                std::process::id()
            )),
        })
        .collect()
}

/// Removes the segment files on scope exit — including error and
/// cancellation paths, so a failed run leaves no temp litter.
struct RemoveOnDrop(Vec<PathBuf>);

impl Drop for RemoveOnDrop {
    fn drop(&mut self) {
        for path in &self.0 {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The exact serial warming state at one shard boundary: what the next
/// shard's stitch drive resumes from.
struct Handoff<F: Isa> {
    snapshot: EngineSnapshot<F>,
    warm: WarmState,
}

/// One shard's phase-1 product.
struct SegmentOutput<F: Isa> {
    grid_start: u64,
    grid_end: u64,
    path: PathBuf,
    /// Units recorded in the segment.
    units: u64,
    /// Instructions this shard executed (fast-forward + warming).
    instructions: u64,
    wall: Duration,
    /// The shard-local state at the successor's warm-start point; `None`
    /// for the last shard, or when the shard was cancelled or errored
    /// before completing its range.
    handoff: Option<Handoff<F>>,
    write_error: Option<CkptError>,
}

/// Phase 1: produce every shard's segment in parallel.
fn produce_segments<F: Frontend>(
    sim: &SmartsSim,
    loaded: &Loaded<F>,
    name: &str,
    params: &SamplingParams,
    shards: &[(u64, u64)],
    paths: &[PathBuf],
    cancel: &CancelToken,
) -> Result<Vec<SegmentOutput<F>>, ExecError> {
    let cfg = sim.config();
    // Segment headers only need the right warm fingerprint for reopening;
    // their meta is never consulted again — but the frontend tag must
    // match or the typed-append guard rejects the shard's checkpoints.
    let meta = StoreMeta {
        params: *params,
        benchmark: name.to_string(),
        scale: 1.0,
        isa: F::ID,
    };
    let n = shards.len();
    let outputs = run_workers(n, |s| -> Result<SegmentOutput<F>, ExecError> {
        let t0 = Instant::now();
        let (grid_start, grid_end) = shards[s];
        let path = paths[s].clone();
        let mut writer = CkptWriter::create(&path, cfg, &meta)?;
        let mut engine = FunctionalEngine::new(loaded.clone());
        let mut warm = WarmState::new(cfg);
        if s > 0 {
            // Leapfrog: only shard 0 pays warmed-rate execution for the
            // stream prefix; everyone else fast-forwards plainly.
            engine.fast_forward(warm_start_of(params, grid_start));
        }
        let mut write_error: Option<CkptError> = None;
        let summary = stream_checkpoints_range(
            &mut engine,
            &mut warm,
            params,
            grid_start,
            grid_end,
            None,
            &mut |checkpoint| {
                if cancel.is_cancelled() {
                    return false;
                }
                match writer.append(&checkpoint) {
                    Ok(()) => true,
                    Err(e) => {
                        write_error = Some(e);
                        false
                    }
                }
            },
        );
        let mut handoff = None;
        if s + 1 < n && write_error.is_none() && !summary.stopped {
            // Continue warming to the successor's start point. If the
            // stream already halted this is a no-op on an exact final
            // state — the successor's segment is empty anyway.
            let target = warm_start_of(params, grid_end);
            match params.warming {
                Warming::None => engine.fast_forward(target),
                Warming::Functional => engine.fast_forward_warming(target, &mut warm),
            };
            handoff = Some(Handoff {
                snapshot: engine.snapshot(),
                warm: warm.clone(),
            });
        }
        // Cancelled or errored shards still finish their writer: every
        // record already appended is CRC-intact on disk, so each segment
        // independently honors the salvaged-prefix contract.
        match writer.finish() {
            Ok(_) => {}
            Err(e) => {
                write_error.get_or_insert(e);
            }
        }
        Ok(SegmentOutput {
            grid_start,
            grid_end,
            path,
            units: summary.emitted,
            instructions: engine.position(),
            wall: t0.elapsed(),
            handoff,
            write_error,
        })
    })?;
    outputs.into_iter().collect()
}

/// Why the merge stopped streaming units, if it stopped early.
enum MergeStop {
    /// `max_units` reached — a normal, successful end.
    Cap,
    /// The replay side went away (cancellation without a store to
    /// salvage, or consumer death — the pool surfaces the panic).
    ConsumersGone,
    /// A store error; the run fails with it.
    Failed(ExecError),
}

/// Phase-2 sink: tees each proven-serial flat into the final store (when
/// saving) and offers its checkpoint to the replay channel.
struct Merge<'a, 'b, F: Isa> {
    cfg: &'a MachineConfig,
    cancel: &'a CancelToken,
    cap: Option<u64>,
    sink: Option<CkptWriter>,
    emit: &'a mut (dyn FnMut(UnitCheckpoint<F>) -> bool + 'b),
    emitted: u64,
    /// Cancelled with a store attached: keep splicing provable records
    /// into the final store (cheap, salvageable) without offering them
    /// to the dead replay channel.
    salvage_only: bool,
    stop: Option<MergeStop>,
}

impl<F: Isa> Merge<'_, '_, F> {
    /// Streams one proven-serial unit. `checkpoint` carries the live
    /// re-warmed checkpoint when the stitcher has one; spliced tail
    /// units rebuild from the flat. Returns `false` once the merge must
    /// stop (reason recorded in `self.stop`).
    fn offer(&mut self, flat: FlatCheckpoint, checkpoint: Option<UnitCheckpoint<F>>) -> bool {
        if self.stop.is_some() {
            return false;
        }
        if self.cap.is_some_and(|cap| self.emitted >= cap) {
            self.stop = Some(MergeStop::Cap);
            return false;
        }
        let replay = if self.salvage_only {
            None
        } else {
            match checkpoint {
                Some(c) => Some(c),
                None => match flat.rebuild_isa::<F>(self.cfg) {
                    Ok(c) => Some(c),
                    Err(detail) => {
                        self.stop =
                            Some(MergeStop::Failed(ExecError::Ckpt(CkptError::Corrupted {
                                record: self.emitted,
                                detail,
                            })));
                        return false;
                    }
                },
            }
        };
        if let Some(writer) = self.sink.as_mut() {
            if let Err(e) = writer.append_flat(flat) {
                self.stop = Some(MergeStop::Failed(ExecError::Ckpt(e)));
                return false;
            }
        }
        self.emitted += 1;
        if let Some(checkpoint) = replay {
            if !self.emit(checkpoint) {
                if self.cancel.is_cancelled() && self.sink.is_some() {
                    self.salvage_only = true;
                } else {
                    self.stop = Some(MergeStop::ConsumersGone);
                    return false;
                }
            }
        }
        true
    }

    fn emit(&mut self, checkpoint: UnitCheckpoint<F>) -> bool {
        (self.emit)(checkpoint)
    }

    fn fail(&mut self, error: ExecError) {
        if self.stop.is_none() {
            self.stop = Some(MergeStop::Failed(error));
        }
    }
}

/// What a stitched shard passes to its successor.
enum NextStart<F: Isa> {
    /// Fixpoint found: the shard's own phase-1 handoff is behaviorally
    /// serial, so the successor resumes from it at no extra cost.
    Phase1,
    /// No fixpoint: the stitcher carried its exact engine to the
    /// boundary itself.
    Fallback(Box<Handoff<F>>),
    /// The segment ended early (cancelled shard) — nothing downstream is
    /// provable, stop the merge here.
    None,
}

/// Phase 2 for one shard `s >= 1`: re-warm its leading units from the
/// predecessor's exact serial state until the canonical flats converge,
/// then splice the segment tail verbatim. Returns the successor's start
/// state plus (units re-warmed, instructions re-executed).
fn stitch_shard<F: Frontend>(
    merge: &mut Merge<'_, '_, F>,
    params: &SamplingParams,
    program: &F::Program,
    seg: &SegmentOutput<F>,
    prev: Handoff<F>,
) -> (NextStart<F>, u64, u64) {
    let mut reader = match CkptReader::open(&seg.path, merge.cfg) {
        Ok(r) => r,
        Err(e) => {
            merge.fail(ExecError::Ckpt(e));
            return (NextStart::None, 0, 0);
        }
    };
    let mut engine = FunctionalEngine::from_snapshot(program.clone(), prev.snapshot);
    let mut warm = prev.warm;
    let pos0 = engine.position();
    let mut fixpoint = false;
    let mut exhausted = false;
    let mut rewarmed = 0u64;
    stream_checkpoints_range(
        &mut engine,
        &mut warm,
        params,
        seg.grid_start,
        seg.grid_end,
        None,
        &mut |checkpoint| {
            let seg_flat = match reader.next_flat() {
                // The segment is a strict prefix of the shard's range —
                // only cancellation truncates it. Stop at the prefix.
                None => {
                    exhausted = true;
                    return false;
                }
                Some(Ok(flat)) => flat,
                Some(Err(e)) => {
                    merge.fail(ExecError::Ckpt(e));
                    return false;
                }
            };
            let re_flat = FlatCheckpoint::flatten(&checkpoint);
            if re_flat == seg_flat {
                // Convergence: truncated and serial warming histories
                // now serialize identically, so this unit and every
                // later segment record are proven serial.
                fixpoint = true;
                merge.offer(re_flat, Some(checkpoint));
                return false;
            }
            rewarmed += 1;
            merge.offer(re_flat, Some(checkpoint))
        },
    );
    let mut rewarm_instructions = engine.position() - pos0;
    if merge.stop.is_some() || exhausted {
        return (NextStart::None, rewarmed, rewarm_instructions);
    }
    if fixpoint {
        // Splice the rest of the segment verbatim.
        while let Some(next) = reader.next_flat() {
            match next {
                Ok(flat) => {
                    if !merge.offer(flat, None) {
                        break;
                    }
                }
                Err(e) => {
                    merge.fail(ExecError::Ckpt(e));
                    break;
                }
            }
        }
        (NextStart::Phase1, rewarmed, rewarm_instructions)
    } else {
        // Every unit was re-warmed (or the shard was empty). The
        // shard-local handoff proves nothing, so carry the exact engine
        // to the boundary ourselves — correct, just without speedup.
        if seg.grid_end == u64::MAX || merge.cancel.is_cancelled() {
            return (NextStart::None, rewarmed, rewarm_instructions);
        }
        let target = warm_start_of(params, seg.grid_end);
        match params.warming {
            Warming::None => engine.fast_forward(target),
            Warming::Functional => engine.fast_forward_warming(target, &mut warm),
        };
        rewarm_instructions = engine.position() - pos0;
        (
            NextStart::Fallback(Box::new(Handoff {
                snapshot: engine.snapshot(),
                warm,
            })),
            rewarmed,
            rewarm_instructions,
        )
    }
}

/// Everything the producer thread returns from one sharded-warm run.
struct ShardedProduct {
    emitted: u64,
    producer_wall: Duration,
    stats: ShardWarmStats,
    error: Option<ExecError>,
}

/// The producer body: phase 1 (parallel segments) then phase 2 (stitch
/// and splice), streaming each proven unit into the replay channel.
#[allow(clippy::too_many_arguments)]
fn produce_sharded<F: Frontend>(
    sim: &SmartsSim,
    loaded: &Loaded<F>,
    name: &str,
    params: &SamplingParams,
    shards: &[(u64, u64)],
    paths: &[PathBuf],
    cancel: &CancelToken,
    sink: Option<CkptWriter>,
    emit: &mut dyn FnMut(UnitCheckpoint<F>) -> bool,
) -> (ShardedProduct, Option<CkptWriter>) {
    let t0 = Instant::now();
    let mut stats = ShardWarmStats {
        warm_jobs: shards.len(),
        ..ShardWarmStats::default()
    };
    let outputs = match produce_segments::<F>(sim, loaded, name, params, shards, paths, cancel) {
        Ok(outputs) => outputs,
        Err(e) => {
            return (
                ShardedProduct {
                    emitted: 0,
                    producer_wall: t0.elapsed(),
                    stats,
                    error: Some(e),
                },
                sink,
            )
        }
    };
    stats.warm_wall = t0.elapsed();
    for output in &outputs {
        stats.shard_units.push(output.units);
        stats.shard_instructions.push(output.instructions);
        stats.shard_walls.push(output.wall);
        stats.fixpoints.push(0);
    }

    let stitch_t = Instant::now();
    let program = loaded.program.clone();
    let mut merge = Merge {
        cfg: sim.config(),
        cancel,
        cap: params.max_units,
        sink,
        emit,
        emitted: 0,
        salvage_only: false,
        stop: None,
    };
    // A cancelled shard legitimately stops mid-write; any other write
    // error fails the run.
    let mut outputs = outputs;
    if !cancel.is_cancelled() {
        if let Some(e) = outputs.iter_mut().find_map(|o| o.write_error.take()) {
            merge.fail(ExecError::Ckpt(e));
        }
    }
    let mut prev: Option<Handoff<F>> = None;
    for (s, seg) in outputs.into_iter().enumerate() {
        if merge.stop.is_some() {
            break;
        }
        if s == 0 {
            // The serial prefix: stream verbatim.
            match CkptReader::open(&seg.path, merge.cfg) {
                Ok(mut reader) => {
                    while let Some(next) = reader.next_flat() {
                        match next {
                            Ok(flat) => {
                                if !merge.offer(flat, None) {
                                    break;
                                }
                            }
                            Err(e) => {
                                merge.fail(ExecError::Ckpt(e));
                                break;
                            }
                        }
                    }
                }
                Err(e) => merge.fail(ExecError::Ckpt(e)),
            }
            prev = seg.handoff;
            continue;
        }
        let Some(handoff) = prev.take() else {
            // Predecessor could not prove the boundary state (cancelled
            // mid-range): nothing downstream is stitchable.
            break;
        };
        let (next, rewarmed, instructions) =
            stitch_shard::<F>(&mut merge, params, &program, &seg, handoff);
        stats.fixpoints[s] = rewarmed;
        stats.rewarm_instructions += instructions;
        prev = match next {
            NextStart::Phase1 => seg.handoff,
            NextStart::Fallback(h) => Some(*h),
            NextStart::None => None,
        };
    }
    stats.stitch_wall = stitch_t.elapsed();
    let error = match merge.stop {
        Some(MergeStop::Failed(e)) => Some(e),
        _ => None,
    };
    (
        ShardedProduct {
            emitted: merge.emitted,
            producer_wall: t0.elapsed(),
            stats,
            error,
        },
        merge.sink,
    )
}

/// Runs one sharded-warm sampling simulation without persisting a store:
/// segments live in the temp directory and are deleted after the merge.
pub(crate) fn sample_sharded_warm(
    executor: &Executor,
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Result<ParallelReport, ExecError> {
    params.validate().map_err(ExecError::Smarts)?;
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let shards = plan_shards(params, bench.approx_len(), executor.warm_jobs());
    let paths = segment_paths(shards.len(), None);
    let _cleanup = RemoveOnDrop(paths.clone());
    let cancel = executor.cancel_token().clone();
    let loaded: Loaded<BuiltinIsa> = bench.load();
    let name = bench.name();
    let program = loaded.program.clone();

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        |emit| {
            produce_sharded::<BuiltinIsa>(
                sim, &loaded, name, params, &shards, &paths, &cancel, None, emit,
            )
        },
        |checkpoint| sim.replay_checkpoint(&program, params, checkpoint),
    )?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let ((product, _sink), run) = run.split();
    if let Some(e) = product.error {
        return Err(e);
    }
    finish_pipeline_report(
        run,
        params,
        jobs,
        depth,
        product.producer_wall,
        product.emitted,
        ParallelMode::ShardedWarm,
        Some(product.stats),
    )
}

/// Runs one sharded-warm sampling simulation while splicing the stitched
/// segments into a final store at `path` — byte-identical to the store a
/// serial `--save-checkpoints` run writes. Generic over the frontend;
/// reached through
/// [`sample_pipeline_saving`](crate::sample_pipeline_saving) and its
/// `_isa` variant when the executor is in sharded-warm mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_sharded_warm_saving_impl<F: Frontend>(
    executor: &Executor,
    sim: &SmartsSim,
    loaded: Loaded<F>,
    name: &str,
    approx_len: u64,
    scale: f64,
    params: &SamplingParams,
    path: impl AsRef<Path>,
) -> Result<SavedSample, ExecError> {
    params.validate().map_err(ExecError::Smarts)?;
    let jobs = executor.jobs();
    let depth = executor.pipeline_depth();
    let meta = StoreMeta {
        params: *params,
        benchmark: name.to_string(),
        scale,
        isa: F::ID,
    };
    // Created before any thread spawns, so an unwritable path fails fast.
    let writer = CkptWriter::create(path.as_ref(), sim.config(), &meta)?;
    let shards = plan_shards(params, approx_len, executor.warm_jobs());
    let paths = segment_paths(shards.len(), Some(path.as_ref()));
    let _cleanup = RemoveOnDrop(paths.clone());
    let cancel = executor.cancel_token().clone();
    let program = loaded.program.clone();

    let run = run_pipeline(
        jobs,
        depth,
        &executor.control(),
        |emit| {
            produce_sharded::<F>(
                sim,
                &loaded,
                name,
                params,
                &shards,
                &paths,
                &cancel,
                Some(writer),
                emit,
            )
        },
        |checkpoint| sim.replay_checkpoint(&program, params, checkpoint),
    )?;
    let ((product, sink), run) = run.split();
    if let Some(e) = product.error {
        return Err(e);
    }
    // A cancelled run still flushes the stitched prefix: every spliced
    // record is provably serial and CRC-intact, so the partial store is
    // a valid salvageable prefix rather than a torn file.
    let write = sink.expect("saving run keeps its writer").finish()?;
    if executor.cancel_token().is_cancelled() {
        return Err(ExecError::Cancelled);
    }
    let report = finish_pipeline_report(
        run,
        params,
        jobs,
        depth,
        product.producer_wall,
        product.emitted,
        ParallelMode::ShardedWarm,
        Some(product.stats),
    )?;
    Ok(SavedSample { report, write })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_core::Warming;

    fn params(approx_len: u64) -> SamplingParams {
        SamplingParams::for_sample_size(approx_len, 1000, 2000, Warming::Functional, 10, 1).unwrap()
    }

    #[test]
    fn shard_plan_lands_on_the_grid_and_covers_it() {
        let p = params(1_000_000);
        for warm_jobs in [1, 2, 3, 4, 8] {
            let shards = plan_shards(&p, 1_000_000, warm_jobs);
            assert!(!shards.is_empty());
            assert!(shards.len() <= warm_jobs);
            assert_eq!(shards[0].0, p.offset);
            assert_eq!(shards.last().unwrap().1, u64::MAX);
            for window in shards.windows(2) {
                assert_eq!(window[0].1, window[1].0, "shards must be contiguous");
            }
            for &(lo, hi) in &shards {
                assert!(lo < hi);
                assert_eq!((lo - p.offset) % p.interval, 0, "boundary off the grid");
            }
        }
    }

    #[test]
    fn shard_plan_clamps_to_the_unit_count() {
        // A stream with ~3 units cannot use 8 shards.
        let p = params(6_000);
        let shards = plan_shards(&p, 6_000, 8);
        assert!(shards.len() <= 6);
        for &(lo, hi) in &shards {
            assert!(lo < hi, "no empty shard ranges");
        }
    }
}

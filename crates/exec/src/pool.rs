//! The worker pool: scoped threads with structured panic propagation.

use std::any::Any;
use std::thread;

use crate::error::ExecError;

/// Renders a panic payload (the `Box<dyn Any>` from `JoinHandle::join`)
/// as a readable message.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(worker_id)` on `jobs` scoped threads and collects every
/// worker's return value in worker order.
///
/// A panicking worker does not abort the others (their results are still
/// joined), but the call then fails with [`ExecError::WorkerPanic`]
/// naming the first worker that died and carrying its panic payload.
pub(crate) fn run_workers<R, F>(jobs: usize, work: F) -> Result<Vec<R>, ExecError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if jobs == 0 {
        return Err(ExecError::ZeroJobs);
    }
    if jobs == 1 {
        // Single-worker runs stay on the calling thread: no spawn cost,
        // and a panic surfaces with the caller's own backtrace — but is
        // still reported structurally for uniformity.
        return match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(0))) {
            Ok(r) => Ok(vec![r]),
            Err(payload) => Err(ExecError::WorkerPanic {
                worker: 0,
                message: panic_message(payload),
            }),
        };
    }
    thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let work = &work;
                scope.spawn(move || work(worker))
            })
            .collect();
        let mut results = Vec::with_capacity(jobs);
        let mut failure = None;
        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    failure.get_or_insert(ExecError::WorkerPanic {
                        worker,
                        message: panic_message(payload),
                    });
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(results),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collects_results_in_worker_order() {
        let results = run_workers(4, |w| w * 10).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_jobs_is_an_error() {
        assert!(matches!(run_workers(0, |w| w), Err(ExecError::ZeroJobs)));
    }

    #[test]
    fn single_worker_runs_inline() {
        let results = run_workers(1, |w| w + 7).unwrap();
        assert_eq!(results, vec![7]);
    }

    #[test]
    fn panic_is_reported_with_worker_and_message() {
        let err = run_workers(3, |w| {
            if w == 1 {
                panic!("unit 17 exploded");
            }
            w
        })
        .unwrap_err();
        match err {
            ExecError::WorkerPanic { worker, message } => {
                assert_eq!(worker, 1);
                assert!(message.contains("unit 17 exploded"));
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn single_worker_panic_is_caught() {
        let err = run_workers(1, |_| -> usize { panic!("inline boom") }).unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanic { worker: 0, .. }));
    }

    #[test]
    fn surviving_workers_complete_despite_a_panic() {
        let completed = AtomicUsize::new(0);
        let _ = run_workers(4, |w| {
            if w == 0 {
                panic!("down");
            }
            completed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(completed.load(Ordering::Relaxed), 3);
    }
}

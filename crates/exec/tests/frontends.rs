//! End-to-end frontend coverage for the persisted-store pipeline: the
//! RISC and trace frontends must run warm → store → sharded warm →
//! sampled replay with the same bit-identity guarantees the built-in
//! frontend has, and a store must refuse replay under the wrong
//! frontend with a typed error.

use smarts_ckpt::{CkptError, IsaId, MappedStore};
use smarts_core::{SamplerSpec, SamplingParams, SmartsSim, Warming};
use smarts_exec::{
    replay_store, replay_store_eager_isa, replay_store_isa, replay_store_mapped_isa,
    replay_store_sampled_isa, sample_pipeline_saving_isa, ExecError, Executor, ParallelMode,
};
use smarts_isa::{write_trace, BuiltinIsa, Cpu, RiscIsa, TraceIsa};
use smarts_workloads::{risc_suite, Frontend};

fn sim() -> SmartsSim {
    SmartsSim::new(smarts_uarch::MachineConfig::eight_way())
}

fn design(approx_len: u64, n: u64) -> SamplingParams {
    SamplingParams::for_sample_size(approx_len, 1000, 2000, Warming::Functional, n, 1).unwrap()
}

fn store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "smarts_frontends_{tag}_{}.ckpt",
        std::process::id()
    ))
}

#[test]
fn risc_pipeline_round_trips_bit_identically_at_any_width() {
    let sim = sim();
    let bench = &risc_suite()[0];
    let name = bench.name().to_string();
    let scale = 0.05;
    let params = design(RiscIsa::approx_len(&name, scale).unwrap(), 10);

    // Reference: serial (jobs=1) warm-and-save through the RISC frontend.
    let ref_path = store_path("risc_ref");
    let reference = sample_pipeline_saving_isa::<RiscIsa>(
        &Executor::new(1).unwrap(),
        &sim,
        &name,
        scale,
        &params,
        &ref_path,
    )
    .unwrap();
    let ref_bytes = std::fs::read(&ref_path).unwrap();
    let (_, meta) = smarts_ckpt::read_store_meta(&ref_path).unwrap();
    assert_eq!(
        meta.isa,
        IsaId::Risc,
        "store header must record the frontend"
    );

    // Warm-and-save and replay are bit-identical at jobs 2 and 8, and the
    // sharded warming pass splices a byte-identical store.
    for jobs in [2usize, 8] {
        let path = store_path(&format!("risc_j{jobs}"));
        let saved = sample_pipeline_saving_isa::<RiscIsa>(
            &Executor::new(jobs).unwrap(),
            &sim,
            &name,
            scale,
            &params,
            &path,
        )
        .unwrap();
        assert_eq!(
            saved.report.report.cpi().mean().to_bits(),
            reference.report.report.cpi().mean().to_bits(),
            "risc live report differs at jobs={jobs}"
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            ref_bytes,
            "risc store bytes differ at jobs={jobs}"
        );
        std::fs::remove_file(&path).ok();

        let sharded_path = store_path(&format!("risc_shard_j{jobs}"));
        let sharded = sample_pipeline_saving_isa::<RiscIsa>(
            &Executor::new(jobs)
                .unwrap()
                .with_mode(ParallelMode::ShardedWarm)
                .with_warm_jobs(jobs),
            &sim,
            &name,
            scale,
            &params,
            &sharded_path,
        )
        .unwrap();
        assert_eq!(
            sharded.report.report.cpi().mean().to_bits(),
            reference.report.report.cpi().mean().to_bits(),
            "sharded risc report differs at warm_jobs={jobs}"
        );
        assert_eq!(
            std::fs::read(&sharded_path).unwrap(),
            ref_bytes,
            "sharded risc store not byte-identical at warm_jobs={jobs}"
        );
        std::fs::remove_file(&sharded_path).ok();
    }

    // Replay from the store matches the live run, lazily and eagerly, at
    // every worker count.
    for jobs in [1usize, 2, 8] {
        let executor = Executor::new(jobs).unwrap();
        let replay = replay_store_isa::<RiscIsa>(&executor, &sim, &ref_path).unwrap();
        assert_eq!(
            replay.report.report.cpi().mean().to_bits(),
            reference.report.report.cpi().mean().to_bits(),
            "risc store replay differs at jobs={jobs}"
        );
        assert_eq!(replay.meta.isa, IsaId::Risc);
        assert!(replay.damage.is_none());
        let eager = replay_store_eager_isa::<RiscIsa>(&executor, &sim, &ref_path).unwrap();
        assert_eq!(
            eager.report.report.cpi().mean().to_bits(),
            replay.report.report.cpi().mean().to_bits(),
            "eager and lazy risc replay disagree at jobs={jobs}"
        );
    }

    // The systematic sampler over the store reproduces the full-store
    // unit set, served through the shared-mapping path.
    let store = MappedStore::open(&ref_path, sim.config()).unwrap();
    for jobs in [1usize, 2, 8] {
        let executor = Executor::new(jobs).unwrap();
        let sampled = replay_store_sampled_isa::<RiscIsa>(
            &executor,
            &sim,
            &store,
            &SamplerSpec::systematic(),
        )
        .unwrap();
        let full = replay_store_mapped_isa::<RiscIsa>(&executor, &sim, &store).unwrap();
        assert_eq!(
            sampled.report.report.cpi().mean().to_bits(),
            full.report.report.cpi().mean().to_bits(),
            "sampled risc replay differs from full replay at jobs={jobs}"
        );
        assert_eq!(sampled.measured.len() as u64, full.records);
    }

    // Replaying a RISC store through the built-in frontend is refused
    // before any record is decoded.
    let err = replay_store(&Executor::new(2).unwrap(), &sim, &ref_path).unwrap_err();
    match err {
        ExecError::Ckpt(CkptError::IsaMismatch { expected, found }) => {
            assert_eq!(expected, IsaId::Builtin);
            assert_eq!(found, IsaId::Risc);
        }
        other => panic!("expected IsaMismatch, got {other:?}"),
    }
    drop(store);
    std::fs::remove_file(&ref_path).ok();
}

#[test]
fn trace_import_runs_the_full_pipeline() {
    let sim = sim();

    // Record a trace of a small built-in run, then treat the file as the
    // workload for the trace frontend.
    let loaded = BuiltinIsa::resolve("loopy-1", 0.02).unwrap();
    let mut cpu = Cpu::new();
    let mut mem = loaded.memory.clone();
    let mut records = Vec::new();
    while !cpu.halted() {
        records.push(cpu.step(&loaded.program, &mut mem).unwrap());
    }
    let trace_path = std::env::temp_dir().join(format!(
        "smarts_frontends_trace_{}.smartstr",
        std::process::id()
    ));
    write_trace(&trace_path, "loopy-1", &records).unwrap();
    let workload = trace_path.to_str().unwrap();

    let params = design(TraceIsa::approx_len(workload, 1.0).unwrap(), 8);
    let ref_path = store_path("trace_ref");
    let reference = sample_pipeline_saving_isa::<TraceIsa>(
        &Executor::new(1).unwrap(),
        &sim,
        workload,
        1.0,
        &params,
        &ref_path,
    )
    .unwrap();
    let (_, meta) = smarts_ckpt::read_store_meta(&ref_path).unwrap();
    assert_eq!(meta.isa, IsaId::Trace);
    assert_eq!(
        meta.benchmark, workload,
        "trace stores record the file path"
    );

    for jobs in [2usize, 8] {
        let replay =
            replay_store_isa::<TraceIsa>(&Executor::new(jobs).unwrap(), &sim, &ref_path).unwrap();
        assert_eq!(
            replay.report.report.cpi().mean().to_bits(),
            reference.report.report.cpi().mean().to_bits(),
            "trace store replay differs at jobs={jobs}"
        );
        assert!(replay.damage.is_none());
    }

    // Wrong-frontend replay of a trace store is refused with the typed
    // mismatch, naming both sides.
    let err = replay_store_isa::<RiscIsa>(&Executor::new(1).unwrap(), &sim, &ref_path).unwrap_err();
    match err {
        ExecError::Ckpt(CkptError::IsaMismatch { expected, found }) => {
            assert_eq!(expected, IsaId::Risc);
            assert_eq!(found, IsaId::Trace);
        }
        other => panic!("expected IsaMismatch, got {other:?}"),
    }

    // Deleting the trace breaks replay resolution with the frontend's own
    // message — the store alone is not enough for a trace workload.
    std::fs::remove_file(&trace_path).unwrap();
    let err =
        replay_store_isa::<TraceIsa>(&Executor::new(1).unwrap(), &sim, &ref_path).unwrap_err();
    assert!(
        matches!(err, ExecError::Frontend(_)),
        "expected ExecError::Frontend, got {err:?}"
    );
    std::fs::remove_file(&ref_path).ok();
}

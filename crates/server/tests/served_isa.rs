//! End-to-end frontend coverage for the job server: a `risc` job must
//! serve the exact canonical bytes of a one-shot `_isa` pipeline run,
//! resubmits must come back from the results cache unchanged, and a
//! builtin job for the same benchmark/design must resolve to a distinct
//! store and cache entry (the fingerprint folds the frontend tag).

use smarts_ckpt::IsaId;
use smarts_core::SmartsSim;
use smarts_exec::{sample_pipeline_saving_isa, Executor};
use smarts_isa::{BuiltinIsa, RiscIsa};
use smarts_server::{
    canonical_report_line, machine_for, params_for, Client, JobSpec, Server, ServerConfig,
};
use smarts_workloads::risc_suite;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smarts_served_isa_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn served_risc_job_matches_a_one_shot_run_and_keys_its_own_cache() {
    let store_dir = temp_dir("store");
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());

    let bench = risc_suite()[0].name().to_string();
    let spec = JobSpec {
        bench: bench.clone(),
        isa: IsaId::Risc,
        scale: 0.05,
        n: 10,
        jobs: 2,
        ..JobSpec::default()
    };

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(&spec).unwrap();
    assert_eq!(client.wait(&job).unwrap(), "done");
    let (source, served) = client.result(&job).unwrap();
    assert_eq!(source, "cold");

    // One-shot reference through the same exec entry point the CLI uses.
    let cfg = machine_for(&spec);
    let params = params_for(&spec, &cfg).unwrap();
    let sim = SmartsSim::new(cfg);
    let one_shot = temp_dir("oneshot").join("risc.ckpt");
    let saved = sample_pipeline_saving_isa::<RiscIsa>(
        &Executor::new(2).unwrap(),
        &sim,
        &bench,
        spec.scale,
        &params,
        &one_shot,
    )
    .unwrap();
    assert_eq!(
        served,
        canonical_report_line(&saved.report.report),
        "served risc report is not byte-identical to the one-shot run"
    );

    // Resubmit: answered from the results cache with the same bytes.
    let again = client.submit(&spec).unwrap();
    assert_eq!(client.wait(&again).unwrap(), "done");
    let (source, cached) = client.result(&again).unwrap();
    assert_eq!(source, "cache");
    assert_eq!(cached, served);

    // The same benchmark and design under the builtin frontend is a
    // different store identity: it must run (not hit the risc cache)
    // and serve the builtin one-shot bytes.
    let builtin_spec = JobSpec {
        isa: IsaId::Builtin,
        ..spec.clone()
    };
    let job = client.submit(&builtin_spec).unwrap();
    assert_eq!(client.wait(&job).unwrap(), "done");
    let (source, builtin_served) = client.result(&job).unwrap();
    assert_eq!(source, "cold", "builtin job must not reuse the risc store");
    let builtin_one_shot = temp_dir("oneshot").join("builtin.ckpt");
    let builtin_saved = sample_pipeline_saving_isa::<BuiltinIsa>(
        &Executor::new(2).unwrap(),
        &sim,
        &bench,
        spec.scale,
        &params,
        &builtin_one_shot,
    )
    .unwrap();
    assert_eq!(
        builtin_served,
        canonical_report_line(&builtin_saved.report.report)
    );

    // A trace submit is refused at the protocol boundary.
    let err = client
        .round_trip(&format!(
            r#"{{"cmd":"submit","bench":"{bench}","isa":"trace"}}"#
        ))
        .unwrap();
    assert!(err.contains(r#""ok":false"#), "got: {err}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(temp_dir("oneshot")).ok();
}

//! The job table: ids, states, progress, and the scheduler hand-off.
//!
//! One shared [`JobTable`] sits between connection handlers (which
//! submit, query, watch, and cancel) and scheduler workers (which claim
//! queued jobs and drive them to a terminal state). All coordination is
//! a single mutex plus one condvar; every mutation bumps a sequence
//! number so watchers can block for "anything changed since seq X"
//! without polling.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use smarts_exec::CancelToken;

use crate::proto::JobSpec;

/// Lifecycle of a job. Legal transitions:
/// `Queued → Warming → Replaying → Done`, with `Failed` reachable from
/// any live state and `Cancelled` from `Queued`/`Warming`/`Replaying`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is fast-forwarding/functionally warming (producing
    /// checkpoints, or waiting on another job's warming pass).
    Warming,
    /// Checkpoints exist; detailed replay is consuming them.
    Replaying,
    /// Finished; the result is available.
    Done,
    /// Terminated with an error (recorded in the job's `error`).
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Protocol name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Warming => "warming",
            JobState::Replaying => "replaying",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Where a finished job's report came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// This job ran the warming pass itself.
    Cold,
    /// Replayed from a store another job (or prior run) warmed.
    Store,
    /// Served from the in-memory results cache without any simulation.
    Cache,
}

impl ResultSource {
    /// Protocol name of the source.
    pub fn name(self) -> &'static str {
        match self {
            ResultSource::Cold => "cold",
            ResultSource::Store => "store",
            ResultSource::Cache => "cache",
        }
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-assigned id (`j-1`, `j-2`, …).
    pub id: String,
    /// What was submitted.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Checkpoints emitted so far by this job's pipeline.
    pub emitted: u64,
    /// Units replayed so far by this job's pipeline.
    pub replayed: u64,
    /// Terminal error message, for `Failed`.
    pub error: Option<String>,
    /// Where the result came from, once `Done`.
    pub source: Option<ResultSource>,
    /// Canonical report line, once `Done`. Shared so serving a result
    /// to N watchers is N reference bumps, not N copies.
    pub result: Option<Arc<String>>,
    /// Cancellation flag shared with the running pipeline.
    pub cancel: CancelToken,
}

struct TableInner {
    jobs: HashMap<String, JobRecord>,
    /// Submission order of still-queued job ids (FIFO claim order).
    queue: VecDeque<String>,
    next_id: u64,
    /// Bumped on every mutation; watchers block on it.
    seq: u64,
    /// Set once shutdown begins: submissions are refused and
    /// `claim_next` returns `None` immediately so workers exit.
    closed: bool,
}

/// Shared, thread-safe job registry.
pub struct JobTable {
    inner: Mutex<TableInner>,
    changed: Condvar,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        JobTable {
            inner: Mutex::new(TableInner {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                seq: 0,
                closed: false,
            }),
            changed: Condvar::new(),
        }
    }

    fn bump(&self, inner: &mut TableInner) {
        inner.seq += 1;
        self.changed.notify_all();
    }

    /// Accepts a job, returning its id, or `None` if shutting down.
    pub fn submit(&self, spec: JobSpec) -> Option<String> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        if inner.closed {
            return None;
        }
        let id = format!("j-{}", inner.next_id);
        inner.next_id += 1;
        let record = JobRecord {
            id: id.clone(),
            spec,
            state: JobState::Queued,
            emitted: 0,
            replayed: 0,
            error: None,
            source: None,
            result: None,
            cancel: CancelToken::new(),
        };
        inner.jobs.insert(id.clone(), record);
        inner.queue.push_back(id.clone());
        self.bump(&mut inner);
        Some(id)
    }

    /// Blocks until a queued job is available (returning a claim) or the
    /// table closes (returning `None`). Cancelled-while-queued jobs are
    /// finalized here rather than handed to a worker.
    pub fn claim_next(&self) -> Option<(String, JobSpec, CancelToken)> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        loop {
            while let Some(id) = inner.queue.pop_front() {
                let Some(record) = inner.jobs.get_mut(&id) else {
                    continue;
                };
                if record.cancel.is_cancelled() {
                    record.state = JobState::Cancelled;
                    self.bump(&mut inner);
                    continue;
                }
                record.state = JobState::Warming;
                let claim = (id, record.spec.clone(), record.cancel.clone());
                self.bump(&mut inner);
                return Some(claim);
            }
            if inner.closed {
                return None;
            }
            inner = self.changed.wait(inner).expect("job table poisoned");
        }
    }

    /// Applies a mutation to one job and wakes watchers. Returns `false`
    /// for an unknown id.
    pub fn update<F: FnOnce(&mut JobRecord)>(&self, id: &str, mutate: F) -> bool {
        let mut inner = self.inner.lock().expect("job table poisoned");
        let Some(record) = inner.jobs.get_mut(id) else {
            return false;
        };
        mutate(record);
        self.bump(&mut inner);
        true
    }

    /// Requests cancellation. Idempotent: cancelling a terminal or
    /// already-cancelled job succeeds without effect. Returns the state
    /// observed at the time of the request, or `None` for an unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        let record = inner.jobs.get_mut(id)?;
        let observed = record.state;
        if !observed.is_terminal() {
            record.cancel.cancel();
            if observed == JobState::Queued {
                // Finalize immediately; claim_next also handles the race
                // where a worker claims it first.
                record.state = JobState::Cancelled;
            }
            self.bump(&mut inner);
        }
        Some(observed)
    }

    /// A snapshot of one job, or `None` for an unknown id.
    pub fn get(&self, id: &str) -> Option<JobRecord> {
        let inner = self.inner.lock().expect("job table poisoned");
        inner.jobs.get(id).cloned()
    }

    /// Snapshots of every job, in id order.
    pub fn list(&self) -> Vec<JobRecord> {
        let inner = self.inner.lock().expect("job table poisoned");
        let mut jobs: Vec<JobRecord> = inner.jobs.values().cloned().collect();
        jobs.sort_by_key(|r| {
            r.id.strip_prefix("j-")
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(u64::MAX)
        });
        jobs
    }

    /// The current change sequence number.
    pub fn seq(&self) -> u64 {
        self.inner.lock().expect("job table poisoned").seq
    }

    /// Blocks until the sequence number advances past `seen` or the
    /// timeout lapses; returns the latest sequence number.
    pub fn wait_change(&self, seen: u64, timeout: Duration) -> u64 {
        let mut inner = self.inner.lock().expect("job table poisoned");
        while inner.seq <= seen {
            let (guard, result) = self
                .changed
                .wait_timeout(inner, timeout)
                .expect("job table poisoned");
            inner = guard;
            if result.timed_out() {
                break;
            }
        }
        inner.seq
    }

    /// Begins shutdown: refuses new submissions, wakes idle workers, and
    /// cancels+finalizes still-queued jobs. Returns the ids of the jobs
    /// abandoned in the queue.
    pub fn close(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect("job table poisoned");
        inner.closed = true;
        let abandoned: Vec<String> = inner.queue.drain(..).collect();
        for id in &abandoned {
            if let Some(record) = inner.jobs.get_mut(id) {
                record.cancel.cancel();
                record.state = JobState::Cancelled;
            }
        }
        self.bump(&mut inner);
        abandoned
    }

    /// Whether `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("job table poisoned").closed
    }
}

impl std::fmt::Debug for JobTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("job table poisoned");
        f.debug_struct("JobTable")
            .field("jobs", &inner.jobs.len())
            .field("queued", &inner.queue.len())
            .field("seq", &inner.seq)
            .field("closed", &inner.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str) -> JobSpec {
        JobSpec {
            bench: bench.to_string(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_claim_and_finish_walk_the_state_machine() {
        let table = JobTable::new();
        let id = table.submit(spec("loopy-1")).unwrap();
        assert_eq!(table.get(&id).unwrap().state, JobState::Queued);

        let (claimed, claimed_spec, _token) = table.claim_next().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(claimed_spec.bench, "loopy-1");
        assert_eq!(table.get(&id).unwrap().state, JobState::Warming);

        table.update(&id, |r| {
            r.state = JobState::Done;
            r.source = Some(ResultSource::Cold);
            r.result = Some(Arc::new("{}".to_string()));
        });
        let record = table.get(&id).unwrap();
        assert!(record.state.is_terminal());
        assert_eq!(record.source, Some(ResultSource::Cold));
    }

    #[test]
    fn cancel_is_idempotent_and_finalizes_queued_jobs() {
        let table = JobTable::new();
        let id = table.submit(spec("hashp-2")).unwrap();
        assert_eq!(table.cancel(&id), Some(JobState::Queued));
        assert_eq!(table.get(&id).unwrap().state, JobState::Cancelled);
        // Double-cancel: still answered, no state change.
        assert_eq!(table.cancel(&id), Some(JobState::Cancelled));
        assert_eq!(table.cancel("j-404"), None);
    }

    #[test]
    fn cancelled_queued_jobs_are_not_handed_to_workers() {
        let table = JobTable::new();
        let doomed = table.submit(spec("a")).unwrap();
        let live = table.submit(spec("b")).unwrap();
        table.cancel(&doomed);
        let (claimed, _, _) = table.claim_next().unwrap();
        assert_eq!(claimed, live);
    }

    #[test]
    fn close_abandons_the_queue_and_unblocks_claimers() {
        let table = Arc::new(JobTable::new());
        let id = table.submit(spec("a")).unwrap();
        let abandoned = table.close();
        assert_eq!(abandoned, vec![id.clone()]);
        assert_eq!(table.get(&id).unwrap().state, JobState::Cancelled);
        assert!(table.submit(spec("b")).is_none());
        assert!(table.claim_next().is_none());
    }

    #[test]
    fn wait_change_sees_mutations_and_times_out_quietly() {
        let table = Arc::new(JobTable::new());
        let seen = table.seq();
        // No mutation: times out at the same sequence number.
        assert_eq!(table.wait_change(seen, Duration::from_millis(10)), seen);

        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.wait_change(seen, Duration::from_secs(5)))
        };
        table.submit(spec("a")).unwrap();
        assert!(waiter.join().unwrap() > seen);
    }
}

//! A minimal, dependency-free JSON value: just enough for the wire
//! protocol and the canonical report serialization.
//!
//! Deliberately small rather than general:
//!
//! * objects keep **insertion order** (a `Vec` of pairs, not a map), so
//!   serialization is deterministic — the property the results cache's
//!   byte-identical replies rest on;
//! * integers are carried as `u64`/`i64`, never silently routed through
//!   `f64` — instruction counts and cycle totals must round-trip
//!   exactly;
//! * parse depth is capped so a hostile request line cannot overflow the
//!   stack.

use std::fmt::Write as _;

/// Deepest object/array nesting the parser accepts. Protocol messages
/// are at most a few levels deep; anything deeper is an attack or a bug.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    U64(u64),
    /// A negative integer that fits `i64`.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, accepting only non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `text`, requiring that nothing but
/// whitespace follows it.
///
/// # Errors
///
/// Returns a human-readable message on malformed input, trailing
/// garbage, or nesting deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    let Some(&first) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match first {
        b'{' => parse_object(bytes, pos, depth),
        b'[' => parse_array(bytes, pos, depth),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {:?} at {}", other as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes[*pos] == b'-' {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number `{text}`"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                return Err("lone high surrogate".to_string());
                            }
                        } else {
                            char::from_u32(code).ok_or("bad unicode escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-walk the UTF-8 sequence starting at this byte.
                let start = *pos - 1;
                let len = utf8_len(b)?;
                let end = start + len;
                let slice = bytes.get(start..end).ok_or("truncated UTF-8")?;
                let s = std::str::from_utf8(slice).map_err(|_| "bad UTF-8".to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("bad UTF-8 lead byte".to_string()),
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or("truncated \\u escape".to_string())?;
    let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
    let code = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let value = Json::obj(vec![
            ("cmd", Json::Str("submit".into())),
            ("bench", Json::Str("hashp-2".into())),
            ("n", Json::U64(100)),
            ("scale", Json::F64(0.25)),
            ("warming", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::U64(1), Json::Null])),
        ]);
        let line = value.to_line();
        assert_eq!(parse(&line).unwrap(), value);
        assert_eq!(
            line,
            r#"{"cmd":"submit","bench":"hashp-2","n":100,"scale":0.25,"warming":true,"tags":[1,null]}"#
        );
    }

    #[test]
    fn integers_round_trip_exactly() {
        let huge = u64::MAX;
        let line = Json::U64(huge).to_line();
        assert_eq!(parse(&line).unwrap().as_u64(), Some(huge));
        assert_eq!(parse("-42").unwrap(), Json::I64(-42));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" slash \\ newline \n tab \t nul \u{0001} snow ☃";
        let line = Json::Str(s.to_string()).to_line();
        assert_eq!(parse(&line).unwrap().as_str(), Some(s));
        assert_eq!(parse(r#""\u2603""#).unwrap().as_str(), Some("☃"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}garbage",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "parsed: {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let value = parse(r#"{"a":1,"b":"x","c":false,"d":2.5}"#).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(value.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(value.get("c").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("d").and_then(Json::as_f64), Some(2.5));
        assert!(value.get("missing").is_none());
    }
}

//! The `smarts-server` binary: bind, serve, drain on signal.
//!
//! ```text
//! smarts-server [--listen ADDR] [--store-dir DIR] [--workers N]
//!               [--max-open-stores N] [--port-file PATH]
//! ```
//!
//! `--port-file` writes the actually-bound port (one line) after bind —
//! the supervisor-friendly way to use an ephemeral port (`--listen
//! 127.0.0.1:0`). SIGINT/SIGTERM begin a graceful drain: in-flight jobs
//! finish, still-queued jobs are abandoned, and the process exits
//! nonzero if any job was abandoned.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use smarts_server::{Server, ServerConfig};

/// Signal plumbing: a process-wide flag set by SIGINT/SIGTERM.
///
/// The workspace is dependency-free, so instead of a signal crate this
/// declares the two C-runtime symbols it needs. The handler only
/// stores to an atomic — the async-signal-safe subset.
#[allow(unsafe_code)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Installs handlers for SIGINT and SIGTERM.
    pub fn install() {
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler only performs an atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

struct Args {
    config: ServerConfig,
    port_file: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => config.addr = value("--listen")?,
            "--store-dir" => config.store_dir = PathBuf::from(value("--store-dir")?),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| (1..=256).contains(&w))
                    .ok_or("--workers takes a count in 1..=256")?;
            }
            "--max-open-stores" => {
                config.max_open_stores = value("--max-open-stores")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=1024).contains(&n))
                    .ok_or("--max-open-stores takes a count in 1..=1024")?;
            }
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file")?)),
            "--help" | "-h" => {
                return Err("usage: smarts-server [--listen ADDR] [--store-dir DIR] \
                     [--workers N] [--max-open-stores N] [--port-file PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args { config, port_file })
}

fn run() -> Result<i32, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    signals::install();
    let server = Server::bind(&args.config)?;
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| format!("cannot write port file {}: {e}", path.display()))?;
    }
    eprintln!(
        "smarts-server listening on {addr} (stores in {}, {} workers)",
        args.config.store_dir.display(),
        args.config.workers.max(1)
    );

    // Relay termination signals to the server's stop flag.
    let stop = server.stop_flag();
    std::thread::spawn(move || loop {
        if signals::requested() {
            stop.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let summary = server.serve()?;
    if summary.abandoned.is_empty() {
        eprintln!("smarts-server drained cleanly");
        Ok(0)
    } else {
        eprintln!(
            "smarts-server abandoned {} queued job(s): {}",
            summary.abandoned.len(),
            summary.abandoned.join(", ")
        );
        Ok(1)
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("smarts-server: {message}");
            std::process::exit(2);
        }
    }
}

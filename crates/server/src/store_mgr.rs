//! The shared checkpoint-store manager: one warming pass per
//! (workload, warm geometry, sampling design), no matter how many jobs
//! ask for it concurrently.
//!
//! Store identity is [`StoreMeta::fingerprint`] — the warm-geometry
//! fingerprint folded with benchmark, scale, and every sampling-design
//! field. The manager maps each fingerprint to one file under its root
//! directory and enforces a *single-producer* discipline:
//!
//! * the first job to ask for an absent store gets a [`StoreTicket::Warm`]
//!   and writes to a `.partial` temp path;
//! * concurrent askers block until the warmer commits (rename to the
//!   final path) or aborts, in which case one of them is promoted to be
//!   the new warmer;
//! * every later asker gets a [`StoreTicket::Replay`] against the
//!   committed file.
//!
//! The rename-on-success protocol makes "final path exists" equivalent
//! to "store is complete": a crash or cancellation can only ever leave
//! a `.partial` file behind, which is a CRC-intact salvageable prefix
//! (see `smarts-ckpt`'s truncation tolerance) but is never served.
//!
//! Committed stores are also held **open** (memory-mapped) across jobs:
//! [`StoreManager::open_store`] returns a shared
//! [`MappedStore`](smarts_ckpt::MappedStore) from a small LRU cache, so
//! repeated replays of a hot store skip the open/validate work and
//! share one zero-copy mapping. A store file never changes after its
//! rename-on-commit (same fingerprint ⇒ byte-identical content), so
//! cached mappings need no invalidation — only LRU eviction when the
//! cap is exceeded.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use smarts_ckpt::{read_store_meta, MappedStore, StoreMeta};
use smarts_exec::CancelToken;
use smarts_uarch::MachineConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreState {
    /// Exactly one job holds the warm ticket and is producing.
    Warming,
    /// The final file exists and is complete.
    Ready,
}

/// Permission to either produce a store or replay an existing one.
#[derive(Debug)]
pub enum StoreTicket {
    /// This job is the single warmer: write checkpoints to `temp`, then
    /// [`StoreManager::commit`] to publish at `final_path` (or
    /// [`StoreManager::abort`] on failure/cancellation).
    Warm {
        /// The store fingerprint this ticket is for.
        fingerprint: u64,
        /// The `.partial` path to write through.
        temp: PathBuf,
        /// The path the store is published at on commit.
        final_path: PathBuf,
    },
    /// The store is already complete: replay from `path`.
    Replay {
        /// The committed store file.
        path: PathBuf,
    },
}

/// Default cap on concurrently open (memory-mapped) stores.
pub const DEFAULT_MAX_OPEN_STORES: usize = 8;

/// The LRU cache of open mappings. `order` holds fingerprints from
/// least- to most-recently used; `stores` owns the shared mappings.
struct OpenStores {
    cap: usize,
    stores: HashMap<u64, Arc<MappedStore>>,
    order: VecDeque<u64>,
}

impl std::fmt::Debug for OpenStores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenStores")
            .field("cap", &self.cap)
            .field("open", &self.order.len())
            .finish()
    }
}

impl OpenStores {
    /// Moves `fingerprint` to the most-recently-used position.
    fn touch(&mut self, fingerprint: u64) {
        if let Some(at) = self.order.iter().position(|&fp| fp == fingerprint) {
            self.order.remove(at);
        }
        self.order.push_back(fingerprint);
    }
}

/// Shared manager for the server's store directory.
#[derive(Debug)]
pub struct StoreManager {
    root: PathBuf,
    states: Mutex<HashMap<u64, StoreState>>,
    changed: Condvar,
    warm_passes: AtomicU64,
    store_hits: AtomicU64,
    open: Mutex<OpenStores>,
    stores_opened: AtomicU64,
    stores_evicted: AtomicU64,
}

impl StoreManager {
    /// Creates a manager over `root`, creating the directory if absent.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the directory cannot be created.
    pub fn new(root: impl AsRef<Path>) -> Result<StoreManager, String> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create store dir {}: {e}", root.display()))?;
        Ok(StoreManager {
            root,
            states: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            warm_passes: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            open: Mutex::new(OpenStores {
                cap: DEFAULT_MAX_OPEN_STORES,
                stores: HashMap::new(),
                order: VecDeque::new(),
            }),
            stores_opened: AtomicU64::new(0),
            stores_evicted: AtomicU64::new(0),
        })
    }

    /// Caps the number of stores held open (memory-mapped) at once.
    /// A cap of zero is clamped to one.
    #[must_use]
    pub fn with_max_open_stores(self, cap: usize) -> StoreManager {
        self.open.lock().expect("open-store cache poisoned").cap = cap.max(1);
        self
    }

    /// The directory stores live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn final_path(&self, fingerprint: u64) -> PathBuf {
        self.root.join(format!("{fingerprint:016x}.ck"))
    }

    fn temp_path(&self, fingerprint: u64) -> PathBuf {
        self.root.join(format!("{fingerprint:016x}.ck.partial"))
    }

    /// Whether the on-disk file at the final path really is the store
    /// `fingerprint` names: readable header whose meta re-fingerprints
    /// (under `cfg`) to the expected value. Guards against unrelated
    /// files, stale formats, and hash-name collisions.
    fn validate_existing(&self, fingerprint: u64, cfg: &MachineConfig) -> bool {
        let path = self.final_path(fingerprint);
        match read_store_meta(&path) {
            Ok((_, meta)) => meta.fingerprint(cfg) == fingerprint,
            Err(_) => false,
        }
    }

    /// Resolves a ticket for the store identified by `meta` + `cfg`.
    /// Blocks while another job holds the warm ticket; returns an error
    /// if `cancel` fires while waiting.
    ///
    /// # Errors
    ///
    /// Only cancellation while waiting for a racing warmer.
    pub fn acquire(
        &self,
        meta: &StoreMeta,
        cfg: &MachineConfig,
        cancel: &CancelToken,
    ) -> Result<StoreTicket, String> {
        let fingerprint = meta.fingerprint(cfg);
        let mut states = self.states.lock().expect("store manager poisoned");
        loop {
            match states.get(&fingerprint) {
                Some(StoreState::Ready) => {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(StoreTicket::Replay {
                        path: self.final_path(fingerprint),
                    });
                }
                Some(StoreState::Warming) => {
                    if cancel.is_cancelled() {
                        return Err("cancelled while waiting for a racing warming pass".into());
                    }
                    let (guard, _) = self
                        .changed
                        .wait_timeout(states, Duration::from_millis(50))
                        .expect("store manager poisoned");
                    states = guard;
                }
                None => {
                    if self.validate_existing(fingerprint, cfg) {
                        // A complete store from a previous server run (or
                        // a pre-seeded directory).
                        states.insert(fingerprint, StoreState::Ready);
                        self.store_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(StoreTicket::Replay {
                            path: self.final_path(fingerprint),
                        });
                    }
                    states.insert(fingerprint, StoreState::Warming);
                    self.warm_passes.fetch_add(1, Ordering::Relaxed);
                    return Ok(StoreTicket::Warm {
                        fingerprint,
                        temp: self.temp_path(fingerprint),
                        final_path: self.final_path(fingerprint),
                    });
                }
            }
        }
    }

    /// Publishes a completed warming pass: renames the temp file to the
    /// final path and wakes waiting racers.
    ///
    /// # Errors
    ///
    /// On rename failure the warm slot is released (racers retry) and
    /// the I/O error message is returned.
    pub fn commit(&self, ticket: &StoreTicket) -> Result<(), String> {
        let StoreTicket::Warm {
            fingerprint,
            temp,
            final_path,
        } = ticket
        else {
            return Ok(());
        };
        let renamed = std::fs::rename(temp, final_path)
            .map_err(|e| format!("cannot publish store {}: {e}", final_path.display()));
        let mut states = self.states.lock().expect("store manager poisoned");
        match renamed {
            Ok(()) => {
                states.insert(*fingerprint, StoreState::Ready);
                self.changed.notify_all();
                Ok(())
            }
            Err(message) => {
                states.remove(fingerprint);
                self.changed.notify_all();
                Err(message)
            }
        }
    }

    /// Releases a warm ticket without publishing: the slot is freed so a
    /// waiting racer can become the new warmer. The `.partial` file is
    /// left on disk — it is a CRC-intact salvageable prefix, and the
    /// next warmer truncates it on create.
    pub fn abort(&self, ticket: &StoreTicket) {
        if let StoreTicket::Warm { fingerprint, .. } = ticket {
            let mut states = self.states.lock().expect("store manager poisoned");
            states.remove(fingerprint);
            self.changed.notify_all();
        }
    }

    /// Returns the shared mapping for a committed store, opening (and
    /// caching) it on first use. Hits touch the LRU order; misses map
    /// the file at `path` and may evict the least-recently-used mapping
    /// past the cap. Eviction only drops the cache's `Arc` — jobs
    /// mid-replay keep their clone alive until they finish.
    ///
    /// Committed store files are immutable (rename-on-commit) and
    /// content-deterministic per fingerprint, so a cached mapping never
    /// goes stale.
    ///
    /// # Errors
    ///
    /// Any `smarts-ckpt` open/validation error, as a message.
    pub fn open_store(
        &self,
        fingerprint: u64,
        path: &Path,
        cfg: &MachineConfig,
    ) -> Result<Arc<MappedStore>, String> {
        let mut open = self.open.lock().expect("open-store cache poisoned");
        if let Some(store) = open.stores.get(&fingerprint).cloned() {
            open.touch(fingerprint);
            return Ok(store);
        }
        let store = Arc::new(
            MappedStore::open(path, cfg)
                .map_err(|e| format!("cannot open store {}: {e}", path.display()))?,
        );
        self.stores_opened.fetch_add(1, Ordering::Relaxed);
        open.stores.insert(fingerprint, Arc::clone(&store));
        open.order.push_back(fingerprint);
        while open.order.len() > open.cap {
            if let Some(oldest) = open.order.pop_front() {
                open.stores.remove(&oldest);
                self.stores_evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(store)
    }

    /// Stores currently held open in the LRU cache.
    pub fn open_stores(&self) -> usize {
        self.open
            .lock()
            .expect("open-store cache poisoned")
            .order
            .len()
    }

    /// Mappings opened (cache misses) since the manager was created.
    pub fn stores_opened(&self) -> u64 {
        self.stores_opened.load(Ordering::Relaxed)
    }

    /// Mappings evicted from the LRU cache since the manager was created.
    pub fn stores_evicted(&self) -> u64 {
        self.stores_evicted.load(Ordering::Relaxed)
    }

    /// Warming passes started since the manager was created.
    pub fn warm_passes(&self) -> u64 {
        self.warm_passes.load(Ordering::Relaxed)
    }

    /// Acquisitions served by an already-complete store.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }
}

/// In-memory results cache: (store fingerprint, machine config, sampler
/// key) → the canonical report line. The store fingerprint pins
/// workload, scale, and the warmed sampling design; the machine config
/// distinguishes detailed cores that share warm state (the
/// replay-many-configs case — same store, different reports); and the
/// sampler key ([`smarts_core::SamplerSpec::cache_key`]) distinguishes
/// unit-selection strategies over the same store — without it, two jobs
/// differing only in sampler, seed, or CI target would alias to one
/// cached line.
#[derive(Debug, Default)]
pub struct ResultsCache {
    entries: Mutex<HashMap<(u64, u32, u64), Arc<String>>>,
    hits: AtomicU64,
}

impl ResultsCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached canonical report line.
    pub fn get(
        &self,
        store_fingerprint: u64,
        config: u32,
        sampler_key: u64,
    ) -> Option<Arc<String>> {
        let cached = self
            .entries
            .lock()
            .expect("results cache poisoned")
            .get(&(store_fingerprint, config, sampler_key))
            .cloned();
        if cached.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        cached
    }

    /// Inserts (or replaces, idempotently — the line is deterministic) a
    /// canonical report line.
    pub fn put(&self, store_fingerprint: u64, config: u32, sampler_key: u64, line: Arc<String>) {
        self.entries
            .lock()
            .expect("results cache poisoned")
            .insert((store_fingerprint, config, sampler_key), line);
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("results cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_ckpt::IsaId;
    use smarts_core::{SamplingParams, Warming};

    fn test_meta() -> StoreMeta {
        StoreMeta {
            params: SamplingParams {
                unit_size: 100,
                detailed_warming: 200,
                warming: Warming::Functional,
                interval: 10,
                offset: 0,
                max_units: None,
            },
            benchmark: "hashp-2".to_string(),
            scale: 1.0,
            isa: IsaId::Builtin,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smarts-storemgr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn first_acquire_warms_then_replays_after_commit() {
        let root = temp_root("basic");
        let mgr = StoreManager::new(&root).unwrap();
        let meta = test_meta();
        let cfg = MachineConfig::eight_way();
        let cancel = CancelToken::new();

        let ticket = mgr.acquire(&meta, &cfg, &cancel).unwrap();
        let StoreTicket::Warm {
            temp, final_path, ..
        } = &ticket
        else {
            panic!("expected a warm ticket, got {ticket:?}");
        };
        assert_eq!(mgr.warm_passes(), 1);
        assert_eq!(mgr.store_hits(), 0);

        // Simulate a warming pass by writing a real (empty) store.
        {
            use smarts_ckpt::CkptWriter;
            let writer = CkptWriter::create(temp, &cfg, &meta).unwrap();
            writer.finish().unwrap();
        }
        mgr.commit(&ticket).unwrap();
        assert!(final_path.exists());
        assert!(!temp.exists());

        match mgr.acquire(&meta, &cfg, &cancel).unwrap() {
            StoreTicket::Replay { path } => assert_eq!(&path, final_path),
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(mgr.warm_passes(), 1);
        assert_eq!(mgr.store_hits(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn abort_promotes_a_racer_to_warmer() {
        let root = temp_root("abort");
        let mgr = Arc::new(StoreManager::new(&root).unwrap());
        let meta = test_meta();
        let cfg = MachineConfig::eight_way();
        let cancel = CancelToken::new();

        let first = mgr.acquire(&meta, &cfg, &cancel).unwrap();
        assert!(matches!(first, StoreTicket::Warm { .. }));

        let racer = {
            let mgr = Arc::clone(&mgr);
            let meta = meta.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || mgr.acquire(&meta, &cfg, &CancelToken::new()).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        mgr.abort(&first);
        let second = racer.join().unwrap();
        assert!(
            matches!(second, StoreTicket::Warm { .. }),
            "racer should inherit the warm ticket, got {second:?}"
        );
        assert_eq!(mgr.warm_passes(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn waiting_racer_honours_cancellation() {
        let root = temp_root("cancelwait");
        let mgr = Arc::new(StoreManager::new(&root).unwrap());
        let meta = test_meta();
        let cfg = MachineConfig::eight_way();

        let _warm = mgr.acquire(&meta, &cfg, &CancelToken::new()).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = mgr.acquire(&meta, &cfg, &cancel).unwrap_err();
        assert!(err.contains("cancelled"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn preexisting_complete_store_is_reused_and_junk_is_not() {
        let root = temp_root("preseed");
        let mgr = StoreManager::new(&root).unwrap();
        let meta = test_meta();
        let cfg = MachineConfig::eight_way();
        let cancel = CancelToken::new();

        // Seed a complete store directly at the final path.
        let fingerprint = meta.fingerprint(&cfg);
        {
            use smarts_ckpt::CkptWriter;
            let writer = CkptWriter::create(mgr.final_path(fingerprint), &cfg, &meta).unwrap();
            writer.finish().unwrap();
        }
        assert!(matches!(
            mgr.acquire(&meta, &cfg, &cancel).unwrap(),
            StoreTicket::Replay { .. }
        ));
        assert_eq!(mgr.warm_passes(), 0);

        // A different design whose final path holds junk must re-warm.
        let mut other = test_meta();
        other.params.offset = 3;
        let other_fp = other.fingerprint(&cfg);
        std::fs::write(mgr.final_path(other_fp), b"not a store").unwrap();
        assert!(matches!(
            mgr.acquire(&other, &cfg, &cancel).unwrap(),
            StoreTicket::Warm { .. }
        ));
        assert_eq!(mgr.warm_passes(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_store_cache_hits_evicts_lru_and_counts() {
        use smarts_ckpt::CkptWriter;
        let root = temp_root("openlru");
        let mgr = StoreManager::new(&root).unwrap().with_max_open_stores(2);
        let cfg = MachineConfig::eight_way();

        // Seed three distinct committed stores.
        let fps: Vec<u64> = (0..3u64)
            .map(|offset| {
                let mut meta = test_meta();
                meta.params.offset = offset;
                let fp = meta.fingerprint(&cfg);
                let writer = CkptWriter::create(mgr.final_path(fp), &cfg, &meta).unwrap();
                writer.finish().unwrap();
                fp
            })
            .collect();
        let path = |fp: u64| mgr.final_path(fp);

        let a = mgr.open_store(fps[0], &path(fps[0]), &cfg).unwrap();
        let a_again = mgr.open_store(fps[0], &path(fps[0]), &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &a_again), "hit must share the mapping");
        assert_eq!(mgr.stores_opened(), 1);
        assert_eq!(mgr.stores_evicted(), 0);

        mgr.open_store(fps[1], &path(fps[1]), &cfg).unwrap();
        assert_eq!(mgr.open_stores(), 2);

        // Touch store 0 so store 1 is now least-recently used, then
        // overflow the cap: store 1 must be the eviction victim.
        mgr.open_store(fps[0], &path(fps[0]), &cfg).unwrap();
        mgr.open_store(fps[2], &path(fps[2]), &cfg).unwrap();
        assert_eq!(mgr.open_stores(), 2);
        assert_eq!(mgr.stores_evicted(), 1);
        assert_eq!(mgr.stores_opened(), 3);

        // Store 0 survived the eviction (still a hit); store 1 did not.
        mgr.open_store(fps[0], &path(fps[0]), &cfg).unwrap();
        assert_eq!(mgr.stores_opened(), 3);
        mgr.open_store(fps[1], &path(fps[1]), &cfg).unwrap();
        assert_eq!(mgr.stores_opened(), 4);
        assert_eq!(mgr.stores_evicted(), 2);

        // A junk file fails to open and is not cached.
        let junk = root.join("junk.ck");
        std::fs::write(&junk, b"not a store").unwrap();
        let err = mgr.open_store(0xdead, &junk, &cfg).unwrap_err();
        assert!(err.contains("cannot open store"), "unexpected error: {err}");
        assert_eq!(mgr.open_stores(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn results_cache_round_trips_and_counts_hits() {
        use smarts_core::SamplerSpec;
        let sys = SamplerSpec::systematic().cache_key();
        let cache = ResultsCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(1, 8, sys).is_none());
        assert_eq!(cache.hits(), 0);
        cache.put(1, 8, sys, Arc::new("line".to_string()));
        assert_eq!(cache.get(1, 8, sys).unwrap().as_str(), "line");
        assert_eq!(cache.hits(), 1);
        // Same store, different detailed core: distinct entry.
        assert!(cache.get(1, 16, sys).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn results_cache_keys_on_the_sampler_spec() {
        use smarts_core::{SamplerKind, SamplerSpec};
        let cache = ResultsCache::new();
        let sys = SamplerSpec::systematic();
        let stratified = SamplerSpec {
            kind: SamplerKind::Stratified,
            ..SamplerSpec::systematic()
        };
        let reseeded = SamplerSpec {
            seed: 1,
            ..stratified
        };
        // Same store and machine, different sampling designs: three
        // distinct entries — the regression this key exists to prevent
        // is a stratified job being answered with the systematic line.
        cache.put(7, 8, sys.cache_key(), Arc::new("sys".to_string()));
        cache.put(7, 8, stratified.cache_key(), Arc::new("strat".to_string()));
        cache.put(7, 8, reseeded.cache_key(), Arc::new("strat-s1".to_string()));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(7, 8, sys.cache_key()).unwrap().as_str(), "sys");
        assert_eq!(
            cache.get(7, 8, stratified.cache_key()).unwrap().as_str(),
            "strat"
        );
        assert_eq!(
            cache.get(7, 8, reseeded.cache_key()).unwrap().as_str(),
            "strat-s1"
        );
        // Systematic specs hash to one stable key regardless of the
        // sampled-only knobs, so pre-existing cache behaviour holds.
        let tuned = SamplerSpec {
            seed: 99,
            strata: 9,
            pilot: 50,
            epsilon: 0.01,
            confidence: 0.95,
            ..SamplerSpec::systematic()
        };
        assert_eq!(tuned.cache_key(), sys.cache_key());
    }

    #[test]
    fn results_cache_keys_on_the_frontend() {
        use smarts_core::SamplerSpec;
        use smarts_uarch::MachineConfig;
        // Same benchmark, scale, and sampling design under a different
        // frontend must be a different store identity: the cache keys on
        // the store fingerprint, and the fingerprint folds the ISA tag
        // for non-builtin frontends. The regression this prevents is a
        // `risc` job being answered with the builtin frontend's line.
        let cfg = MachineConfig::eight_way();
        let builtin = test_meta();
        let risc = StoreMeta {
            isa: IsaId::Risc,
            ..builtin.clone()
        };
        assert_ne!(builtin.fingerprint(&cfg), risc.fingerprint(&cfg));

        let sys = SamplerSpec::systematic().cache_key();
        let cache = ResultsCache::new();
        cache.put(
            builtin.fingerprint(&cfg),
            8,
            sys,
            Arc::new("builtin-line".to_string()),
        );
        assert!(cache.get(risc.fingerprint(&cfg), 8, sys).is_none());
        cache.put(
            risc.fingerprint(&cfg),
            8,
            sys,
            Arc::new("risc-line".to_string()),
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.get(risc.fingerprint(&cfg), 8, sys).unwrap().as_str(),
            "risc-line"
        );
    }
}

//! The TCP front end: accept loop, per-connection line handling, and
//! graceful shutdown.
//!
//! Every connection is one thread running a bounded line reader: bytes
//! accumulate until a newline, lines longer than
//! [`MAX_LINE`](crate::proto::MAX_LINE) are refused and the connection
//! closed. Responses are written back one line each; `watch` streams
//! event lines until the watched job reaches a terminal state.
//!
//! Shutdown (the `shutdown` command, [`Server::stop_flag`], or a signal
//! wired to that flag) drains: the accept loop stops, still-queued jobs
//! are abandoned (cancelled), in-flight jobs run to completion — a
//! cancelled or failed warming pass still flushes its `.partial` store
//! as a salvageable prefix — and only then are connection handlers
//! released, so watchers observe final states.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::jobs::{JobRecord, JobTable};
use crate::json::Json;
use crate::proto::{err_response, ok_response, parse_request, Request, MAX_LINE};
use crate::scheduler::{machine_for, params_for, worker_loop, Shared};
use crate::store_mgr::{ResultsCache, StoreManager};

/// How a server is configured at bind time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Directory for the shared checkpoint stores.
    pub store_dir: PathBuf,
    /// Scheduler worker threads (jobs running concurrently).
    pub workers: usize,
    /// Cap on checkpoint stores held open (memory-mapped) across jobs;
    /// least-recently-used mappings are evicted past the cap.
    pub max_open_stores: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: PathBuf::from("smarts-store"),
            workers: 2,
            max_open_stores: crate::store_mgr::DEFAULT_MAX_OPEN_STORES,
        }
    }
}

/// What a drained server left behind.
#[derive(Debug)]
pub struct ShutdownSummary {
    /// Ids of jobs still queued when shutdown began — cancelled, never
    /// run. A nonzero count is the binary's nonzero-exit condition.
    pub abandoned: Vec<String>,
}

/// A bound server: listener plus scheduler workers, ready to serve.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens the store directory, and starts the
    /// scheduler workers.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the store
    /// directory cannot be created.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot make listener nonblocking: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let shared = Arc::new(Shared {
            jobs: JobTable::new(),
            stores: StoreManager::new(&config.store_dir)?
                .with_max_open_stores(config.max_open_stores),
            cache: ResultsCache::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Ok(Server {
            listener,
            addr,
            shared,
            stop: Arc::new(AtomicBool::new(false)),
            workers,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared scheduler state (job table, stores, cache).
    pub fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// A flag that stops [`Server::serve`] when set — wire signals or a
    /// supervising thread to this.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the accept loop until shutdown is requested, then drains.
    ///
    /// # Errors
    ///
    /// Returns a message on a non-transient accept failure.
    pub fn serve(self) -> Result<ShutdownSummary, String> {
        let conn_stop = Arc::new(AtomicBool::new(false));
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    let stop = Arc::clone(&self.stop);
                    let conn_stop = Arc::clone(&conn_stop);
                    conns.push(std::thread::spawn(move || {
                        // A broken pipe mid-conversation is the peer's
                        // problem, not the server's.
                        let _ = handle_connection(stream, &shared, &stop, &conn_stop);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            conns.retain(|handle| !handle.is_finished());
        }

        // Drain: abandon the queue, let claimed jobs finish, then
        // release connection handlers so watchers saw final states.
        let abandoned = self.shared.jobs.close();
        for worker in self.workers {
            let _ = worker.join();
        }
        conn_stop.store(true, Ordering::SeqCst);
        for conn in conns {
            let _ = conn.join();
        }
        Ok(ShutdownSummary { abandoned })
    }
}

/// Reads newline-delimited requests off one connection until EOF,
/// oversize abuse, or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    stop: &AtomicBool,
    conn_stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Process every complete line already buffered. The length gate
        // comes first: a line past MAX_LINE is refused even when it has
        // fully arrived, and a newline-less buffer past the cap is
        // refused without waiting for one.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            if nl > MAX_LINE {
                write_line(&mut stream, &err_response("request line exceeds 64 KiB"))?;
                return Ok(());
            }
            let line: Vec<u8> = pending.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line[..nl]);
            let keep_going = handle_line(
                text.trim_end_matches('\r'),
                shared,
                stop,
                conn_stop,
                &mut stream,
            )?;
            if !keep_going {
                return Ok(());
            }
        }
        if pending.len() > MAX_LINE {
            write_line(&mut stream, &err_response("request line exceeds 64 KiB"))?;
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if conn_stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// One job's protocol representation (used by `status` and `watch`).
fn job_json(record: &JobRecord) -> Json {
    Json::obj(vec![
        ("job", Json::Str(record.id.clone())),
        ("bench", Json::Str(record.spec.bench.clone())),
        ("state", Json::Str(record.state.name().to_string())),
        (
            "source",
            match record.source {
                None => Json::Null,
                Some(s) => Json::Str(s.name().to_string()),
            },
        ),
        ("emitted", Json::U64(record.emitted)),
        ("replayed", Json::U64(record.replayed)),
        (
            "error",
            match &record.error {
                None => Json::Null,
                Some(e) => Json::Str(e.clone()),
            },
        ),
    ])
}

/// Handles one request line; returns `Ok(false)` to close the
/// connection.
fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    stop: &AtomicBool,
    conn_stop: &AtomicBool,
    stream: &mut TcpStream,
) -> std::io::Result<bool> {
    if line.is_empty() {
        return Ok(true);
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(message) => {
            write_line(stream, &err_response(&message))?;
            return Ok(true);
        }
    };
    match request {
        Request::Ping => write_line(stream, &ok_response(vec![("pong", Json::Bool(true))]))?,
        Request::Submit(spec) => {
            // Validate up front so a bad spec fails the submit, not the
            // job: the scheduler re-derives the same parameters.
            if let Err(message) = params_for(&spec, &machine_for(&spec)) {
                write_line(stream, &err_response(&message))?;
                return Ok(true);
            }
            match shared.jobs.submit(spec) {
                Some(id) => {
                    write_line(stream, &ok_response(vec![("job", Json::Str(id))]))?;
                }
                None => write_line(stream, &err_response("server is shutting down"))?,
            }
        }
        Request::Status(None) => {
            let jobs = Json::Arr(shared.jobs.list().iter().map(job_json).collect());
            write_line(stream, &ok_response(vec![("jobs", jobs)]))?;
        }
        Request::Status(Some(id)) => match shared.jobs.get(&id) {
            Some(record) => {
                let Json::Obj(fields) = job_json(&record) else {
                    unreachable!("job_json builds an object");
                };
                let owned: Vec<(String, Json)> = fields;
                let mut pairs = vec![("ok", Json::Bool(true))];
                // Reuse the job fields at the top level of the reply.
                let line = {
                    let borrowed: Vec<(&str, Json)> =
                        owned.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                    pairs.extend(borrowed);
                    Json::obj(pairs).to_line()
                };
                write_line(stream, &line)?;
            }
            None => write_line(stream, &err_response(&format!("unknown job `{id}`")))?,
        },
        Request::Result(id) => match shared.jobs.get(&id) {
            None => write_line(stream, &err_response(&format!("unknown job `{id}`")))?,
            Some(record) => match (&record.result, record.source) {
                (Some(report), source) => {
                    // Splice the cached canonical line in verbatim —
                    // string concatenation, never re-serialization — so
                    // every path serves byte-identical report bytes.
                    let head = ok_response(vec![
                        ("job", Json::Str(record.id.clone())),
                        (
                            "source",
                            match source {
                                None => Json::Null,
                                Some(s) => Json::Str(s.name().to_string()),
                            },
                        ),
                    ]);
                    let mut line = String::with_capacity(head.len() + report.len() + 12);
                    line.push_str(&head[..head.len() - 1]);
                    line.push_str(",\"report\":");
                    line.push_str(report);
                    line.push('}');
                    write_line(stream, &line)?;
                }
                (None, _) => {
                    write_line(
                        stream,
                        &err_response(&format!(
                            "job `{id}` has no result (state {})",
                            record.state.name()
                        )),
                    )?;
                }
            },
        },
        Request::Watch(id) => {
            if shared.jobs.get(&id).is_none() {
                write_line(stream, &err_response(&format!("unknown job `{id}`")))?;
                return Ok(true);
            }
            let mut seq = 0; // emit the current state immediately
            let mut last: Option<(String, u64, u64)> = None;
            while let Some(record) = shared.jobs.get(&id) {
                let snapshot = (
                    record.state.name().to_string(),
                    record.emitted,
                    record.replayed,
                );
                if last.as_ref() != Some(&snapshot) {
                    last = Some(snapshot);
                    let kind = if record.state.is_terminal() {
                        "end"
                    } else {
                        "progress"
                    };
                    let mut fields = vec![("event", Json::Str(kind.to_string()))];
                    let Json::Obj(job_fields) = job_json(&record) else {
                        unreachable!("job_json builds an object");
                    };
                    let borrowed: Vec<(&str, Json)> = job_fields
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.clone()))
                        .collect();
                    fields.extend(borrowed);
                    write_line(stream, &Json::obj(fields).to_line())?;
                }
                if record.state.is_terminal() {
                    break;
                }
                seq = shared.jobs.wait_change(seq, Duration::from_millis(200));
                if conn_stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
        Request::Cancel(id) => match shared.jobs.cancel(&id) {
            Some(observed) => write_line(
                stream,
                &ok_response(vec![
                    ("job", Json::Str(id)),
                    ("was", Json::Str(observed.name().to_string())),
                ]),
            )?,
            None => write_line(stream, &err_response(&format!("unknown job `{id}`")))?,
        },
        Request::Stats => {
            let jobs = shared.jobs.list();
            let done = jobs.iter().filter(|r| r.result.is_some()).count();
            write_line(
                stream,
                &ok_response(vec![
                    ("jobs", Json::U64(jobs.len() as u64)),
                    ("done", Json::U64(done as u64)),
                    ("warm_passes", Json::U64(shared.stores.warm_passes())),
                    ("store_hits", Json::U64(shared.stores.store_hits())),
                    ("cache_hits", Json::U64(shared.cache.hits())),
                    ("open_stores", Json::U64(shared.stores.open_stores() as u64)),
                    ("stores_opened", Json::U64(shared.stores.stores_opened())),
                    ("stores_evicted", Json::U64(shared.stores.stores_evicted())),
                ]),
            )?;
        }
        Request::Shutdown => {
            write_line(stream, &ok_response(vec![("draining", Json::Bool(true))]))?;
            stop.store(true, Ordering::SeqCst);
        }
    }
    Ok(true)
}

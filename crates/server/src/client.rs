//! A thin blocking client for the line protocol — everything the
//! `smarts` CLI's `submit`/`status`/`cancel` subcommands and the tests
//! need, with raw-byte access to report payloads so byte-identity can
//! be asserted end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::json::Json;
use crate::proto::JobSpec;

/// One connection to a running `smarts-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4617`).
    ///
    /// # Errors
    ///
    /// Returns the connect error message.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // One-line request/response traffic: Nagle buys nothing and
        // costs delayed-ACK stalls.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Client { stream, reader })
    }

    /// Sends one raw line and reads one raw response line.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or server disconnect.
    pub fn round_trip(&mut self, line: &str) -> Result<String, String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("send failed: {e}"))?;
        self.read_line()
    }

    /// Reads the next response line (for `watch` streams).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or server disconnect.
    pub fn read_line(&mut self) -> Result<String, String> {
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response.trim_end().to_string())
    }

    /// Round-trips a request and parses the response, surfacing
    /// protocol-level refusals (`"ok":false`) as errors.
    fn call(&mut self, line: &str) -> Result<Json, String> {
        let response = self.round_trip(line)?;
        let value = crate::json::parse(&response).map_err(|e| format!("bad response: {e}"))?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(value),
            Some(false) => Err(value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string()),
            None => Err(format!("response missing `ok`: {response}")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns a message if the server is unreachable or refuses.
    pub fn ping(&mut self) -> Result<(), String> {
        self.call(r#"{"cmd":"ping"}"#).map(|_| ())
    }

    /// Submits a job, returning its server-assigned id.
    ///
    /// # Errors
    ///
    /// Returns the server's refusal (bad spec, shutting down) verbatim.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<String, String> {
        let mut line = String::from(r#"{"cmd":"submit","#);
        line.push_str(&spec.to_json().to_line()[1..]);
        let response = self.call(&line)?;
        response
            .get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "submit response missing `job`".to_string())
    }

    /// One job's status object, or every job when `job` is `None`.
    ///
    /// # Errors
    ///
    /// Returns the server's refusal (e.g. unknown id).
    pub fn status(&mut self, job: Option<&str>) -> Result<Json, String> {
        match job {
            None => self.call(r#"{"cmd":"status"}"#),
            Some(id) => self.call(
                &Json::obj(vec![
                    ("cmd", Json::Str("status".to_string())),
                    ("job", Json::Str(id.to_string())),
                ])
                .to_line(),
            ),
        }
    }

    /// A finished job's result: `(source, raw canonical report bytes)`.
    ///
    /// The report substring is extracted positionally from the raw
    /// response line — never re-serialized — so callers can compare it
    /// byte-for-byte against other paths.
    ///
    /// # Errors
    ///
    /// Returns the server's refusal (unknown id, no result yet).
    pub fn result(&mut self, job: &str) -> Result<(String, String), String> {
        let line = self.round_trip(
            &Json::obj(vec![
                ("cmd", Json::Str("result".to_string())),
                ("job", Json::Str(job.to_string())),
            ])
            .to_line(),
        )?;
        let value = crate::json::parse(&line).map_err(|e| format!("bad response: {e}"))?;
        if value.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string());
        }
        let source = value
            .get("source")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let marker = ",\"report\":";
        let at = line
            .find(marker)
            .ok_or_else(|| "result response missing `report`".to_string())?;
        let raw = &line[at + marker.len()..line.len() - 1];
        Ok((source, raw.to_string()))
    }

    /// Requests cancellation; returns the job state the server observed.
    ///
    /// # Errors
    ///
    /// Returns the server's refusal (unknown id).
    pub fn cancel(&mut self, job: &str) -> Result<String, String> {
        let response = self.call(
            &Json::obj(vec![
                ("cmd", Json::Str("cancel".to_string())),
                ("job", Json::Str(job.to_string())),
            ])
            .to_line(),
        )?;
        Ok(response
            .get("was")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// Server counters (jobs, warm passes, store hits, cache hits).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or protocol failure.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.call(r#"{"cmd":"stats"}"#)
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or protocol failure.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.call(r#"{"cmd":"shutdown"}"#).map(|_| ())
    }

    /// Streams `watch` events for a job, invoking `on_event` per line,
    /// until the terminal `"end"` event (whose parsed form is
    /// returned).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or a refused watch.
    pub fn watch<F: FnMut(&Json)>(&mut self, job: &str, mut on_event: F) -> Result<Json, String> {
        let first = self.round_trip(
            &Json::obj(vec![
                ("cmd", Json::Str("watch".to_string())),
                ("job", Json::Str(job.to_string())),
            ])
            .to_line(),
        )?;
        let mut line = first;
        loop {
            let value = crate::json::parse(&line).map_err(|e| format!("bad event: {e}"))?;
            if value.get("ok").and_then(Json::as_bool) == Some(false) {
                return Err(value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("watch refused")
                    .to_string());
            }
            on_event(&value);
            if value.get("event").and_then(Json::as_str) == Some("end") {
                return Ok(value);
            }
            line = self.read_line()?;
        }
    }

    /// Blocks until the job reaches a terminal state, polling `status`;
    /// an alternative to `watch` that tolerates reconnects.
    ///
    /// # Errors
    ///
    /// Returns the server's refusal or an I/O failure message.
    pub fn wait(&mut self, job: &str) -> Result<String, String> {
        loop {
            let status = self.status(Some(job))?;
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .ok_or("status response missing `state`")?;
            if matches!(state, "done" | "failed" | "cancelled") {
                return Ok(state.to_string());
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
}

//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one (or, for `watch`, many) response line(s)
//! back. The grammar is deliberately tiny — every message is a JSON
//! object, requests carry a `"cmd"` discriminator, responses carry
//! `"ok"` (and `"error"` when `false`); `watch` responses carry
//! `"event"` instead. See DESIGN.md §3.6d for the full grammar.
//!
//! Request lines are bounded by [`MAX_LINE`]: a peer that streams an
//! unbounded line cannot make the server buffer unbounded memory — the
//! connection is answered with an error and closed.

use crate::json::Json;
use smarts_ckpt::IsaId;
use smarts_core::{SamplerKind, SamplerSpec};

/// Longest request line the server will buffer, in bytes. Submit
/// requests are a few hundred bytes; the bound exists to keep a hostile
/// peer from ballooning connection memory.
pub const MAX_LINE: usize = 64 * 1024;

/// A sampling job as submitted over the wire: workload × machine config
/// × sampling design × per-job pipeline parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name (see `smarts list`).
    pub bench: String,
    /// Instruction-set frontend the workload resolves under: `builtin`
    /// (the default) or `risc`. Trace jobs are refused at submit — a
    /// trace file lives on the client's filesystem, not the server's.
    pub isa: IsaId,
    /// Machine configuration: 8 or 16.
    pub config: u32,
    /// Benchmark length multiplier.
    pub scale: f64,
    /// Target sample size `n`.
    pub n: u64,
    /// Sampling unit size `U`.
    pub unit: u64,
    /// Detailed warming `W` (`None` = the machine's recommendation).
    pub warming_len: Option<u64>,
    /// Functional warming on fast-forward (off = cold-start bias).
    pub functional_warming: bool,
    /// Systematic phase offset `j`.
    pub offset: u64,
    /// Replay worker threads inside this job's pipeline.
    pub jobs: usize,
    /// Pipeline channel depth, in checkpoints.
    pub depth: usize,
    /// Warming shards for a cold run (> 1 selects sharded-warm mode;
    /// the spliced store stays byte-identical to a serial warm).
    pub warm_jobs: usize,
    /// Unit-selection strategy: systematic (the default), stratified,
    /// or adaptive.
    pub sampler: SamplerKind,
    /// Seed for the sampler's randomized phases (ignored by
    /// systematic).
    pub seed: u64,
    /// Stratum count for the stratified/adaptive strategies.
    pub strata: u32,
    /// Pilot size in units; 0 selects the automatic size.
    pub pilot: u64,
    /// Relative CI half-width target for the stratified/adaptive
    /// strategies.
    pub epsilon: f64,
    /// Confidence level of the `(±ε, confidence)` target.
    pub confidence: f64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            bench: String::new(),
            isa: IsaId::Builtin,
            config: 8,
            scale: 1.0,
            n: 100,
            unit: 1000,
            warming_len: None,
            functional_warming: true,
            offset: 0,
            jobs: 1,
            depth: 4,
            warm_jobs: 1,
            sampler: SamplerKind::Systematic,
            seed: 0,
            strata: 4,
            pilot: 0,
            epsilon: 0.03,
            confidence: 0.9973,
        }
    }
}

impl JobSpec {
    /// The sampler specification this job's fields describe.
    pub fn sampler_spec(&self) -> SamplerSpec {
        SamplerSpec {
            kind: self.sampler,
            seed: self.seed,
            strata: self.strata,
            pilot: self.pilot,
            epsilon: self.epsilon,
            confidence: self.confidence,
        }
    }

    /// Serializes the spec as the `submit` request's field set.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::Str(self.bench.clone())),
            ("isa", Json::Str(self.isa.name().to_string())),
            ("config", Json::U64(self.config as u64)),
            ("scale", Json::F64(self.scale)),
            ("n", Json::U64(self.n)),
            ("unit", Json::U64(self.unit)),
            (
                "warming_len",
                match self.warming_len {
                    None => Json::Null,
                    Some(w) => Json::U64(w),
                },
            ),
            ("functional_warming", Json::Bool(self.functional_warming)),
            ("offset", Json::U64(self.offset)),
            ("jobs", Json::U64(self.jobs as u64)),
            ("depth", Json::U64(self.depth as u64)),
            ("warm_jobs", Json::U64(self.warm_jobs as u64)),
            ("sampler", Json::Str(self.sampler.tag().to_string())),
            ("seed", Json::U64(self.seed)),
            ("strata", Json::U64(self.strata as u64)),
            ("pilot", Json::U64(self.pilot)),
            ("epsilon", Json::F64(self.epsilon)),
            ("confidence", Json::F64(self.confidence)),
        ])
    }

    /// Reads a spec from a request object, applying defaults for absent
    /// fields and validating the present ones.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(value: &Json) -> Result<JobSpec, String> {
        let mut spec = JobSpec {
            bench: value
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("submit requires a string `bench`")?
                .to_string(),
            ..JobSpec::default()
        };
        if let Some(v) = value.get("isa") {
            let isa = v
                .as_str()
                .and_then(IsaId::from_name)
                .ok_or("`isa` takes builtin or risc")?;
            if isa == IsaId::Trace {
                return Err("trace workloads are client-local files; replay them with \
                     `smarts sample --trace` instead of the server"
                    .to_string());
            }
            spec.isa = isa;
        }
        if let Some(v) = value.get("config") {
            spec.config = v
                .as_u64()
                .filter(|&c| c == 8 || c == 16)
                .ok_or("`config` takes 8 or 16")? as u32;
        }
        if let Some(v) = value.get("scale") {
            spec.scale = v
                .as_f64()
                .filter(|&s| s > 0.0 && s.is_finite())
                .ok_or("`scale` takes a positive number")?;
        }
        if let Some(v) = value.get("n") {
            spec.n = v.as_u64().filter(|&n| n > 0).ok_or("`n` takes a count")?;
        }
        if let Some(v) = value.get("unit") {
            spec.unit = v
                .as_u64()
                .filter(|&u| u > 0)
                .ok_or("`unit` takes a count")?;
        }
        match value.get("warming_len") {
            None | Some(Json::Null) => {}
            Some(v) => {
                spec.warming_len = Some(v.as_u64().ok_or("`warming_len` takes a count")?);
            }
        }
        if let Some(v) = value.get("functional_warming") {
            spec.functional_warming = v.as_bool().ok_or("`functional_warming` takes a bool")?;
        }
        if let Some(v) = value.get("offset") {
            spec.offset = v.as_u64().ok_or("`offset` takes a count")?;
        }
        if let Some(v) = value.get("jobs") {
            spec.jobs = v
                .as_u64()
                .filter(|&j| (1..=256).contains(&j))
                .ok_or("`jobs` takes a worker count in 1..=256")? as usize;
        }
        if let Some(v) = value.get("depth") {
            spec.depth =
                v.as_u64()
                    .filter(|&d| (1..=1024).contains(&d))
                    .ok_or("`depth` takes a channel depth in 1..=1024")? as usize;
        }
        if let Some(v) = value.get("warm_jobs") {
            spec.warm_jobs =
                v.as_u64()
                    .filter(|&j| (1..=256).contains(&j))
                    .ok_or("`warm_jobs` takes a shard count in 1..=256")? as usize;
        }
        if let Some(v) = value.get("sampler") {
            spec.sampler = v
                .as_str()
                .ok_or("`sampler` takes a string")?
                .parse()
                .map_err(|e: String| e)?;
        }
        if let Some(v) = value.get("seed") {
            spec.seed = v.as_u64().ok_or("`seed` takes a u64")?;
        }
        if let Some(v) = value.get("strata") {
            spec.strata = v
                .as_u64()
                .filter(|&s| (1..=4096).contains(&s))
                .ok_or("`strata` takes a count in 1..=4096")? as u32;
        }
        if let Some(v) = value.get("pilot") {
            spec.pilot = v.as_u64().ok_or("`pilot` takes a count")?;
        }
        if let Some(v) = value.get("epsilon") {
            spec.epsilon = v
                .as_f64()
                .filter(|&e| e > 0.0 && e.is_finite())
                .ok_or("`epsilon` takes a positive number")?;
        }
        if let Some(v) = value.get("confidence") {
            spec.confidence = v
                .as_f64()
                .filter(|&c| c > 0.0 && c < 1.0)
                .ok_or("`confidence` takes a level in (0, 1)")?;
        }
        spec.sampler_spec().validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a sampling job.
    Submit(JobSpec),
    /// One job's status (`Some`) or a summary of every job (`None`).
    Status(Option<String>),
    /// A finished job's full canonical report.
    Result(String),
    /// Stream state/progress events until the job reaches a terminal
    /// state.
    Watch(String),
    /// Request cancellation of a queued or running job.
    Cancel(String),
    /// Server counters: warm passes, store hits, cache hits.
    Stats,
    /// Begin graceful shutdown: drain in-flight jobs, refuse new ones.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message suitable for the `error` field of a refusal
/// response: malformed JSON, a missing/unknown `cmd`, or bad fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = crate::json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request needs a string `cmd` field")?;
    let job_field = || -> Result<String, String> {
        Ok(value
            .get("job")
            .and_then(Json::as_str)
            .ok_or("a string `job` id is required")?
            .to_string())
    };
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => Ok(Request::Submit(JobSpec::from_json(&value)?)),
        "status" => match value.get("job") {
            None | Some(Json::Null) => Ok(Request::Status(None)),
            Some(v) => Ok(Request::Status(Some(
                v.as_str().ok_or("`job` takes a string id")?.to_string(),
            ))),
        },
        "result" => Ok(Request::Result(job_field()?)),
        "watch" => Ok(Request::Watch(job_field()?)),
        "cancel" => Ok(Request::Cancel(job_field()?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// Builds a success response line (without the trailing newline).
pub fn ok_response(fields: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs).to_line()
}

/// Builds a refusal response line (without the trailing newline).
pub fn err_response(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
    .to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_json() {
        let spec = JobSpec {
            bench: "hashp-2".into(),
            isa: IsaId::Risc,
            config: 16,
            scale: 0.25,
            n: 42,
            unit: 500,
            warming_len: Some(3000),
            functional_warming: false,
            offset: 2,
            jobs: 3,
            depth: 2,
            warm_jobs: 4,
            sampler: SamplerKind::Stratified,
            seed: 77,
            strata: 6,
            pilot: 40,
            epsilon: 0.05,
            confidence: 0.95,
        };
        let mut line = String::from(r#"{"cmd":"submit","#);
        line.push_str(&spec.to_json().to_line()[1..]);
        match parse_request(&line).unwrap() {
            Request::Submit(parsed) => assert_eq!(parsed, spec),
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn submit_applies_defaults() {
        let request = parse_request(r#"{"cmd":"submit","bench":"loopy-1"}"#).unwrap();
        match request {
            Request::Submit(spec) => {
                assert_eq!(spec.bench, "loopy-1");
                assert_eq!(spec.isa, IsaId::Builtin);
                assert_eq!(spec.config, 8);
                assert_eq!(spec.n, 100);
                assert_eq!(spec.warming_len, None);
                assert!(spec.functional_warming);
                assert_eq!(spec.jobs, 1);
                assert_eq!(spec.warm_jobs, 1);
                assert_eq!(spec.sampler, SamplerKind::Systematic);
                assert_eq!(spec.seed, 0);
                assert_eq!(spec.strata, 4);
                assert_eq!(spec.pilot, 0);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn sampler_fields_parse_and_are_validated() {
        let request = parse_request(
            r#"{"cmd":"submit","bench":"loopy-1","sampler":"adaptive","seed":9,"strata":3,"pilot":32,"epsilon":0.05,"confidence":0.95}"#,
        )
        .unwrap();
        match request {
            Request::Submit(spec) => {
                assert_eq!(spec.sampler, SamplerKind::Adaptive);
                assert_eq!(spec.seed, 9);
                assert_eq!(spec.strata, 3);
                assert_eq!(spec.pilot, 32);
                assert!((spec.epsilon - 0.05).abs() < 1e-12);
                assert!(!spec.sampler_spec().is_systematic());
            }
            other => panic!("unexpected request {other:?}"),
        }
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","sampler":"bogus"}"#).is_err());
        assert!(parse_request(
            r#"{"cmd":"submit","bench":"x","sampler":"stratified","epsilon":-1}"#
        )
        .is_err());
        assert!(
            parse_request(r#"{"cmd":"submit","bench":"x","sampler":"adaptive","strata":0}"#)
                .is_err()
        );
        assert!(parse_request(
            r#"{"cmd":"submit","bench":"x","sampler":"adaptive","confidence":1.5}"#
        )
        .is_err());
    }

    #[test]
    fn command_forms_parse() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#).unwrap(),
            Request::Status(None)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"status","job":"j-1"}"#).unwrap(),
            Request::Status(Some("j-1".into()))
        );
        assert_eq!(
            parse_request(r#"{"cmd":"cancel","job":"j-9"}"#).unwrap(),
            Request::Cancel("j-9".into())
        );
        assert_eq!(
            parse_request(r#"{"cmd":"watch","job":"j-2"}"#).unwrap(),
            Request::Watch("j-2".into())
        );
    }

    #[test]
    fn malformed_requests_are_refused_with_reasons() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"cancel"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","config":12}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","scale":-1}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","jobs":0}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","warm_jobs":0}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","bench":"x","warm_jobs":300}"#).is_err());
    }

    #[test]
    fn isa_field_parses_and_is_validated() {
        let request = parse_request(r#"{"cmd":"submit","bench":"loopy-1","isa":"risc"}"#).unwrap();
        match request {
            Request::Submit(spec) => assert_eq!(spec.isa, IsaId::Risc),
            other => panic!("unexpected request {other:?}"),
        }
        // Unknown names are refused with the field's message; trace is a
        // known frontend but deliberately not servable.
        let err = parse_request(r#"{"cmd":"submit","bench":"x","isa":"mips"}"#).unwrap_err();
        assert!(err.contains("builtin or risc"), "got: {err}");
        let err = parse_request(r#"{"cmd":"submit","bench":"x","isa":"trace"}"#).unwrap_err();
        assert!(err.contains("--trace"), "got: {err}");
    }

    #[test]
    fn response_builders_emit_protocol_shapes() {
        assert_eq!(
            ok_response(vec![("job", Json::Str("j-1".into()))]),
            r#"{"ok":true,"job":"j-1"}"#
        );
        assert_eq!(err_response("nope"), r#"{"ok":false,"error":"nope"}"#);
    }
}

//! Scheduler workers: claim jobs from the [`JobTable`] and drive each
//! through cache → store → warming, cheapest path first.
//!
//! A claimed job resolves in one of three ways, recorded as its
//! [`ResultSource`]:
//!
//! 1. **cache** — the results cache already holds a canonical report for
//!    (store fingerprint, machine config, sampler key); answered in
//!    O(lookup) with zero simulation.
//! 2. **store** — a complete checkpoint store exists (this run or a
//!    previous one); detailed replay only, no functional warming.
//! 3. **cold** — this job wins the warm ticket and runs the combined
//!    warm-and-save pipeline; concurrent jobs for the same store block
//!    on the ticket and then replay, so one warming pass serves all.
//!
//! All three paths produce byte-identical canonical report lines for
//! the same (workload, design, machine, sampler): the store replay is
//! bit-identical to the live pipeline by `smarts-exec`'s merge
//! contract, and the cache stores the exact serialized line.
//!
//! Non-systematic samplers (stratified, adaptive) share the same warmed
//! stores — unit selection happens at replay, so the store fingerprint
//! (and the warm pass) is independent of the sampler. Their cold path
//! runs a warm-only pass and then replays the sampler's selection from
//! the just-written store, which makes cold and store-hit lines equal
//! by construction.

use std::sync::Arc;

use smarts_ckpt::{IsaId, MappedStore, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_exec::{
    replay_store_mapped_isa, replay_store_sampled_isa, sample_pipeline_saving_isa,
    warm_store_saving_isa, CancelToken, ExecError, Executor, ParallelMode,
};
use smarts_isa::{BuiltinIsa, RiscIsa};
use smarts_uarch::MachineConfig;
use smarts_workloads::{find, Frontend};

use crate::jobs::{JobState, JobTable, ResultSource};
use crate::proto::JobSpec;
use crate::report::{canonical_report_line, sampled_report_line};
use crate::store_mgr::{ResultsCache, StoreManager, StoreTicket};

/// State shared by every scheduler worker and the connection handlers.
#[derive(Debug)]
pub struct Shared {
    /// The job registry.
    pub jobs: JobTable,
    /// The checkpoint-store manager.
    pub stores: StoreManager,
    /// The results cache.
    pub cache: ResultsCache,
}

/// How a job ended, before the table is updated.
enum JobEnd {
    Done(ResultSource, Arc<String>),
    Cancelled,
    Failed(String),
}

/// Resolves a spec to the machine configuration it names.
pub fn machine_for(spec: &JobSpec) -> MachineConfig {
    if spec.config == 16 {
        MachineConfig::sixteen_way()
    } else {
        MachineConfig::eight_way()
    }
}

/// Builds the sampling design a spec describes, mirroring the CLI's
/// parameter derivation so server results are comparable to one-shot
/// `smarts sample` runs.
pub fn params_for(spec: &JobSpec, cfg: &MachineConfig) -> Result<SamplingParams, String> {
    let approx_len = match spec.isa {
        // The builtin lookup keeps its pre-frontend error message.
        IsaId::Builtin => find(&spec.bench)
            .ok_or_else(|| format!("unknown benchmark `{}`", spec.bench))?
            .scaled(spec.scale)
            .approx_len(),
        IsaId::Risc => RiscIsa::approx_len(&spec.bench, spec.scale)?,
        // Unreachable through the wire protocol: submit refuses trace
        // specs before a job is created.
        IsaId::Trace => return Err("trace workloads are not servable".to_string()),
    };
    let warming = if spec.functional_warming {
        Warming::Functional
    } else {
        Warming::None
    };
    let w = spec
        .warming_len
        .unwrap_or_else(|| cfg.recommended_detailed_warming());
    SamplingParams::for_sample_size(approx_len, spec.unit, w, warming, spec.n, spec.offset)
        .map_err(|e| e.to_string())
}

fn run_job(shared: &Arc<Shared>, id: &str, spec: &JobSpec, cancel: &CancelToken) -> JobEnd {
    match spec.isa {
        IsaId::Builtin => run_job_isa::<BuiltinIsa>(shared, id, spec, cancel),
        IsaId::Risc => run_job_isa::<RiscIsa>(shared, id, spec, cancel),
        // Refused at submit; a job table can never hold a trace spec.
        IsaId::Trace => JobEnd::Failed("trace workloads are not servable".to_string()),
    }
}

/// Runs one claimed job under frontend `F`. Builtin jobs take exactly
/// the pre-frontend path (the `_isa` entry points are the same
/// implementations the builtin wrappers delegate to), so reports,
/// stores, and cache lines are unchanged; risc jobs resolve the same
/// benchmark names through the compact encoding and their stores carry
/// the frontend in the header — and in the fingerprint, so a risc job
/// can never be answered from a builtin store or cache line.
fn run_job_isa<F: Frontend>(
    shared: &Arc<Shared>,
    id: &str,
    spec: &JobSpec,
    cancel: &CancelToken,
) -> JobEnd {
    let cfg = machine_for(spec);
    let params = match params_for(spec, &cfg) {
        Ok(p) => p,
        Err(message) => return JobEnd::Failed(message),
    };
    // Resolve up front so an unservable workload (unknown name, or a
    // kernel outside the risc encoding) fails before a store ticket is
    // taken; replay re-resolves from store metadata as usual.
    let resolved_name = match F::resolve(&spec.bench, spec.scale) {
        Ok(loaded) => loaded.name,
        Err(message) => return JobEnd::Failed(message),
    };
    let meta = StoreMeta {
        params,
        benchmark: resolved_name,
        scale: spec.scale,
        isa: F::ID,
    };
    let fingerprint = meta.fingerprint(&cfg);
    let sampler = spec.sampler_spec();
    if let Err(e) = sampler.validate() {
        return JobEnd::Failed(e.to_string());
    }
    let sampler_key = sampler.cache_key();

    if let Some(line) = shared.cache.get(fingerprint, spec.config, sampler_key) {
        return JobEnd::Done(ResultSource::Cache, line);
    }

    let ticket = match shared.stores.acquire(&meta, &cfg, cancel) {
        Ok(t) => t,
        Err(_) if cancel.is_cancelled() => return JobEnd::Cancelled,
        Err(message) => return JobEnd::Failed(message),
    };

    // warm_jobs > 1 shards a cold run's warming pass; the spliced store
    // and report stay byte-identical, so cache/store paths are unchanged.
    let mode = if spec.warm_jobs > 1 {
        ParallelMode::ShardedWarm
    } else {
        ParallelMode::Pipeline
    };
    let executor = match Executor::new(spec.jobs) {
        Ok(e) => e
            .with_mode(mode)
            .with_pipeline_depth(spec.depth)
            .with_warm_jobs(spec.warm_jobs)
            .with_cancel(cancel.clone()),
        Err(e) => {
            shared.stores.abort(&ticket);
            return JobEnd::Failed(e.to_string());
        }
    };
    // Progress observer: mirror pipeline counters into the job record,
    // flipping Warming → Replaying at the first replayed unit.
    let executor = {
        let observer_shared = Arc::clone(shared);
        let observer_id = id.to_string();
        executor.with_progress(Arc::new(move |p: smarts_exec::PipelineProgress| {
            observer_shared.jobs.update(&observer_id, |r| {
                r.emitted = p.emitted;
                r.replayed = p.replayed;
                if p.replayed > 0 && r.state == JobState::Warming {
                    r.state = JobState::Replaying;
                }
            });
        }))
    };

    let sim = SmartsSim::new(cfg.clone());
    let to_replaying = || {
        shared.jobs.update(id, |r| {
            if r.state == JobState::Warming {
                r.state = JobState::Replaying;
            }
        });
    };
    let (source, outcome) = match &ticket {
        StoreTicket::Warm { temp, .. } if !sampler.is_systematic() => {
            // Sampled cold path: warm-only store write, then replay the
            // sampler's selection from the just-written bytes. The store
            // is byte-identical to what the pipeline path saves (same
            // serial producer), so this line equals the store-hit line.
            let outcome =
                warm_store_saving_isa::<F>(&executor, &sim, &spec.bench, spec.scale, &params, temp)
                    .and_then(|_| {
                        to_replaying();
                        let store = MappedStore::open(temp, &cfg)?;
                        replay_store_sampled_isa::<F>(&executor, &sim, &store, &sampler)
                            .map(|sampled| sampled_report_line(&sampled))
                    });
            (ResultSource::Cold, outcome)
        }
        StoreTicket::Warm { temp, .. } => (
            ResultSource::Cold,
            sample_pipeline_saving_isa::<F>(
                &executor,
                &sim,
                &spec.bench,
                spec.scale,
                &params,
                temp,
            )
            .map(|saved| canonical_report_line(&saved.report.report)),
        ),
        StoreTicket::Replay { path } => {
            to_replaying();
            // Pull the shared mapping from the LRU open-store cache so
            // back-to-back jobs on a hot store reuse one zero-copy map.
            let store = match shared.stores.open_store(fingerprint, path, &cfg) {
                Ok(store) => store,
                Err(message) => return JobEnd::Failed(message),
            };
            let outcome = if sampler.is_systematic() {
                replay_store_mapped_isa::<F>(&executor, &sim, &store).and_then(|replayed| {
                    match replayed.damage {
                        // The server never serves a damaged store: the
                        // rename-on-success protocol makes this unreachable
                        // short of on-disk corruption after commit.
                        Some(damage) => Err(ExecError::Ckpt(damage)),
                        None => Ok(canonical_report_line(&replayed.report.report)),
                    }
                })
            } else {
                replay_store_sampled_isa::<F>(&executor, &sim, &store, &sampler)
                    .map(|sampled| sampled_report_line(&sampled))
            };
            (ResultSource::Store, outcome)
        }
    };

    match outcome {
        Ok(line) => {
            if let Err(message) = shared.stores.commit(&ticket) {
                return JobEnd::Failed(message);
            }
            let line = Arc::new(line);
            shared
                .cache
                .put(fingerprint, spec.config, sampler_key, Arc::clone(&line));
            JobEnd::Done(source, line)
        }
        Err(ExecError::Cancelled) => {
            shared.stores.abort(&ticket);
            JobEnd::Cancelled
        }
        Err(e) => {
            shared.stores.abort(&ticket);
            JobEnd::Failed(e.to_string())
        }
    }
}

/// One scheduler worker: claims jobs until the table closes.
pub fn worker_loop(shared: Arc<Shared>) {
    while let Some((id, spec, cancel)) = shared.jobs.claim_next() {
        let end = run_job(&shared, &id, &spec, &cancel);
        shared.jobs.update(&id, |r| match &end {
            JobEnd::Done(source, line) => {
                r.state = JobState::Done;
                r.source = Some(*source);
                r.result = Some(Arc::clone(line));
            }
            JobEnd::Cancelled => r.state = JobState::Cancelled,
            JobEnd::Failed(message) => {
                r.state = JobState::Failed;
                r.error = Some(message.clone());
            }
        });
    }
}

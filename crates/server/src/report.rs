//! Canonical, bit-exact [`SampleReport`] serialization.
//!
//! The server's results cache and the `--json` CLI path both need a
//! representation of a report that (a) round-trips every `f64` exactly
//! and (b) serializes the *same* report to the *same* bytes every time,
//! so "bit-identical results" can be asserted with a plain string
//! comparison. Floats are therefore encoded as 16-hex-digit IEEE-754
//! bit strings (not decimal), counters as a fixed-order array, and wall
//! times are excluded entirely — they measure the host, not the sampled
//! machine, and are never bit-stable across runs.

use std::time::Duration;

use smarts_core::{ModeInstructions, SampleReport, SamplingParams, UnitSample, Warming};
use smarts_energy::ActivityCounters;

use crate::json::Json;

/// Encodes an `f64` as its exact IEEE-754 bit pattern, zero-padded hex.
fn f64_bits(value: f64) -> Json {
    Json::Str(format!("{:016x}", value.to_bits()))
}

/// Decodes an [`f64_bits`] string.
fn bits_f64(value: &Json) -> Result<f64, String> {
    let text = value.as_str().ok_or("expected a hex bit string")?;
    if text.len() != 16 {
        return Err(format!("bad f64 bit string `{text}`"));
    }
    let bits = u64::from_str_radix(text, 16).map_err(|e| format!("bad f64 bit string: {e}"))?;
    Ok(f64::from_bits(bits))
}

fn counters_to_json(c: &ActivityCounters) -> Json {
    // Fixed declaration order; adding a counter to ActivityCounters
    // without extending this list fails the length check on read.
    Json::Arr(
        [
            c.fetches,
            c.decodes,
            c.renames,
            c.window_wakeups,
            c.window_issues,
            c.regfile_reads,
            c.regfile_writes,
            c.int_alu_ops,
            c.int_mul_ops,
            c.int_div_ops,
            c.fp_alu_ops,
            c.fp_mul_ops,
            c.fp_div_ops,
            c.l1i_accesses,
            c.l1d_accesses,
            c.l2_accesses,
            c.mem_accesses,
            c.itlb_accesses,
            c.dtlb_accesses,
            c.bpred_lookups,
            c.bpred_updates,
            c.btb_lookups,
            c.lsq_searches,
            c.store_buffer_ops,
            c.commits,
            c.branch_mispredicts,
        ]
        .iter()
        .map(|&v| Json::U64(v))
        .collect(),
    )
}

fn counters_from_json(value: &Json) -> Result<ActivityCounters, String> {
    let arr = value.as_arr().ok_or("counters must be an array")?;
    if arr.len() != 26 {
        return Err(format!("counters array has {} entries, want 26", arr.len()));
    }
    let mut v = [0u64; 26];
    for (slot, entry) in v.iter_mut().zip(arr) {
        *slot = entry.as_u64().ok_or("counters entries must be u64")?;
    }
    Ok(ActivityCounters {
        fetches: v[0],
        decodes: v[1],
        renames: v[2],
        window_wakeups: v[3],
        window_issues: v[4],
        regfile_reads: v[5],
        regfile_writes: v[6],
        int_alu_ops: v[7],
        int_mul_ops: v[8],
        int_div_ops: v[9],
        fp_alu_ops: v[10],
        fp_mul_ops: v[11],
        fp_div_ops: v[12],
        l1i_accesses: v[13],
        l1d_accesses: v[14],
        l2_accesses: v[15],
        mem_accesses: v[16],
        itlb_accesses: v[17],
        dtlb_accesses: v[18],
        bpred_lookups: v[19],
        bpred_updates: v[20],
        btb_lookups: v[21],
        lsq_searches: v[22],
        store_buffer_ops: v[23],
        commits: v[24],
        branch_mispredicts: v[25],
    })
}

/// Serializes a report to its canonical JSON value.
pub fn report_to_json(report: &SampleReport) -> Json {
    let p = &report.params;
    let params = Json::obj(vec![
        ("unit_size", Json::U64(p.unit_size)),
        ("detailed_warming", Json::U64(p.detailed_warming)),
        (
            "warming",
            Json::Str(
                match p.warming {
                    Warming::None => "none",
                    Warming::Functional => "functional",
                }
                .to_string(),
            ),
        ),
        ("interval", Json::U64(p.interval)),
        ("offset", Json::U64(p.offset)),
        (
            "max_units",
            match p.max_units {
                None => Json::Null,
                Some(m) => Json::U64(m),
            },
        ),
    ]);
    let instructions = Json::obj(vec![
        (
            "fast_forwarded",
            Json::U64(report.instructions.fast_forwarded),
        ),
        (
            "detailed_warmed",
            Json::U64(report.instructions.detailed_warmed),
        ),
        ("measured", Json::U64(report.instructions.measured)),
    ]);
    let units = Json::Arr(
        report
            .units
            .iter()
            .map(|u| {
                Json::obj(vec![
                    ("start_instr", Json::U64(u.start_instr)),
                    ("cycles", Json::U64(u.cycles)),
                    ("instructions", Json::U64(u.instructions)),
                    ("cpi_bits", f64_bits(u.cpi)),
                    ("epi_bits", f64_bits(u.epi)),
                    ("counters", counters_to_json(&u.counters)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("params", params),
        ("instructions", instructions),
        // Aggregate means are derivable from the units, but carrying
        // their bit patterns lets the reader verify its re-accumulation
        // reproduced the writer's exact floats.
        ("cpi_mean_bits", f64_bits(report.cpi().mean())),
        ("epi_mean_bits", f64_bits(report.epi().mean())),
        ("units", units),
    ])
}

/// Serializes a report to its canonical single-line string form — the
/// unit of byte-identity comparison across cold, store-hit, and
/// cache-hit paths.
pub fn canonical_report_line(report: &SampleReport) -> String {
    report_to_json(report).to_line()
}

/// Serializes a sampled (non-systematic) run: the canonical report
/// object extended with a trailing `sampler` section carrying the spec,
/// the sampler's estimate (as exact bit patterns), and the measured
/// record indices.
///
/// Systematic jobs never pass through here — their lines stay
/// byte-identical to [`canonical_report_line`] output, golden
/// fingerprints included. Sampled lines are deterministic for a fixed
/// (store, spec) pair, so cold, store-hit, and cache-hit paths compare
/// byte-equal exactly as systematic ones do.
pub fn sampled_report_line(sampled: &smarts_exec::SampledReplay) -> String {
    let spec = &sampled.spec;
    let est = &sampled.estimate;
    let section = Json::obj(vec![
        ("kind", Json::Str(spec.kind.tag().to_string())),
        ("seed", Json::U64(spec.seed)),
        ("strata", Json::U64(spec.strata as u64)),
        ("pilot", Json::U64(spec.pilot)),
        ("epsilon_bits", f64_bits(spec.epsilon)),
        ("confidence_bits", f64_bits(spec.confidence)),
        ("mean_bits", f64_bits(est.mean)),
        ("half_width_bits", f64_bits(est.half_width)),
        ("n", Json::U64(est.n)),
        ("pool", Json::U64(est.pool)),
        ("strata_used", Json::U64(est.strata as u64)),
        ("rounds", Json::U64(est.rounds as u64)),
        ("target_met", Json::Bool(est.target_met)),
        ("stop", Json::Str(est.stop.tag().to_string())),
        (
            "measured",
            Json::Arr(sampled.measured.iter().map(|&i| Json::U64(i)).collect()),
        ),
    ]);
    let Json::Obj(mut pairs) = report_to_json(&sampled.report.report) else {
        unreachable!("report_to_json returns an object");
    };
    pairs.push(("sampler".to_string(), section));
    Json::Obj(pairs).to_line()
}

/// Rebuilds a report from its canonical JSON value.
///
/// The returned report's wall times are zero (they are not part of the
/// canonical form). The aggregate CPI/EPI means re-accumulated from the
/// units are checked against the serialized bit patterns.
///
/// # Errors
///
/// Returns a message on a missing/ill-typed field or on an aggregate
/// integrity mismatch.
pub fn report_from_json(value: &Json) -> Result<SampleReport, String> {
    let pv = value.get("params").ok_or("missing `params`")?;
    let field = |obj: &Json, name: &str| -> Result<u64, String> {
        obj.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing u64 `{name}`"))
    };
    let params = SamplingParams {
        unit_size: field(pv, "unit_size")?,
        detailed_warming: field(pv, "detailed_warming")?,
        warming: match pv.get("warming").and_then(Json::as_str) {
            Some("none") => Warming::None,
            Some("functional") => Warming::Functional,
            other => return Err(format!("bad warming mode {other:?}")),
        },
        interval: field(pv, "interval")?,
        offset: field(pv, "offset")?,
        max_units: match pv.get("max_units") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("bad `max_units`")?),
        },
    };
    let iv = value.get("instructions").ok_or("missing `instructions`")?;
    let instructions = ModeInstructions {
        fast_forwarded: field(iv, "fast_forwarded")?,
        detailed_warmed: field(iv, "detailed_warmed")?,
        measured: field(iv, "measured")?,
    };
    let units_json = value
        .get("units")
        .and_then(Json::as_arr)
        .ok_or("missing `units` array")?;
    let mut units = Vec::with_capacity(units_json.len());
    for uv in units_json {
        units.push(UnitSample {
            start_instr: field(uv, "start_instr")?,
            cycles: field(uv, "cycles")?,
            instructions: field(uv, "instructions")?,
            cpi: bits_f64(uv.get("cpi_bits").ok_or("missing `cpi_bits`")?)?,
            epi: bits_f64(uv.get("epi_bits").ok_or("missing `epi_bits`")?)?,
            counters: counters_from_json(uv.get("counters").ok_or("missing `counters`")?)?,
        });
    }
    let report =
        SampleReport::from_units(params, units, instructions, Duration::ZERO, Duration::ZERO);
    let cpi_bits = bits_f64(
        value
            .get("cpi_mean_bits")
            .ok_or("missing `cpi_mean_bits`")?,
    )?;
    let epi_bits = bits_f64(
        value
            .get("epi_mean_bits")
            .ok_or("missing `epi_mean_bits`")?,
    )?;
    if report.cpi().mean().to_bits() != cpi_bits.to_bits()
        || report.epi().mean().to_bits() != epi_bits.to_bits()
    {
        return Err("aggregate mean bits do not match re-accumulated units".to_string());
    }
    Ok(report)
}

/// A 64-bit FNV-1a digest of the canonical report line — a compact
/// identity for logging and quick equality checks.
pub fn report_fingerprint(line: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in line.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SampleReport {
        let params = SamplingParams {
            unit_size: 10,
            detailed_warming: 20,
            warming: Warming::Functional,
            interval: 5,
            offset: 1,
            max_units: Some(2),
        };
        let counters = ActivityCounters {
            fetches: 17,
            branch_mispredicts: 3,
            ..ActivityCounters::default()
        };
        let units = vec![
            UnitSample {
                start_instr: 10,
                cycles: 13,
                instructions: 10,
                cpi: 1.3,
                epi: 0.1 + 0.2, // deliberately not exactly 0.3
                counters,
            },
            UnitSample {
                start_instr: 60,
                cycles: 29,
                instructions: 10,
                cpi: 2.9,
                epi: 1.0 / 3.0,
                counters: ActivityCounters::default(),
            },
        ];
        let instructions = ModeInstructions {
            fast_forwarded: 80,
            detailed_warmed: 40,
            measured: 20,
        };
        SampleReport::from_units(
            params,
            units,
            instructions,
            Duration::from_millis(5),
            Duration::from_millis(7),
        )
    }

    #[test]
    fn canonical_line_round_trips_bit_exactly() {
        let report = sample_report();
        let line = canonical_report_line(&report);
        let parsed = crate::json::parse(&line).unwrap();
        let rebuilt = report_from_json(&parsed).unwrap();
        assert_eq!(canonical_report_line(&rebuilt), line);
        assert_eq!(
            rebuilt.cpi().mean().to_bits(),
            report.cpi().mean().to_bits()
        );
        assert_eq!(
            rebuilt.epi().mean().to_bits(),
            report.epi().mean().to_bits()
        );
        assert_eq!(rebuilt.units.len(), report.units.len());
        assert_eq!(rebuilt.units[0].counters, report.units[0].counters);
        assert_eq!(rebuilt.params, report.params);
        assert_eq!(rebuilt.instructions, report.instructions);
    }

    #[test]
    fn serialization_is_deterministic() {
        let report = sample_report();
        assert_eq!(
            canonical_report_line(&report),
            canonical_report_line(&report)
        );
    }

    #[test]
    fn tampered_aggregate_bits_are_rejected() {
        let report = sample_report();
        let line = canonical_report_line(&report);
        let mut value = crate::json::parse(&line).unwrap();
        if let Json::Obj(pairs) = &mut value {
            for (key, slot) in pairs.iter_mut() {
                if key == "cpi_mean_bits" {
                    *slot = f64_bits(999.0);
                }
            }
        }
        let err = report_from_json(&value).unwrap_err();
        assert!(err.contains("aggregate"), "unexpected error: {err}");
    }

    #[test]
    fn wall_times_are_excluded_from_the_canonical_form() {
        let report = sample_report();
        let mut other = sample_report();
        other.wall_functional = Duration::from_secs(1234);
        other.wall_detailed = Duration::from_secs(9876);
        assert_eq!(
            canonical_report_line(&report),
            canonical_report_line(&other)
        );
    }

    #[test]
    fn fingerprint_separates_different_reports() {
        let report = sample_report();
        let line = canonical_report_line(&report);
        let mut other = sample_report();
        other.units[0].cycles += 1;
        let rebuilt = SampleReport::from_units(
            other.params,
            other.units.clone(),
            other.instructions,
            Duration::ZERO,
            Duration::ZERO,
        );
        let other_line = canonical_report_line(&rebuilt);
        assert_ne!(report_fingerprint(&line), report_fingerprint(&other_line));
        assert_eq!(report_fingerprint(&line), report_fingerprint(&line));
    }
}

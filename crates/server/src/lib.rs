//! Sampling-as-a-service: a job server over the shared checkpoint
//! store.
//!
//! The SMARTS cost model makes functional warming (`S_FW`) the dominant
//! wall-clock term, and PR 5's persistent checkpoint store already lets
//! one warming pass serve many detailed replays. This crate turns that
//! amortisation into a *service*: a long-lived `smarts-server` process
//! owns a store directory, accepts sampling jobs over a tiny
//! newline-delimited JSON TCP protocol, and guarantees that concurrent
//! jobs against the same (workload, warm geometry, sampling design)
//! trigger **exactly one** warming pass — everyone else replays, and
//! repeat submissions of the *same full configuration* are answered
//! from a results cache in O(lookup) with byte-identical bytes.
//!
//! The layering, bottom up:
//!
//! * [`json`] — a dependency-free JSON value with deterministic
//!   (insertion-ordered) serialization and exact `u64` round-trips;
//! * [`proto`] — the line protocol: [`proto::Request`] /
//!   [`proto::JobSpec`] parsing and response builders, lines bounded by
//!   [`proto::MAX_LINE`];
//! * [`report`] — the canonical bit-exact [`smarts_core::SampleReport`]
//!   form (`f64`s as IEEE-754 hex bit strings, wall times excluded)
//!   that makes "bit-identical" a plain string comparison;
//! * [`jobs`] — the job table: ids, the
//!   queued → warming → replaying → done/failed/cancelled state
//!   machine, progress counters, change notification for watchers;
//! * [`store_mgr`] — the store manager: fingerprint → path mapping,
//!   single-warmer coordination with rename-on-success publication,
//!   plus the results cache;
//! * [`scheduler`] — workers that drive each claimed job down the
//!   cheapest path: cache hit → store replay → cold warm-and-save;
//! * [`server`] / [`client`] — the TCP accept loop with graceful
//!   drain, and a thin blocking client used by the CLI and tests.
//!
//! Everything is `std`-only, in keeping with the workspace's
//! no-external-dependencies rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod jobs;
pub mod json;
pub mod proto;
pub mod report;
pub mod scheduler;
pub mod server;
pub mod store_mgr;

pub use client::Client;
pub use jobs::{JobRecord, JobState, JobTable, ResultSource};
pub use proto::{JobSpec, Request, MAX_LINE};
pub use report::{
    canonical_report_line, report_fingerprint, report_from_json, report_to_json,
    sampled_report_line,
};
pub use scheduler::{machine_for, params_for, Shared};
pub use server::{Server, ServerConfig, ShutdownSummary};
pub use store_mgr::{ResultsCache, StoreManager, StoreTicket, DEFAULT_MAX_OPEN_STORES};

//! The functional execution engine: SMARTS's fast-forwarding substrate.

use smarts_isa::{BuiltinIsa, ExecRecord, Isa, Memory};
use smarts_uarch::{TraceSource, WarmState};
use smarts_workloads::Loaded;
use std::fmt;

/// Owns the architectural state of one benchmark execution and exposes
/// the three ways SMARTS consumes instructions:
///
/// * [`FunctionalEngine::fast_forward`] — plain functional simulation
///   (architectural state only),
/// * [`FunctionalEngine::fast_forward_warming`] — functional simulation
///   plus functional warming of a [`WarmState`],
/// * the [`TraceSource`] impl — feeding the detailed pipeline, which
///   performs its own (timed) updates of the warm state.
///
/// `position` counts instructions consumed from the dynamic stream in any
/// of the three modes, so the sampling driver can align sampling units on
/// absolute stream offsets.
///
/// The engine is generic over its instruction-set frontend `I` and
/// monomorphizes per frontend — the step loop has no dynamic dispatch.
/// The default frontend is the built-in one, so `FunctionalEngine` in
/// type position keeps meaning exactly what it did before frontends
/// existed.
pub struct FunctionalEngine<I: Isa = BuiltinIsa> {
    cpu: I::Cpu,
    memory: Memory,
    program: I::Program,
}

/// A resumable snapshot of an engine's architectural state.
///
/// Cloning is cheap: memory pages are shared copy-on-write, so a snapshot
/// costs O(pages) reference bumps. Used by the checkpoint library to jump
/// straight to a sampling unit without fast-forwarding.
pub struct EngineSnapshot<I: Isa = BuiltinIsa> {
    cpu: I::Cpu,
    memory: Memory,
}

impl<I: Isa> Clone for FunctionalEngine<I> {
    fn clone(&self) -> Self {
        FunctionalEngine {
            cpu: self.cpu.clone(),
            memory: self.memory.clone(),
            program: self.program.clone(),
        }
    }
}

impl<I: Isa> fmt::Debug for FunctionalEngine<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionalEngine")
            .field("isa", &I::NAME)
            .field("cpu", &self.cpu)
            .finish_non_exhaustive()
    }
}

impl<I: Isa> Clone for EngineSnapshot<I> {
    fn clone(&self) -> Self {
        EngineSnapshot {
            cpu: self.cpu.clone(),
            memory: self.memory.clone(),
        }
    }
}

impl<I: Isa> fmt::Debug for EngineSnapshot<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("isa", &I::NAME)
            .field("cpu", &self.cpu)
            .finish_non_exhaustive()
    }
}

impl<I: Isa> FunctionalEngine<I> {
    /// Starts an engine at the entry point of a loaded benchmark.
    pub fn new(loaded: Loaded<I>) -> Self {
        FunctionalEngine {
            cpu: I::new_cpu(),
            memory: loaded.memory,
            program: loaded.program,
        }
    }

    /// Captures the current architectural state.
    pub fn snapshot(&self) -> EngineSnapshot<I> {
        EngineSnapshot {
            cpu: self.cpu.clone(),
            memory: self.memory.clone(),
        }
    }

    /// Resumes an engine from a snapshot of the same program.
    pub fn from_snapshot(program: I::Program, snapshot: EngineSnapshot<I>) -> Self {
        FunctionalEngine {
            cpu: snapshot.cpu,
            memory: snapshot.memory,
            program,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &I::Program {
        &self.program
    }

    /// Instructions consumed from the dynamic stream so far.
    pub fn position(&self) -> u64 {
        I::retired(&self.cpu)
    }

    /// Whether the program has executed its `halt`.
    pub fn finished(&self) -> bool {
        I::halted(&self.cpu)
    }

    /// Read-only access to the architectural CPU state.
    pub fn cpu(&self) -> &I::Cpu {
        &self.cpu
    }

    /// Functionally executes until `position() >= target` (or the program
    /// halts), updating architectural state only. Returns the number of
    /// instructions executed.
    pub fn fast_forward(&mut self, target: u64) -> u64 {
        // The budget is computed once and the halt flag is the block
        // loop's condition, so nothing per-instruction re-reads `target`.
        let before = I::retired(&self.cpu);
        let remaining = target.saturating_sub(before);
        let _ = I::step_block(
            &mut self.cpu,
            &self.program,
            &mut self.memory,
            remaining,
            |_| {},
        );
        I::retired(&self.cpu) - before
    }

    /// Functionally executes until `position() >= target` (or halt),
    /// applying functional warming to `warm` for every instruction.
    /// Returns the number of instructions executed.
    ///
    /// Records are buffered and applied in [`WarmState::warm_batch`]
    /// flushes, which warm in strict stream order (bit-identical to
    /// per-record warming). When the warm state's batch pre-touch is
    /// enabled, each flush first pre-touches its data accesses' L2 set
    /// runs read-only so a host with memory-level parallelism can
    /// overlap the fills that otherwise serialize on D-side-heavy
    /// streams (pointer chasing).
    pub fn fast_forward_warming(&mut self, target: u64, warm: &mut WarmState) -> u64 {
        // Sink flush granularity: big enough to give the pre-touch pass
        // fills to overlap, small enough that the record buffer
        // (24 B each) stays in the host L1.
        const BATCH: usize = 64;
        let before = I::retired(&self.cpu);
        let remaining = target.saturating_sub(before);
        let mut batch: Vec<ExecRecord> = Vec::with_capacity(BATCH);
        let _ = I::step_block(
            &mut self.cpu,
            &self.program,
            &mut self.memory,
            remaining,
            |rec| {
                batch.push(*rec);
                if batch.len() == BATCH {
                    warm.warm_batch(&batch);
                    batch.clear();
                }
            },
        );
        warm.warm_batch(&batch);
        I::retired(&self.cpu) - before
    }
}

impl<I: Isa> EngineSnapshot<I> {
    /// Assembles a snapshot from decoded parts (the checkpoint-store
    /// load path).
    pub fn from_parts(cpu: I::Cpu, memory: Memory) -> Self {
        EngineSnapshot { cpu, memory }
    }

    /// The architectural CPU state.
    pub fn cpu(&self) -> &I::Cpu {
        &self.cpu
    }

    /// The architectural memory state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Bytes of memory backing store currently allocated to this
    /// snapshot, with no copy-on-write sharing discounted.
    pub fn memory_resident_bytes(&self) -> usize {
        self.memory.resident_bytes()
    }

    /// Bytes of memory backing store not already counted in `seen` (page
    /// identities accumulated across snapshots) — see
    /// [`Memory::resident_bytes_dedup`].
    pub fn memory_resident_bytes_dedup(
        &self,
        seen: &mut std::collections::HashSet<usize>,
    ) -> usize {
        self.memory.resident_bytes_dedup(seen)
    }
}

impl<I: Isa> TraceSource for FunctionalEngine<I> {
    fn next_record(&mut self) -> Option<ExecRecord> {
        if I::halted(&self.cpu) {
            return None;
        }
        I::step(&mut self.cpu, &self.program, &mut self.memory).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_isa::{RiscIsa, TraceIsa, TraceProgram};
    use smarts_uarch::MachineConfig;
    use smarts_workloads::{find, Frontend, LoadedBenchmark};

    fn tiny() -> LoadedBenchmark {
        find("loopy-1").unwrap().scaled(0.01).load()
    }

    #[test]
    fn fast_forward_advances_to_target() {
        let mut engine = FunctionalEngine::new(tiny());
        let executed = engine.fast_forward(1000);
        assert_eq!(executed, 1000);
        assert_eq!(engine.position(), 1000);
        assert!(!engine.finished());
    }

    #[test]
    fn fast_forward_stops_at_halt() {
        let mut engine = FunctionalEngine::new(tiny());
        engine.fast_forward(u64::MAX - 1);
        assert!(engine.finished());
        let at_halt = engine.position();
        assert_eq!(engine.fast_forward(u64::MAX - 1), 0);
        assert_eq!(engine.position(), at_halt);
    }

    #[test]
    fn warming_mode_advances_state_identically() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut plain = FunctionalEngine::new(tiny());
        let mut warming = FunctionalEngine::new(tiny());
        plain.fast_forward(5000);
        warming.fast_forward_warming(5000, &mut warm);
        // Architectural state is identical regardless of warming.
        assert_eq!(plain.cpu(), warming.cpu());
        // And the warm state saw I-side traffic.
        assert!(warm.hierarchy.l1i().accesses() > 0);
    }

    #[test]
    fn trace_source_counts_toward_position() {
        let mut engine = FunctionalEngine::new(tiny());
        engine.fast_forward(100);
        let rec = engine.next_record().unwrap();
        assert_eq!(engine.position(), 101);
        assert_eq!(rec.pc, rec.pc); // record is well-formed
    }

    #[test]
    fn risc_engine_warms_identically_to_builtin() {
        let name = "loopy-1";
        let cfg = MachineConfig::eight_way();
        let mut bw = WarmState::new(&cfg);
        let mut rw = WarmState::new(&cfg);
        let mut be: FunctionalEngine =
            FunctionalEngine::new(BuiltinIsa::resolve(name, 0.01).unwrap());
        let mut re: FunctionalEngine<RiscIsa> =
            FunctionalEngine::new(RiscIsa::resolve(name, 0.01).unwrap());
        be.fast_forward_warming(5_000, &mut bw);
        re.fast_forward_warming(5_000, &mut rw);
        assert_eq!(be.position(), re.position());
        let mut a = Vec::new();
        let mut b = Vec::new();
        bw.save_state(&mut a);
        rw.save_state(&mut b);
        assert_eq!(a, b, "warm state diverged between frontends");
    }

    #[test]
    fn trace_engine_replays_recorded_stream() {
        let mut source = FunctionalEngine::new(tiny());
        let mut records = Vec::new();
        while let Some(rec) = source.next_record() {
            records.push(rec);
        }
        let loaded = smarts_workloads::Loaded::<TraceIsa> {
            name: "tiny".into(),
            program: TraceProgram::from_records("tiny", records.clone()),
            memory: Memory::new(),
        };
        let mut replay = FunctionalEngine::new(loaded);
        let mut got = Vec::new();
        while let Some(rec) = replay.next_record() {
            got.push(rec);
        }
        assert_eq!(got, records);
        assert!(replay.finished());
        assert_eq!(replay.position(), records.len() as u64);
    }
}
